//! The IR → bytecode compiler.
//!
//! Two passes per function: the first measures every instruction to
//! assign each basic block its word offset in the flat stream, the
//! second emits words with branch targets resolved to those offsets.
//! Constants (including pre-computed type sizes and `gep` offsets) are
//! interned into a per-function pool; call-shaped instructions get their
//! return-site index assigned in [`Function::iter_call_sites`] order so
//! the VM loader and this compiler always agree.

use std::collections::HashMap;

use levee_ir::func::Function;
use levee_ir::prelude::*;

use crate::op::*;
use crate::{BcFunc, BcModule, FrameDesc, SigEntry};

/// Compiles a whole module.
pub fn compile(module: &Module) -> BcModule {
    let mut sigs = Vec::new();
    let funcs = module
        .funcs
        .iter()
        .map(|f| compile_function(module, f, &mut sigs))
        .collect();
    BcModule { funcs, sigs }
}

/// Compiles one function, appending its indirect-call signatures to the
/// shared table.
pub fn compile_function(module: &Module, f: &Function, sigs: &mut Vec<SigEntry>) -> BcFunc {
    // Pass 1: block offsets.
    let mut block_offsets = Vec::with_capacity(f.blocks.len());
    let mut pc = 0u32;
    for (_, block) in f.iter_blocks() {
        block_offsets.push(pc);
        for inst in &block.insts {
            pc += inst_words(inst) as u32;
        }
        pc += term_words(&block.term) as u32;
    }

    // Pass 2: emission.
    let mut e = Emitter {
        module,
        code: Vec::with_capacity(pc as usize),
        consts: Vec::new(),
        interned: HashMap::new(),
        block_offsets: &block_offsets,
        sites: 0,
    };
    for (_, block) in f.iter_blocks() {
        for inst in &block.insts {
            e.emit_inst(inst, sigs);
        }
        e.emit_term(&block.term);
    }
    debug_assert_eq!(e.code.len(), pc as usize, "length pass and emission agree");
    let (code, consts, sites) = (e.code, e.consts, e.sites);
    let bcf = BcFunc {
        code,
        consts,
        block_offsets,
        sites,
        frame: FrameDesc::of(f),
    };
    validate(&bcf, sigs.len());
    bcf
}

/// Verifies the stream invariants the VM's dispatch loop relies on for
/// unchecked indexing: every instruction's words lie within the stream,
/// register operands index inside the function's register file (sized by
/// the frame descriptor the engine allocates from), constant operands
/// index inside the pool, and branch targets land on instruction
/// boundaries. Covers both the compiler's base opcodes and the
/// superinstructions the fusion pass ([`crate::fuse()`]) rewrites in —
/// fused streams are re-validated after rewriting.
///
/// # Panics
///
/// Panics on any violation — these are compiler bugs, not program
/// errors, and must never reach the engine.
pub(crate) fn validate(f: &BcFunc, nsigs: usize) {
    let code = &f.code;
    let locals = f.frame.n_regs as usize;
    let check_reg = |w: u32| {
        assert!((w as usize) < locals, "register operand {w} out of range");
    };
    let check_operand = |w: u32| {
        if w & OPERAND_CONST_BIT == 0 {
            check_reg(w);
        } else {
            let idx = (w & !OPERAND_CONST_BIT) as usize;
            assert!(idx < f.consts.len(), "const operand {idx} out of range");
        }
    };
    let check_cidx = |w: u32| {
        assert!(
            (w as usize) < f.consts.len(),
            "const index {w} out of range"
        );
    };
    let check_dest1 = |w: u32| {
        if w != 0 {
            check_reg(w - 1);
        }
    };
    // First pass: collect instruction boundaries.
    let mut starts = vec![false; code.len() + 1];
    let mut pc = 0usize;
    while pc < code.len() {
        starts[pc] = true;
        let len = op_len(code, pc);
        assert!(
            pc + len <= code.len(),
            "instruction overruns stream at {pc}"
        );
        pc += len;
    }
    assert_eq!(pc, code.len(), "stream ends mid-instruction");
    // Second pass: operand validity.
    let mut pc = 0usize;
    while pc < code.len() {
        let op = Op::from_u32(code[pc]);
        match op {
            Op::Alloca => {
                check_reg(code[pc + 1]);
                check_cidx(code[pc + 2]);
                pc += 4;
            }
            Op::Load => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 2]);
                pc += 5;
            }
            Op::Store => {
                check_operand(code[pc + 1]);
                check_operand(code[pc + 2]);
                pc += 5;
            }
            Op::Gep => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 2]);
                check_operand(code[pc + 3]);
                check_cidx(code[pc + 4]);
                check_cidx(code[pc + 5]);
                pc += 7;
            }
            Op::GlobalAddr | Op::FuncAddr => {
                check_reg(code[pc + 1]);
                pc += 3;
            }
            Op::Bin | Op::Cmp => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 3]);
                check_operand(code[pc + 4]);
                pc += 5;
            }
            Op::Cast => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 3]);
                pc += 5;
            }
            Op::Call => {
                check_dest1(code[pc + 1]);
                let n = code[pc + 4] as usize;
                for i in 0..n {
                    check_operand(code[pc + 5 + i]);
                }
                pc += 5 + n;
            }
            Op::CallIndirect => {
                check_dest1(code[pc + 1]);
                check_operand(code[pc + 2]);
                assert!((code[pc + 3] as usize) < nsigs, "sig index out of range");
                let n = code[pc + 5] as usize;
                for i in 0..n {
                    check_operand(code[pc + 6 + i]);
                }
                pc += 6 + n;
            }
            Op::IntrinsicCall => {
                check_dest1(code[pc + 1]);
                let n = code[pc + 3] as usize;
                for i in 0..n {
                    check_operand(code[pc + 4 + i]);
                }
                pc += 4 + n;
            }
            Op::PtrStore => {
                check_operand(code[pc + 2]);
                check_operand(code[pc + 3]);
                pc += 5;
            }
            Op::PtrLoad => {
                check_reg(code[pc + 2]);
                check_operand(code[pc + 3]);
                pc += 5;
            }
            Op::Check => {
                check_operand(code[pc + 2]);
                check_cidx(code[pc + 3]);
                pc += 4;
            }
            Op::FnCheck => {
                check_operand(code[pc + 2]);
                pc += 3;
            }
            Op::SafeMemcpy => {
                check_operand(code[pc + 2]);
                check_operand(code[pc + 3]);
                check_operand(code[pc + 4]);
                pc += 6;
            }
            Op::SafeMemset => {
                check_operand(code[pc + 2]);
                check_operand(code[pc + 3]);
                check_operand(code[pc + 4]);
                pc += 5;
            }
            Op::Jump => {
                assert!(starts[code[pc + 1] as usize], "jump to non-boundary");
                pc += 2;
            }
            Op::Branch => {
                check_operand(code[pc + 1]);
                assert!(starts[code[pc + 2] as usize], "branch to non-boundary");
                assert!(starts[code[pc + 3] as usize], "branch to non-boundary");
                pc += 4;
            }
            Op::Ret => {
                if code[pc + 1] != 0 {
                    check_operand(code[pc + 2]);
                }
                pc += 3;
            }
            Op::Unreachable => pc += 1,
            Op::CmpBr => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 3]);
                check_operand(code[pc + 4]);
                assert!(starts[code[pc + 5] as usize], "branch to non-boundary");
                assert!(starts[code[pc + 6] as usize], "branch to non-boundary");
                pc += 7;
            }
            Op::GepLoad => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 2]);
                check_operand(code[pc + 3]);
                check_cidx(code[pc + 4]);
                check_cidx(code[pc + 5]);
                check_reg(code[pc + 7]);
                pc += 10;
            }
            Op::GepStore => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 2]);
                check_operand(code[pc + 3]);
                check_cidx(code[pc + 4]);
                check_cidx(code[pc + 5]);
                check_operand(code[pc + 7]);
                pc += 10;
            }
            Op::CheckLoad => {
                check_operand(code[pc + 2]);
                check_cidx(code[pc + 3]);
                check_reg(code[pc + 4]);
                pc += 7;
            }
            Op::CheckPtrLoad => {
                check_operand(code[pc + 2]);
                check_cidx(code[pc + 3]);
                check_reg(code[pc + 4]);
                pc += 6;
            }
            Op::CheckedCall => {
                check_dest1(code[pc + 2]);
                check_operand(code[pc + 3]);
                assert!((code[pc + 4] as usize) < nsigs, "sig index out of range");
                let n = code[pc + 6] as usize;
                for i in 0..n {
                    check_operand(code[pc + 7 + i]);
                }
                pc += 7 + n;
            }
            Op::PacSign | Op::PacAuth => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 2]);
                check_operand(code[pc + 3]);
                pc += 4;
            }
            Op::AuthCall => {
                check_reg(code[pc + 1]);
                check_operand(code[pc + 2]);
                check_operand(code[pc + 3]);
                check_dest1(code[pc + 4]);
                assert!((code[pc + 5] as usize) < nsigs, "sig index out of range");
                let n = code[pc + 7] as usize;
                for i in 0..n {
                    check_operand(code[pc + 8 + i]);
                }
                pc += 8 + n;
            }
        }
    }
}

/// Encoded length of one instruction, in words (opcode included).
fn inst_words(inst: &Inst) -> usize {
    match inst {
        Inst::Alloca { .. } => 4,
        Inst::Load { .. } | Inst::Store { .. } => 5,
        Inst::Gep { .. } => 7,
        Inst::GlobalAddr { .. } | Inst::FuncAddr { .. } => 3,
        Inst::Bin { .. } | Inst::Cmp { .. } | Inst::Cast { .. } => 5,
        Inst::Call { args, .. } => 5 + args.len(),
        Inst::CallIndirect { args, .. } => 6 + args.len(),
        Inst::IntrinsicCall { args, .. } => 4 + args.len(),
        Inst::Cpi(op) => match op {
            CpiOp::PtrStore { .. } | CpiOp::PtrLoad { .. } => 5,
            CpiOp::Check { .. } | CpiOp::PacSign { .. } | CpiOp::PacAuth { .. } => 4,
            CpiOp::FnCheck { .. } => 3,
            CpiOp::SafeMemcpy { .. } => 6,
            CpiOp::SafeMemset { .. } => 5,
        },
    }
}

/// Encoded length of one terminator, in words.
fn term_words(term: &Terminator) -> usize {
    match term {
        Terminator::Br(_) => 2,
        Terminator::CondBr { .. } => 4,
        Terminator::Ret(_) => 3,
        Terminator::Unreachable => 1,
    }
}

struct Emitter<'a> {
    module: &'a Module,
    code: Vec<u32>,
    consts: Vec<u64>,
    interned: HashMap<u64, u32>,
    block_offsets: &'a [u32],
    sites: u32,
}

impl<'a> Emitter<'a> {
    fn intern(&mut self, value: u64) -> u32 {
        if let Some(idx) = self.interned.get(&value) {
            return *idx;
        }
        let idx = self.consts.len() as u32;
        assert!(idx < OPERAND_CONST_BIT, "constant pool overflow");
        self.consts.push(value);
        self.interned.insert(value, idx);
        idx
    }

    fn operand(&mut self, op: Operand) -> u32 {
        match op {
            Operand::Value(v) => {
                assert!(v.0 < OPERAND_CONST_BIT, "register index overflow");
                v.0
            }
            Operand::Const(c) => self.intern(c as u64) | OPERAND_CONST_BIT,
        }
    }

    fn push(&mut self, op: Op) {
        self.code.push(op as u32);
    }

    fn next_site(&mut self) -> u32 {
        let s = self.sites;
        self.sites += 1;
        s
    }

    fn emit_inst(&mut self, inst: &Inst, sigs: &mut Vec<SigEntry>) {
        match inst {
            Inst::Alloca {
                dest,
                ty,
                count,
                stack,
            } => {
                let size = self.module.types.size_of(ty) * count;
                let size_cidx = self.intern(size);
                self.push(Op::Alloca);
                self.code.push(dest.0);
                self.code.push(size_cidx);
                self.code.push(encode_stack(*stack));
            }
            Inst::Load {
                dest,
                ptr,
                ty,
                space,
            } => {
                let size = self.module.types.size_of(ty) as u32;
                let ptr = self.operand(*ptr);
                self.push(Op::Load);
                self.code.push(dest.0);
                self.code.push(ptr);
                self.code.push(size);
                self.code.push(encode_space(*space));
            }
            Inst::Store {
                ptr,
                value,
                ty,
                space,
            } => {
                let size = self.module.types.size_of(ty) as u32;
                let ptr = self.operand(*ptr);
                let value = self.operand(*value);
                self.push(Op::Store);
                self.code.push(ptr);
                self.code.push(value);
                self.code.push(size);
                self.code.push(encode_space(*space));
            }
            Inst::Gep {
                dest,
                base,
                index,
                elem,
                offset,
                field_of,
            } => {
                let elem_size = self.module.types.size_of(elem);
                let elem_cidx = self.intern(elem_size);
                let offset_cidx = self.intern(*offset);
                let base = self.operand(*base);
                let index = self.operand(*index);
                self.push(Op::Gep);
                self.code.push(dest.0);
                self.code.push(base);
                self.code.push(index);
                self.code.push(elem_cidx);
                self.code.push(offset_cidx);
                self.code.push(field_of.is_some() as u32);
            }
            Inst::GlobalAddr { dest, global } => {
                self.push(Op::GlobalAddr);
                self.code.push(dest.0);
                self.code.push(global.0);
            }
            Inst::FuncAddr { dest, func } => {
                self.push(Op::FuncAddr);
                self.code.push(dest.0);
                self.code.push(func.0);
            }
            Inst::Bin { dest, op, lhs, rhs } => {
                let lhs = self.operand(*lhs);
                let rhs = self.operand(*rhs);
                self.push(Op::Bin);
                self.code.push(dest.0);
                self.code.push(encode_binop(*op));
                self.code.push(lhs);
                self.code.push(rhs);
            }
            Inst::Cmp { dest, op, lhs, rhs } => {
                let lhs = self.operand(*lhs);
                let rhs = self.operand(*rhs);
                self.push(Op::Cmp);
                self.code.push(dest.0);
                self.code.push(encode_cmpop(*op));
                self.code.push(lhs);
                self.code.push(rhs);
            }
            Inst::Cast {
                dest,
                kind,
                value,
                to,
            } => {
                let size = self.module.types.size_of(to) as u32;
                let value = self.operand(*value);
                self.push(Op::Cast);
                self.code.push(dest.0);
                self.code.push(encode_cast(*kind));
                self.code.push(value);
                self.code.push(size);
            }
            Inst::Call { dest, func, args } => {
                let site = self.next_site();
                let args: Vec<u32> = args.iter().map(|a| self.operand(*a)).collect();
                self.push(Op::Call);
                self.code.push(dest.map_or(0, |d| d.0 + 1));
                self.code.push(func.0);
                self.code.push(site);
                self.code.push(args.len() as u32);
                self.code.extend(args);
            }
            Inst::CallIndirect {
                dest,
                callee,
                sig,
                args,
                cfi,
            } => {
                let site = self.next_site();
                let sig_idx = sigs.len() as u32;
                sigs.push(SigEntry {
                    sig: sig.clone(),
                    cfi: *cfi,
                });
                let callee = self.operand(*callee);
                let args: Vec<u32> = args.iter().map(|a| self.operand(*a)).collect();
                self.push(Op::CallIndirect);
                self.code.push(dest.map_or(0, |d| d.0 + 1));
                self.code.push(callee);
                self.code.push(sig_idx);
                self.code.push(site);
                self.code.push(args.len() as u32);
                self.code.extend(args);
            }
            Inst::IntrinsicCall { dest, which, args } => {
                let _site = self.next_site(); // intrinsics own a ret site too
                let args: Vec<u32> = args.iter().map(|a| self.operand(*a)).collect();
                self.push(Op::IntrinsicCall);
                self.code.push(dest.map_or(0, |d| d.0 + 1));
                self.code.push(encode_intrinsic(*which));
                self.code.push(args.len() as u32);
                self.code.extend(args);
            }
            Inst::Cpi(op) => self.emit_cpi(op),
        }
    }

    fn emit_cpi(&mut self, op: &CpiOp) {
        match op {
            CpiOp::PtrStore {
                policy,
                ptr,
                value,
                universal,
            } => {
                let ptr = self.operand(*ptr);
                let value = self.operand(*value);
                self.push(Op::PtrStore);
                self.code.push(encode_policy(*policy));
                self.code.push(ptr);
                self.code.push(value);
                self.code.push(*universal as u32);
            }
            CpiOp::PtrLoad {
                policy,
                dest,
                ptr,
                universal,
            } => {
                let ptr = self.operand(*ptr);
                self.push(Op::PtrLoad);
                self.code.push(encode_policy(*policy));
                self.code.push(dest.0);
                self.code.push(ptr);
                self.code.push(*universal as u32);
            }
            CpiOp::Check { policy, ptr, size } => {
                let size_cidx = self.intern(*size);
                let ptr = self.operand(*ptr);
                self.push(Op::Check);
                self.code.push(encode_policy(*policy));
                self.code.push(ptr);
                self.code.push(size_cidx);
            }
            CpiOp::FnCheck { policy, callee } => {
                let callee = self.operand(*callee);
                self.push(Op::FnCheck);
                self.code.push(encode_policy(*policy));
                self.code.push(callee);
            }
            CpiOp::SafeMemcpy {
                policy,
                dst,
                src,
                len,
                moving,
            } => {
                let dst = self.operand(*dst);
                let src = self.operand(*src);
                let len = self.operand(*len);
                self.push(Op::SafeMemcpy);
                self.code.push(encode_policy(*policy));
                self.code.push(dst);
                self.code.push(src);
                self.code.push(len);
                self.code.push(*moving as u32);
            }
            CpiOp::SafeMemset {
                policy,
                dst,
                byte,
                len,
            } => {
                let dst = self.operand(*dst);
                let byte = self.operand(*byte);
                let len = self.operand(*len);
                self.push(Op::SafeMemset);
                self.code.push(encode_policy(*policy));
                self.code.push(dst);
                self.code.push(byte);
                self.code.push(len);
            }
            CpiOp::PacSign { dest, value, ctx } => {
                let value = self.operand(*value);
                let ctx = self.operand(*ctx);
                self.push(Op::PacSign);
                self.code.push(dest.0);
                self.code.push(value);
                self.code.push(ctx);
            }
            CpiOp::PacAuth { dest, value, ctx } => {
                let value = self.operand(*value);
                let ctx = self.operand(*ctx);
                self.push(Op::PacAuth);
                self.code.push(dest.0);
                self.code.push(value);
                self.code.push(ctx);
            }
        }
    }

    fn emit_term(&mut self, term: &Terminator) {
        match term {
            Terminator::Br(b) => {
                self.push(Op::Jump);
                self.code.push(self.block_offsets[b.0 as usize]);
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let cond = self.operand(*cond);
                self.push(Op::Branch);
                self.code.push(cond);
                self.code.push(self.block_offsets[then_bb.0 as usize]);
                self.code.push(self.block_offsets[else_bb.0 as usize]);
            }
            Terminator::Ret(v) => {
                let word = v.map(|op| self.operand(op));
                self.push(Op::Ret);
                self.code.push(word.is_some() as u32);
                self.code.push(word.unwrap_or(0));
            }
            Terminator::Unreachable => self.push(Op::Unreachable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levee_ir::builder::FuncBuilder;

    fn two_block_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let x = b.bin(BinOp::Add, 1, 2, Ty::I64);
        let c = b.cmp(CmpOp::Gt, x, 0);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        b.cond_br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        b.ret(Some(1.into()));
        b.switch_to(else_bb);
        b.ret(Some(0.into()));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn block_offsets_match_emission() {
        let m = two_block_module();
        let bc = compile(&m);
        let f = &bc.funcs[0];
        assert_eq!(f.block_offsets.len(), 3);
        assert_eq!(f.block_offsets[0], 0);
        // Entry block: Bin (5) + Cmp (5) + Branch (4) = 14 words.
        assert_eq!(f.block_offsets[1], 14);
        // then block: Ret (3).
        assert_eq!(f.block_offsets[2], 17);
        assert_eq!(f.code.len(), 20);
    }

    #[test]
    fn branch_targets_are_pre_resolved() {
        let m = two_block_module();
        let bc = compile(&m);
        let f = &bc.funcs[0];
        // The branch is the 3rd instruction: words 10..14.
        assert_eq!(Op::from_u32(f.code[10]), Op::Branch);
        assert_eq!(f.code[12], f.block_offsets[1]);
        assert_eq!(f.code[13], f.block_offsets[2]);
    }

    #[test]
    fn constants_are_interned_once() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        b.bin(BinOp::Add, 7, 7, Ty::I64);
        b.bin(BinOp::Add, 7, 9, Ty::I64);
        b.ret(Some(0.into()));
        m.add_func(b.finish());
        let bc = compile(&m);
        let consts = &bc.funcs[0].consts;
        assert_eq!(consts.iter().filter(|c| **c == 7).count(), 1);
    }

    #[test]
    fn frame_descriptors_capture_layout() {
        let mut m = two_block_module();
        m.funcs[0].protection.stack_cookie = true;
        let bc = compile(&m);
        let d = bc.funcs[0].frame;
        assert_eq!(d.n_regs, m.funcs[0].locals.len() as u32);
        assert_eq!(d.n_params, 0);
        assert!(d.cookie && !d.safestack && !d.unsafe_frame);

        // Under the safe stack the cookie is subsumed and allocas on the
        // unsafe stack surface as the unsafe-frame charge.
        m.funcs[0].protection.safestack = true;
        let dest = m.funcs[0].new_local(Ty::Ptr(Box::new(Ty::I64)));
        m.funcs[0].blocks[0].insts.insert(
            0,
            Inst::Alloca {
                dest,
                ty: Ty::I64,
                count: 4,
                stack: StackKind::Unsafe,
            },
        );
        let bc = compile(&m);
        let d = bc.funcs[0].frame;
        assert!(d.safestack && !d.cookie && d.unsafe_frame);
        assert_eq!(d.n_regs, m.funcs[0].locals.len() as u32);
    }

    #[test]
    fn call_sites_numbered_in_layout_order() {
        let mut m = Module::new("t");
        let mut callee = FuncBuilder::new("callee", FnSig::new(vec![Ty::I64], Ty::I64));
        callee.ret(Some(ValueId(0).into()));
        let callee_id = m.add_func(callee.finish());
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        b.call(callee_id, vec![1.into()], Ty::I64);
        b.intrinsic(Intrinsic::PrintInt, vec![2.into()], Ty::Void);
        b.call(callee_id, vec![3.into()], Ty::I64);
        b.ret(Some(0.into()));
        m.add_func(b.finish());
        let bc = compile(&m);
        let f = &bc.funcs[1];
        assert_eq!(f.sites, 3);
        // First call: site 0; the intrinsic consumes site 1; second
        // call: site 2 — mirroring the VM loader's numbering.
        assert_eq!(Op::from_u32(f.code[0]), Op::Call);
        assert_eq!(f.code[3], 0);
        let second_call = f
            .code
            .iter()
            .rposition(|w| *w == Op::Call as u32)
            .expect("second call emitted");
        assert_eq!(f.code[second_call + 3], 2);
    }
}
