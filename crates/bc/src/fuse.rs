//! The superinstruction fusion pass.
//!
//! A peephole rewrite over validated bytecode streams: adjacent
//! instruction pairs that form a known producer/consumer idiom are
//! collapsed into one superinstruction, eliminating one dispatch (opcode
//! fetch, match, operand decode, pc bump) per pair while preserving the
//! constituents' observable semantics *exactly* — the engine's fused
//! dispatch arms perform both constituents' register writes, memory
//! touches, trap checks and cycle/instruction charges in the original
//! order, so runs with fusion on and off are bit-identical (the
//! `diff_fuzz` and `engines` suites in `levee-vm` enforce this).
//!
//! Patterns (see the table on [`Op`]):
//!
//! * `Cmp` + `Branch` on the compare result → [`Op::CmpBr`] — the
//!   loop-header idiom;
//! * `Gep` + `Load`/`Store` through the just-computed address →
//!   [`Op::GepLoad`] / [`Op::GepStore`] — array and field access;
//! * `Check` + `Load` / `Check` + `PtrLoad` of the checked pointer →
//!   [`Op::CheckLoad`] / [`Op::CheckPtrLoad`] — the checked pointer
//!   load, CPI's analogue of a hardware check+use instruction;
//! * `FnCheck` + `CallIndirect` of the checked callee →
//!   [`Op::CheckedCall`] — the instrumented indirect call: check,
//!   resolve and frame push from one `FrameDesc` lookup in a single
//!   dispatch;
//! * `PacAuth` + `CallIndirect` of the just-authenticated callee →
//!   [`Op::AuthCall`] — the PAC-instrumented indirect call
//!   (`levee_core::pac`): authenticate, resolve and frame push in a
//!   single dispatch, the software analogue of ARMv8.3's `BLRAA`.
//!
//! A pair never fuses across a basic-block boundary: the second
//! instruction of a pair must not be a branch target, and the only
//! in-stream targets are block starts (call-return and `setjmp` resume
//! points always follow a call-shaped instruction, which no pattern has
//! as its first constituent). The first constituent *may* be a block
//! start — the fused instruction simply becomes the block's entry.
//!
//! Rewriting shifts every downstream offset, so the pass runs in two
//! passes per function: plan (decide fusions, map every surviving old
//! boundary to its new offset) then emit (copy words, translating jump
//! targets and `block_offsets` through the map). The rewritten stream is
//! re-validated.

use std::collections::{HashMap, HashSet};

use crate::compile::validate;
use crate::op::{op_len, Op};
use crate::{BcFunc, BcModule};

/// How many pairs each pattern fused, per [`fuse`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// `Cmp`+`Branch` pairs fused.
    pub cmp_br: u64,
    /// `Gep`+`Load` pairs fused.
    pub gep_load: u64,
    /// `Gep`+`Store` pairs fused.
    pub gep_store: u64,
    /// `Check`+`Load` pairs fused.
    pub check_load: u64,
    /// `Check`+`PtrLoad` pairs fused.
    pub check_ptr_load: u64,
    /// `FnCheck`+`CallIndirect` pairs fused.
    pub checked_call: u64,
    /// `PacAuth`+`CallIndirect` pairs fused.
    pub auth_call: u64,
}

impl FuseStats {
    /// Total pairs fused.
    pub fn total(&self) -> u64 {
        self.cmp_br
            + self.gep_load
            + self.gep_store
            + self.check_load
            + self.check_ptr_load
            + self.checked_call
            + self.auth_call
    }

    fn count(&mut self, op: Op) {
        match op {
            Op::CmpBr => self.cmp_br += 1,
            Op::GepLoad => self.gep_load += 1,
            Op::GepStore => self.gep_store += 1,
            Op::CheckLoad => self.check_load += 1,
            Op::CheckPtrLoad => self.check_ptr_load += 1,
            Op::CheckedCall => self.checked_call += 1,
            Op::AuthCall => self.auth_call += 1,
            _ => unreachable!("not a superinstruction: {op:?}"),
        }
    }
}

/// Fuses every function of an already-compiled module in place.
pub fn fuse(module: &mut BcModule) -> FuseStats {
    let nsigs = module.sigs.len();
    let mut stats = FuseStats::default();
    for f in &mut module.funcs {
        fuse_function(f, nsigs, &mut stats);
    }
    stats
}

/// Which superinstruction an adjacent pair at (`pc`, `next`) forms, if
/// any. Matching is purely word-level: the consumer's input operand word
/// must equal the producer's destination word (operand words are
/// canonical — registers are slot indices, constants interned indices —
/// so word equality is operand identity).
fn match_pair(code: &[u32], pc: usize, next: usize) -> Option<Op> {
    match (Op::from_u32(code[pc]), Op::from_u32(code[next])) {
        // Branch condition is the compare's destination register.
        (Op::Cmp, Op::Branch) if code[next + 1] == code[pc + 1] => Some(Op::CmpBr),
        // Load/Store address is the gep's destination register.
        (Op::Gep, Op::Load) if code[next + 2] == code[pc + 1] => Some(Op::GepLoad),
        (Op::Gep, Op::Store) if code[next + 1] == code[pc + 1] => Some(Op::GepStore),
        // Loads through a just-checked pointer; policies always agree
        // (one instrumentation mode per build) but are matched anyway.
        (Op::Check, Op::Load) if code[next + 2] == code[pc + 2] => Some(Op::CheckLoad),
        (Op::Check, Op::PtrLoad)
            if code[next + 3] == code[pc + 2] && code[next + 1] == code[pc + 1] =>
        {
            Some(Op::CheckPtrLoad)
        }
        // Indirect call of a just-checked callee.
        (Op::FnCheck, Op::CallIndirect) if code[next + 2] == code[pc + 2] => Some(Op::CheckedCall),
        // Indirect call of a just-authenticated callee (the PacAuth's
        // dest is a register word, so word equality is register
        // identity).
        (Op::PacAuth, Op::CallIndirect) if code[next + 2] == code[pc + 1] => Some(Op::AuthCall),
        _ => None,
    }
}

/// Encoded length of the superinstruction fusing the pair at
/// (`pc`, `next`).
fn fused_len(op: Op, code: &[u32], next: usize) -> usize {
    match op {
        Op::CmpBr | Op::CheckLoad => 7,
        Op::GepLoad | Op::GepStore => 10,
        Op::CheckPtrLoad => 6,
        Op::CheckedCall => 7 + code[next + 5] as usize,
        Op::AuthCall => 8 + code[next + 5] as usize,
        _ => unreachable!("not a superinstruction: {op:?}"),
    }
}

/// Rewrites one function's stream in place.
fn fuse_function(f: &mut BcFunc, nsigs: usize, stats: &mut FuseStats) {
    let code = &f.code;
    let block_starts: HashSet<u32> = f.block_offsets.iter().copied().collect();

    // Plan pass: walk instruction boundaries left to right, fusing
    // greedily (a fused pair's second instruction is consumed and can't
    // start another pair), and record the new offset of every surviving
    // boundary. Jump targets are always block starts, and block starts
    // are never consumed as second constituents, so the map covers every
    // word the emit pass must translate.
    let mut new_off: HashMap<u32, u32> = HashMap::new();
    let mut plan: Vec<(usize, Option<Op>)> = Vec::new();
    let mut pc = 0usize;
    let mut new_pc = 0u32;
    while pc < code.len() {
        let len = op_len(code, pc);
        let next = pc + len;
        let fused = if next < code.len() && !block_starts.contains(&(next as u32)) {
            match_pair(code, pc, next)
        } else {
            None
        };
        new_off.insert(pc as u32, new_pc);
        plan.push((pc, fused));
        match fused {
            Some(op) => {
                new_pc += fused_len(op, code, next) as u32;
                pc = next + op_len(code, next);
            }
            None => {
                new_pc += len as u32;
                pc = next;
            }
        }
    }

    // Emit pass.
    let mut out: Vec<u32> = Vec::with_capacity(new_pc as usize);
    let target = |w: u32| new_off[&w];
    for (pc, fused) in plan {
        let len = op_len(code, pc);
        let next = pc + len;
        match fused {
            None => match Op::from_u32(code[pc]) {
                Op::Jump => {
                    out.push(Op::Jump as u32);
                    out.push(target(code[pc + 1]));
                }
                Op::Branch => {
                    out.push(Op::Branch as u32);
                    out.push(code[pc + 1]);
                    out.push(target(code[pc + 2]));
                    out.push(target(code[pc + 3]));
                }
                _ => out.extend_from_slice(&code[pc..next]),
            },
            Some(op) => {
                stats.count(op);
                out.push(op as u32);
                match op {
                    Op::CmpBr => {
                        // dest, cmpop, lhs, rhs from the Cmp; remapped
                        // then/else targets from the Branch.
                        out.extend_from_slice(&code[pc + 1..pc + 5]);
                        out.push(target(code[next + 2]));
                        out.push(target(code[next + 3]));
                    }
                    Op::GepLoad => {
                        // The Gep's six operand words, then the Load's
                        // dest/size/space (its ptr word is the gep dest).
                        out.extend_from_slice(&code[pc + 1..pc + 7]);
                        out.push(code[next + 1]);
                        out.push(code[next + 3]);
                        out.push(code[next + 4]);
                    }
                    Op::GepStore => {
                        // The Gep's six operand words, then the Store's
                        // value/size/space (its ptr word is the gep dest).
                        out.extend_from_slice(&code[pc + 1..pc + 7]);
                        out.push(code[next + 2]);
                        out.push(code[next + 3]);
                        out.push(code[next + 4]);
                    }
                    Op::CheckLoad => {
                        // policy, ptr, size_cidx from the Check; the
                        // Load's dest/size/space.
                        out.extend_from_slice(&code[pc + 1..pc + 4]);
                        out.push(code[next + 1]);
                        out.push(code[next + 3]);
                        out.push(code[next + 4]);
                    }
                    Op::CheckPtrLoad => {
                        // policy, ptr, size_cidx from the Check; the
                        // PtrLoad's dest and universal flag.
                        out.extend_from_slice(&code[pc + 1..pc + 4]);
                        out.push(code[next + 2]);
                        out.push(code[next + 4]);
                    }
                    Op::CheckedCall => {
                        // policy from the FnCheck; the CallIndirect's
                        // dest+1, callee, sig_idx, site, nargs, args.
                        let n = code[next + 5] as usize;
                        out.push(code[pc + 1]);
                        out.extend_from_slice(&code[next + 1..next + 6 + n]);
                    }
                    Op::AuthCall => {
                        // adest, avalue, actx from the PacAuth; the
                        // CallIndirect's dest+1, sig_idx, site, nargs,
                        // args (its callee word is the PacAuth dest and
                        // is dropped from the encoding).
                        let n = code[next + 5] as usize;
                        out.extend_from_slice(&code[pc + 1..pc + 4]);
                        out.push(code[next + 1]);
                        out.extend_from_slice(&code[next + 3..next + 6 + n]);
                    }
                    _ => unreachable!("not a superinstruction: {op:?}"),
                }
            }
        }
    }
    debug_assert_eq!(out.len(), new_pc as usize, "plan and emission agree");

    f.code = out;
    for b in &mut f.block_offsets {
        *b = new_off[b];
    }
    validate(f, nsigs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use levee_ir::builder::FuncBuilder;
    use levee_ir::prelude::*;

    /// Decoded opcode histogram of one stream.
    fn ops_of(f: &BcFunc) -> Vec<Op> {
        let mut pc = 0;
        let mut ops = Vec::new();
        while pc < f.code.len() {
            ops.push(Op::from_u32(f.code[pc]));
            pc += op_len(&f.code, pc);
        }
        ops
    }

    fn loop_module() -> Module {
        // while (i < 10) { a[i] = a[i] + 1; i++ } — the cmp+br and
        // gep+load / gep+store idioms in one function.
        let mut m = Module::new("t");
        let arr_ty = Ty::Array(Box::new(Ty::I64), 16);
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let arr = b.alloca(arr_ty, 1);
        let i_slot = b.alloca(Ty::I64, 1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.store(i_slot, 0, Ty::I64);
        b.br(header);
        b.switch_to(header);
        let i = b.load(i_slot, Ty::I64);
        let c = b.cmp(CmpOp::Lt, i, 10);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.load(i_slot, Ty::I64);
        let slot = b.gep(arr, i2, Ty::I64, 0);
        let v = b.load(slot, Ty::I64);
        let v2 = b.bin(BinOp::Add, v, 1, Ty::I64);
        let i3 = b.load(i_slot, Ty::I64);
        let slot2 = b.gep(arr, i3, Ty::I64, 0);
        b.store(slot2, v2, Ty::I64);
        let i4 = b.load(i_slot, Ty::I64);
        let inc = b.bin(BinOp::Add, i4, 1, Ty::I64);
        b.store(i_slot, inc, Ty::I64);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(0.into()));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn fuses_cmp_br_and_gep_memory_idioms() {
        let m = loop_module();
        let mut bc = compile(&m);
        let unfused_words = bc.code_words();
        let stats = fuse(&mut bc);
        assert_eq!(stats.cmp_br, 1);
        assert_eq!(stats.gep_load, 1);
        assert_eq!(stats.gep_store, 1);
        assert_eq!(stats.total(), 3);
        assert!(bc.code_words() < unfused_words);
        let ops = ops_of(&bc.funcs[0]);
        assert!(ops.contains(&Op::CmpBr));
        assert!(ops.contains(&Op::GepLoad));
        assert!(ops.contains(&Op::GepStore));
        assert!(!ops.contains(&Op::Gep), "both geps fused away");
    }

    #[test]
    fn remapped_targets_land_on_block_starts() {
        let m = loop_module();
        let mut bc = compile(&m);
        fuse(&mut bc);
        let f = &bc.funcs[0];
        let boundaries: HashSet<u32> = {
            let mut s = HashSet::new();
            let mut pc = 0;
            while pc < f.code.len() {
                s.insert(pc as u32);
                pc += op_len(&f.code, pc);
            }
            s
        };
        for off in &f.block_offsets {
            assert!(boundaries.contains(off), "block offset {off} off-boundary");
        }
        // Every jump/branch/cmp-br target is a recorded block start.
        let block_set: HashSet<u32> = f.block_offsets.iter().copied().collect();
        let mut pc = 0;
        while pc < f.code.len() {
            match Op::from_u32(f.code[pc]) {
                Op::Jump => assert!(block_set.contains(&f.code[pc + 1])),
                Op::Branch => {
                    assert!(block_set.contains(&f.code[pc + 2]));
                    assert!(block_set.contains(&f.code[pc + 3]));
                }
                Op::CmpBr => {
                    assert!(block_set.contains(&f.code[pc + 5]));
                    assert!(block_set.contains(&f.code[pc + 6]));
                }
                _ => {}
            }
            pc += op_len(&f.code, pc);
        }
    }

    #[test]
    fn no_fusion_across_block_boundaries() {
        // The branch consuming the cmp lives in a *different* block
        // (the cmp's own block ends with an unconditional jump, which
        // sits between them in the stream): the pair must stay unfused
        // even though the cmp result feeds the branch.
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let x = b.bin(BinOp::Add, 1, 2, Ty::I64);
        let c = b.cmp(CmpOp::Gt, x, 0);
        let join = b.new_block();
        let exit = b.new_block();
        b.br(join);
        b.switch_to(join);
        b.cond_br(c, exit, exit);
        b.switch_to(exit);
        b.ret(Some(0.into()));
        m.add_func(b.finish());
        let mut bc = compile(&m);
        let stats = fuse(&mut bc);
        assert_eq!(stats.total(), 0, "nothing fuses across block seams");
    }

    #[test]
    fn fused_stream_is_idempotent_under_refusal() {
        // A second pass finds nothing: superinstructions never chain.
        let m = loop_module();
        let mut bc = compile(&m);
        fuse(&mut bc);
        let once = bc.funcs[0].code.clone();
        let again = fuse(&mut bc);
        assert_eq!(again.total(), 0);
        assert_eq!(bc.funcs[0].code, once);
    }
}
