//! # levee-bc — the bytecode tier
//!
//! A compiler from [`levee_ir`] modules to a compact linear bytecode,
//! consumed by the VM's fast-dispatch engine (`levee_vm`'s
//! `Engine::Bytecode`). The step-walking reference engine interprets the
//! CFG instruction by instruction — re-resolving block ids, recomputing
//! type sizes and looking up call-site maps on every step. This crate
//! does all of that **once, at compile time**:
//!
//! * basic blocks are flattened into one `Vec<u32>` stream per function,
//!   with branch targets pre-resolved to word offsets,
//! * operands are encoded as register slots or constant-pool indices —
//!   no per-value map lookups at run time,
//! * type sizes (`alloca` frame slots, load/store widths, `gep` element
//!   sizes) are pre-computed into the instruction stream,
//! * indirect-call signatures and CFI policies live in a per-module
//!   table ([`BcModule::sigs`]), and every call-shaped instruction
//!   carries its pre-assigned return-site index (numbered identically to
//!   the VM loader via [`levee_ir::func::Function::iter_call_sites`]),
//! * each function gets a precomputed [`FrameDesc`] — register-file
//!   size, argument move plan, cookie/return-slot layout — so the call
//!   path pushes frames from a descriptor instead of re-deriving the
//!   layout from the IR on every call,
//! * an optional peephole pass ([`fuse()`]) rewrites hot adjacent pairs
//!   (compare+branch, gep+load/store, check+load, fncheck+indirect-call)
//!   into superinstructions that the engine executes in one dispatch
//!   while charging the constituents' exact summed cycle cost.
//!
//! The bytecode preserves the IR's observable semantics *exactly* —
//! same traps, same instrumentation behaviour, same cost-model charges —
//! which the `engines` differential suite in `levee-vm` enforces.
//!
//! ## Example
//!
//! ```
//! use levee_ir::prelude::*;
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
//! b.intrinsic(Intrinsic::PrintInt, vec![Operand::Const(42)], Ty::Void);
//! b.ret(Some(0.into()));
//! m.add_func(b.finish());
//!
//! let bc = levee_bc::compile(&m);
//! assert_eq!(bc.funcs.len(), 1);
//! assert!(!bc.funcs[0].code.is_empty());
//! ```

pub mod compile;
pub mod fuse;
pub mod op;

pub use compile::{compile, compile_function};
pub use fuse::{fuse, FuseStats};
pub use op::{
    decode_binop, decode_cast, decode_cmpop, decode_intrinsic, decode_policy, decode_space,
    decode_stack, encode_binop, encode_cast, encode_cmpop, encode_intrinsic, encode_policy,
    encode_space, encode_stack, op_len, Op, OPERAND_CONST_BIT,
};

use levee_ir::func::Function;
use levee_ir::prelude::*;

/// Per-function frame descriptor: everything `call`/`ret` need, computed
/// once at compile time instead of re-derived from the IR on every call.
///
/// The VM's call path used to chase `Module → Function → Protection`
/// plus a side table on each of the millions of calls a kernel makes;
/// with a descriptor the prologue is a handful of flag tests and the
/// frame push is a bulk register-file fill sized by [`FrameDesc::n_regs`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameDesc {
    /// Register-file size: the function's virtual-register count.
    pub n_regs: u32,
    /// Leading registers filled from the argument list (the move plan:
    /// args map 1:1 onto registers `0..n_params`, the rest zero-fill).
    pub n_params: u32,
    /// Return slot lives on the safe stack (§3.2.4 safe stack).
    pub safestack: bool,
    /// Push + check a stack cookie (already gated on the cookie being
    /// meaningful, i.e. the return slot is on the conventional stack).
    pub cookie: bool,
    /// Mirror the return address onto the shadow stack.
    pub shadow_stack: bool,
    /// Returns must target a known return site (coarse CFI).
    pub ret_cfi: bool,
    /// Charge the unsafe-stack frame setup cost (the function runs on
    /// the safe stack but owns unsafe-stack allocas).
    pub unsafe_frame: bool,
}

impl FrameDesc {
    /// Computes the descriptor for one function.
    pub fn of(f: &Function) -> FrameDesc {
        let p = f.protection;
        FrameDesc {
            n_regs: f.locals.len() as u32,
            n_params: f.param_count() as u32,
            safestack: p.safestack,
            cookie: p.stack_cookie && !p.safestack,
            shadow_stack: p.shadow_stack,
            ret_cfi: p.ret_cfi,
            unsafe_frame: p.safestack
                && f.iter_insts().any(|i| {
                    matches!(
                        i,
                        Inst::Alloca {
                            stack: StackKind::Unsafe,
                            ..
                        }
                    )
                }),
        }
    }
}

/// One indirect-call site's pre-resolved signature information.
#[derive(Debug, Clone)]
pub struct SigEntry {
    /// The call's expected signature.
    pub sig: FnSig,
    /// The CFI policy annotation, if the CFI baseline pass ran.
    pub cfi: Option<CfiPolicy>,
}

/// One compiled function: a flat word stream plus its constant pool.
#[derive(Debug, Clone, Default)]
pub struct BcFunc {
    /// The instruction stream. Each instruction is an [`Op`] word
    /// followed by its fixed operand words (calls append their argument
    /// operand words after a count).
    pub code: Vec<u32>,
    /// 64-bit constants referenced by operand words with
    /// [`OPERAND_CONST_BIT`] set, and by size/offset index words.
    pub consts: Vec<u64>,
    /// Word offset of each basic block in `code` (diagnostics and
    /// tests; branches embed resolved offsets directly).
    pub block_offsets: Vec<u32>,
    /// Number of call-shaped instructions (return sites) in the
    /// function.
    pub sites: u32,
    /// The function's precomputed frame descriptor.
    pub frame: FrameDesc,
}

/// A whole module compiled to bytecode.
#[derive(Debug, Clone, Default)]
pub struct BcModule {
    /// Compiled functions, indexed by [`levee_ir::FuncId`].
    pub funcs: Vec<BcFunc>,
    /// Signature table for indirect calls.
    pub sigs: Vec<SigEntry>,
}

impl BcModule {
    /// Total size of all instruction streams, in words.
    pub fn code_words(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}
