//! Opcodes and enum encodings of the linear bytecode.
//!
//! Every instruction is one [`Op`] word followed by fixed operand words;
//! calls additionally carry an argument count and that many operand
//! words. Operand words encode either a virtual-register slot or a
//! constant-pool index (high bit set). The layouts are documented on the
//! variants; the authoritative consumer is `levee_vm`'s bytecode engine.

use levee_ir::prelude::*;

/// Set on an operand word when it indexes the constant pool instead of a
/// register slot.
pub const OPERAND_CONST_BIT: u32 = 0x8000_0000;

/// The opcode of one bytecode instruction.
///
/// Operand-word layouts (after the opcode word):
///
/// | op | words |
/// |---|---|
/// | `Alloca` | dest, size_cidx, stack |
/// | `Load` | dest, ptr, size, space |
/// | `Store` | ptr, value, size, space |
/// | `Gep` | dest, base, index, elem_size_cidx, offset_cidx, is_field |
/// | `GlobalAddr` | dest, global |
/// | `FuncAddr` | dest, func |
/// | `Bin` | dest, binop, lhs, rhs |
/// | `Cmp` | dest, cmpop, lhs, rhs |
/// | `Cast` | dest, kind, value, size |
/// | `Call` | dest+1, func, site, nargs, arg... |
/// | `CallIndirect` | dest+1, callee, sig_idx, site, nargs, arg... |
/// | `IntrinsicCall` | dest+1, which, nargs, arg... |
/// | `PtrStore` | policy, ptr, value, universal |
/// | `PtrLoad` | policy, dest, ptr, universal |
/// | `Check` | policy, ptr, size_cidx |
/// | `FnCheck` | policy, callee |
/// | `SafeMemcpy` | policy, dst, src, len, moving |
/// | `SafeMemset` | policy, dst, byte, len |
/// | `PacSign` | dest, value, ctx |
/// | `PacAuth` | dest, value, ctx |
/// | `Jump` | target_pc |
/// | `Branch` | cond, then_pc, else_pc |
/// | `Ret` | has_value, value |
/// | `Unreachable` | — |
///
/// Superinstructions (emitted only by the fusion pass, [`crate::fuse()`];
/// each is semantically the exact sequence of its two constituents and
/// charges their summed cycle cost):
///
/// | op | constituents | words |
/// |---|---|---|
/// | `CmpBr` | `Cmp`+`Branch` | dest, cmpop, lhs, rhs, then_pc, else_pc |
/// | `GepLoad` | `Gep`+`Load` | gdest, base, index, elem_size_cidx, offset_cidx, is_field, ldest, size, space |
/// | `GepStore` | `Gep`+`Store` | gdest, base, index, elem_size_cidx, offset_cidx, is_field, value, size, space |
/// | `CheckLoad` | `Check`+`Load` | policy, ptr, size_cidx, ldest, lsize, space |
/// | `CheckPtrLoad` | `Check`+`PtrLoad` | policy, ptr, size_cidx, dest, universal |
/// | `CheckedCall` | `FnCheck`+`CallIndirect` | policy, dest+1, callee, sig_idx, site, nargs, arg... |
/// | `AuthCall` | `PacAuth`+`CallIndirect` | adest, avalue, actx, dest+1, sig_idx, site, nargs, arg... |
///
/// `*_cidx` words index the function's constant pool (64-bit values);
/// `dest+1` is zero when the call has no destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    Alloca = 0,
    Load = 1,
    Store = 2,
    Gep = 3,
    GlobalAddr = 4,
    FuncAddr = 5,
    Bin = 6,
    Cmp = 7,
    Cast = 8,
    Call = 9,
    CallIndirect = 10,
    IntrinsicCall = 11,
    PtrStore = 12,
    PtrLoad = 13,
    Check = 14,
    FnCheck = 15,
    SafeMemcpy = 16,
    SafeMemset = 17,
    Jump = 18,
    Branch = 19,
    Ret = 20,
    Unreachable = 21,
    CmpBr = 22,
    GepLoad = 23,
    GepStore = 24,
    CheckLoad = 25,
    CheckPtrLoad = 26,
    CheckedCall = 27,
    PacSign = 28,
    PacAuth = 29,
    AuthCall = 30,
}

impl Op {
    /// Decodes an opcode word.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range word — the compiler only emits valid
    /// opcodes, so this indicates stream corruption.
    #[inline(always)]
    pub fn from_u32(w: u32) -> Op {
        debug_assert!(w <= Op::AuthCall as u32, "bad opcode word {w}");
        // SAFETY in spirit, checked in practice: emitted by `compile`
        // from the enum itself; the match keeps this fully safe code.
        match w {
            0 => Op::Alloca,
            1 => Op::Load,
            2 => Op::Store,
            3 => Op::Gep,
            4 => Op::GlobalAddr,
            5 => Op::FuncAddr,
            6 => Op::Bin,
            7 => Op::Cmp,
            8 => Op::Cast,
            9 => Op::Call,
            10 => Op::CallIndirect,
            11 => Op::IntrinsicCall,
            12 => Op::PtrStore,
            13 => Op::PtrLoad,
            14 => Op::Check,
            15 => Op::FnCheck,
            16 => Op::SafeMemcpy,
            17 => Op::SafeMemset,
            18 => Op::Jump,
            19 => Op::Branch,
            20 => Op::Ret,
            21 => Op::Unreachable,
            22 => Op::CmpBr,
            23 => Op::GepLoad,
            24 => Op::GepStore,
            25 => Op::CheckLoad,
            26 => Op::CheckPtrLoad,
            27 => Op::CheckedCall,
            28 => Op::PacSign,
            29 => Op::PacAuth,
            30 => Op::AuthCall,
            // Out-of-range words fail closed: Unreachable traps
            // immediately, rather than dispatching a variable-length
            // call arm off garbage operand words.
            _ => Op::Unreachable,
        }
    }
}

/// Encoded length, in words, of the instruction starting at `pc`
/// (opcode included). Call-shaped instructions read their argument
/// count out of the stream.
///
/// Shared by the stream validator, the fusion pass and diagnostics so
/// instruction boundaries are computed identically everywhere.
#[inline]
pub fn op_len(code: &[u32], pc: usize) -> usize {
    match Op::from_u32(code[pc]) {
        Op::Alloca | Op::Check | Op::Branch | Op::PacSign | Op::PacAuth => 4,
        Op::Load
        | Op::Store
        | Op::Bin
        | Op::Cmp
        | Op::Cast
        | Op::PtrStore
        | Op::PtrLoad
        | Op::SafeMemset => 5,
        Op::Gep | Op::CmpBr | Op::CheckLoad => 7,
        Op::GlobalAddr | Op::FuncAddr | Op::FnCheck | Op::Ret => 3,
        Op::SafeMemcpy | Op::CheckPtrLoad => 6,
        Op::Jump => 2,
        Op::Unreachable => 1,
        Op::GepLoad | Op::GepStore => 10,
        Op::Call => 5 + code.get(pc + 4).map_or(0, |n| *n as usize),
        Op::CallIndirect => 6 + code.get(pc + 5).map_or(0, |n| *n as usize),
        Op::IntrinsicCall => 4 + code.get(pc + 3).map_or(0, |n| *n as usize),
        Op::CheckedCall => 7 + code.get(pc + 6).map_or(0, |n| *n as usize),
        Op::AuthCall => 8 + code.get(pc + 7).map_or(0, |n| *n as usize),
    }
}

/// Encodes a binary operator.
pub fn encode_binop(op: BinOp) -> u32 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
    }
}

/// Decodes a binary operator.
#[inline(always)]
pub fn decode_binop(w: u32) -> BinOp {
    match w {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        _ => BinOp::Shr,
    }
}

/// Encodes a comparison predicate.
pub fn encode_cmpop(op: CmpOp) -> u32 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

/// Decodes a comparison predicate.
#[inline(always)]
pub fn decode_cmpop(w: u32) -> CmpOp {
    match w {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

/// Encodes a cast kind.
pub fn encode_cast(kind: CastKind) -> u32 {
    match kind {
        CastKind::PtrToPtr => 0,
        CastKind::PtrToInt => 1,
        CastKind::IntToPtr => 2,
        CastKind::IntToInt => 3,
    }
}

/// Decodes a cast kind.
#[inline(always)]
pub fn decode_cast(w: u32) -> CastKind {
    match w {
        0 => CastKind::PtrToPtr,
        1 => CastKind::PtrToInt,
        2 => CastKind::IntToPtr,
        _ => CastKind::IntToInt,
    }
}

/// Encodes a CPI policy.
pub fn encode_policy(p: Policy) -> u32 {
    match p {
        Policy::Cpi => 0,
        Policy::Cps => 1,
        Policy::SoftBound => 2,
    }
}

/// Decodes a CPI policy.
#[inline(always)]
pub fn decode_policy(w: u32) -> Policy {
    match w {
        0 => Policy::Cpi,
        1 => Policy::Cps,
        _ => Policy::SoftBound,
    }
}

/// Encodes a memory space.
pub fn encode_space(s: MemSpace) -> u32 {
    match s {
        MemSpace::Regular => 0,
        MemSpace::SafeStack => 1,
    }
}

/// Decodes a memory space.
#[inline(always)]
pub fn decode_space(w: u32) -> MemSpace {
    if w == 0 {
        MemSpace::Regular
    } else {
        MemSpace::SafeStack
    }
}

/// Encodes a stack kind.
pub fn encode_stack(s: StackKind) -> u32 {
    match s {
        StackKind::Conventional => 0,
        StackKind::Safe => 1,
        StackKind::Unsafe => 2,
    }
}

/// Decodes a stack kind.
#[inline(always)]
pub fn decode_stack(w: u32) -> StackKind {
    match w {
        0 => StackKind::Conventional,
        1 => StackKind::Safe,
        _ => StackKind::Unsafe,
    }
}

/// Encodes an intrinsic as its index in [`Intrinsic::all`].
pub fn encode_intrinsic(i: Intrinsic) -> u32 {
    Intrinsic::all()
        .iter()
        .position(|x| *x == i)
        .expect("every intrinsic is in all()") as u32
}

/// Decodes an intrinsic from its [`Intrinsic::all`] index.
#[inline(always)]
pub fn decode_intrinsic(w: u32) -> Intrinsic {
    Intrinsic::all()[w as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for w in 0..=Op::AuthCall as u32 {
            let op = Op::from_u32(w);
            assert_eq!(op as u32, w);
        }
    }

    #[test]
    fn enum_roundtrips() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
        ] {
            assert_eq!(decode_binop(encode_binop(op)), op);
        }
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(decode_cmpop(encode_cmpop(op)), op);
        }
        for k in [
            CastKind::PtrToPtr,
            CastKind::PtrToInt,
            CastKind::IntToPtr,
            CastKind::IntToInt,
        ] {
            assert_eq!(decode_cast(encode_cast(k)), k);
        }
        for p in [Policy::Cpi, Policy::Cps, Policy::SoftBound] {
            assert_eq!(decode_policy(encode_policy(p)), p);
        }
        for s in [MemSpace::Regular, MemSpace::SafeStack] {
            assert_eq!(decode_space(encode_space(s)), s);
        }
        for s in [StackKind::Conventional, StackKind::Safe, StackKind::Unsafe] {
            assert_eq!(decode_stack(encode_stack(s)), s);
        }
        for i in Intrinsic::all() {
            assert_eq!(decode_intrinsic(encode_intrinsic(*i)), *i);
        }
    }
}
