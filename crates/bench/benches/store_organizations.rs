//! Experiment E6 — §4: wall-clock comparison of the three safe-pointer-
//! store organizations (simple array with 4 KB pages vs 2 MB superpages,
//! two-level lookup table, hash table), on access patterns modelling a
//! CPI-instrumented program: clustered hot pointers (stack/heap
//! locality) plus a scan over a wide address range.
//!
//! The paper found the superpage-backed simple array fastest; the hash
//! table is memory-frugal but scatters accesses.
//!
//! Run with: `cargo bench -p levee-bench --bench store_organizations`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use levee_rt::{Entry, MetaTable, Slot, StoreKind};

/// Clustered working set: 512 hot pointer slots in a 32 KB window, like
/// the live sensitive pointers of a running program. Slots carry real
/// interned handles — the compact representation the VM stores.
fn hot_set(kind: StoreKind) -> u64 {
    let mut meta = MetaTable::new();
    let mut store = kind.instantiate(0x7000_0000_0000);
    let mut acc = 0u64;
    for round in 0..64u64 {
        for slot in 0..512u64 {
            let addr = 0x1000_0000 + slot * 64;
            let prov = meta.intern(Entry::data(addr, addr, addr + 64, round));
            let _ = store.set(addr, Slot::new(addr, prov));
            let (s, _) = store.get(addr);
            acc = acc.wrapping_add(s.map(|s| s.word).unwrap_or(0));
        }
    }
    acc
}

/// Sparse sweep: pointers spread across a 64 MB range (startup /
/// data-structure build phase — the page-fault-sensitive pattern).
fn sparse_sweep(kind: StoreKind) -> u64 {
    let mut meta = MetaTable::new();
    let mut store = kind.instantiate(0x7000_0000_0000);
    let mut acc = 0u64;
    for slot in 0..4096u64 {
        let addr = 0x1000_0000 + slot * 16384;
        let prov = meta.intern(Entry::code(0x40_0000 + slot));
        let _ = store.set(addr, Slot::new(0x40_0000 + slot, prov));
        let (s, _) = store.get(addr);
        acc = acc.wrapping_add(s.map(|s| s.word).unwrap_or(0));
    }
    acc
}

/// memcpy-style slot transfer (the cpi_memcpy path) — with compact
/// slots this moves plain (word, handle) pairs.
fn entry_transfer(kind: StoreKind) -> u64 {
    let mut meta = MetaTable::new();
    let mut store = kind.instantiate(0x7000_0000_0000);
    for slot in 0..256u64 {
        let prov = meta.intern(Entry::code(slot + 1));
        let _ = store.set(0x2000_0000 + slot * 8, Slot::new(slot + 1, prov));
    }
    let mut copied = 0u64;
    for round in 0..32u64 {
        let dst = 0x3000_0000 + round * 4096;
        let (n, _) = store.copy_range(dst, 0x2000_0000, 256 * 8);
        copied += n;
    }
    copied
}

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("safe_pointer_store");
    for kind in StoreKind::all() {
        group.bench_with_input(BenchmarkId::new("hot_set", kind.name()), kind, |b, kind| {
            b.iter(|| black_box(hot_set(*kind)))
        });
        group.bench_with_input(
            BenchmarkId::new("sparse_sweep", kind.name()),
            kind,
            |b, kind| b.iter(|| black_box(sparse_sweep(*kind))),
        );
        group.bench_with_input(
            BenchmarkId::new("entry_transfer", kind.name()),
            kind,
            |b, kind| b.iter(|| black_box(entry_transfer(*kind))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stores);
criterion_main!(benches);
