//! Bench drift gate — compares a fresh deterministic measurement
//! against the recorded baselines in `crates/bench/baselines/` and
//! exits non-zero on regression.
//!
//! What is gated (all *simulated*, hence deterministic, counters):
//!
//! * `engine_compare.json` — instruction and cycle counts of every
//!   (build, kernel) cell, re-run fresh at the recorded iteration
//!   counts. More than `--threshold` percent growth (default 5%)
//!   fails.
//! * `memory_overhead.json` — safe-region bytes per live entry per
//!   store organization, re-measured on the same dense population.
//! * `value_traffic.json` — the compact slot size itself.
//!
//! * `defense_matrix.json` — the CPI-vs-PAC verdict table: RIPE
//!   hijacked/detected counts per Levee mechanism at the recorded
//!   seed (**exact**, not thresholded — verdicts are discrete), plus
//!   PAC sign/auth/instruction/cycle counters of every kernel under
//!   `-fpac` and `-fpac-tight`, trap verdicts included (the
//!   PACTight-incompatible cbstruct cell is pinned as trapping).
//! * `spec_overhead.json` — the drift-gated CPI-vs-PAC cost table:
//!   per-benchmark counters (cycles, instructions, PAC signs/auths)
//!   of the SPEC-like suite at scale 1 under vanilla / CPI / PAC /
//!   PACTight.
//! * `webserver_throughput.json` — the deterministic per-request
//!   snapshot-reset cost of each web-stack page (`pages_dirtied`,
//!   `bytes_restored`): growth means the copy-on-write restore got
//!   genuinely more expensive. Also the `pool_pages` rows: per-request
//!   instruction and cycle counts of each page served through a
//!   2-worker `SessionPool`, which must match serial serving exactly.
//!   Wall-clock columns in the baselines are machine-dependent and
//!   never gated; the throughput numbers themselves only get a shape
//!   check.
//!
//! Every gate is *two-sided*: unexplained shrink fails just like
//! growth, because on deterministic counters a drop means the fresh
//! run stopped counting something (see `drift.rs`).
//!
//! Usage: `cargo run --release -p levee-bench --bin bench_drift
//! [-- --threshold N] [--warn-only] [--record-pac]`.
//! `LEVEE_DRIFT_THRESHOLD` and `LEVEE_DRIFT_WARN_ONLY=1` override from
//! the environment. CI runs this *enforcing*: a deliberate cost-model
//! change lands together with its baseline refresh, and the env
//! overrides are the escape hatch for the rare change whose refresh
//! must follow separately. `--record-pac` re-measures and rewrites the
//! two PAC-era baselines (`defense_matrix.json`, `spec_overhead.json`)
//! in place instead of gating — the supported way to refresh them
//! after an intentional PAC cost-model or verdict change.

use std::path::PathBuf;

use levee_bench::drift::{
    check_counter_rows, check_engine_compare, check_memory_overhead, check_ripe_verdicts,
    check_webserver_pool, check_webserver_reset, CounterRow, DriftCase, DriftReport, FreshCounters,
    DEFAULT_THRESHOLD_PCT,
};
use levee_bench::geometry::{dense_bytes_per_entry, DENSE_ENTRIES};
use levee_bench::json::Json;
use levee_bench::kernels::KERNELS;
use levee_core::{BuildConfig, Session, SessionPool};
use levee_ripe::{all_attacks, evaluate, Profile};
use levee_rt::SLOT_SIZE;
use levee_vm::{StoreKind, VmConfig};
use levee_workloads::{spec_suite, web_stack};

fn baseline(name: &str) -> Result<Json, String> {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "baselines", name]
        .iter()
        .collect();
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Re-runs every (build, kernel) cell of the engine-comparison lineup
/// once and collects its deterministic counters. The engine does not
/// matter — the differential suites pin cycle counts as engine- and
/// fusion-independent — so the default bytecode tier serves.
fn fresh_engine_counters() -> Vec<FreshCounters> {
    let mut out = Vec::new();
    for config in [BuildConfig::Vanilla, BuildConfig::Cpi] {
        for spec in KERNELS {
            let mut session = Session::builder()
                .source(&spec.program())
                .name(spec.name)
                .protection(config)
                .vm_config(VmConfig::default())
                .build()
                .unwrap_or_else(|e| panic!("{}: kernel builds: {e}", spec.name));
            let run = session.run(b"");
            assert!(
                run.success(),
                "{}/{}: kernel must exit cleanly, got {:?}",
                config.name(),
                spec.name,
                run.status
            );
            out.push(FreshCounters {
                build: config.name().to_string(),
                kernel: spec.name.to_string(),
                insts: run.exec.insts,
                cycles: run.exec.cycles,
            });
        }
    }
    out
}

/// The slot-size gate off `value_traffic.json`: the recorded
/// `compact_value_bytes` must equal the live `levee_rt::SLOT_SIZE`.
fn check_value_traffic(baseline: &Json) -> DriftReport {
    let mut report = DriftReport::default();
    match baseline.get("compact_value_bytes").and_then(Json::as_f64) {
        Some(b) => report.cases.push(DriftCase {
            key: "value_traffic".into(),
            metric: "slot_bytes".into(),
            baseline: b,
            current: SLOT_SIZE as f64,
        }),
        None => report
            .errors
            .push("value_traffic baseline: no compact_value_bytes".into()),
    }
    report
}

/// Shape-only check of the wall-clock baseline: it must parse and
/// carry its page rows (throughput itself is machine-dependent).
fn check_webserver_shape(baseline: &Json) -> DriftReport {
    let mut report = DriftReport::default();
    match baseline.get("pages").and_then(Json::as_arr) {
        Some(pages) if !pages.is_empty() => {
            for p in pages {
                if p.get("page").and_then(Json::as_str).is_none()
                    || p.get("resident_rps").and_then(Json::as_f64).is_none()
                {
                    report
                        .errors
                        .push("webserver_throughput baseline: malformed page row".into());
                }
            }
        }
        _ => report
            .errors
            .push("webserver_throughput baseline: no pages array".into()),
    }
    report
}

/// Measures the deterministic per-request snapshot-reset cost of every
/// web-stack page: one resident session, two requests, the second
/// request's [`levee_vm::ResetStats`] — `(page, pages dirtied, bytes
/// restored)`. Mirrors `webserver_throughput`'s serving setup (CPI
/// build, superpage store, snapshot resets are the default).
fn fresh_reset_costs() -> Vec<(String, u64, u64)> {
    web_stack()
        .iter()
        .map(|w| {
            let mut session = Session::builder()
                .source(&w.source(1))
                .name(w.name)
                .protection(BuildConfig::Cpi)
                .store(StoreKind::ArraySuperpage)
                .build()
                .unwrap_or_else(|e| panic!("{}: page builds: {e}", w.name));
            let reports = session.run_batch([b"".as_slice(), b"".as_slice()]);
            let reset = reports[1].reset;
            assert!(
                reset.used_snapshot,
                "{}: second request must recycle via the snapshot path",
                w.name
            );
            (
                w.name.to_string(),
                reset.pages_dirtied,
                reset.bytes_restored,
            )
        })
        .collect()
}

/// Measures the deterministic per-request execution counters of every
/// web-stack page served through a 2-worker [`SessionPool`] —
/// `(page, insts, cycles)` — gated against the baseline's `pool_pages`
/// rows. Requests within the batch are also asserted bit-identical to
/// each other, so a worker whose forked machine diverged from its
/// siblings fails here even before the counter comparison.
fn fresh_pool_counters() -> Vec<(String, u64, u64)> {
    web_stack()
        .iter()
        .map(|w| {
            let mut pool = SessionPool::builder()
                .source(&w.source(1))
                .name(w.name)
                .protection(BuildConfig::Cpi)
                .store(StoreKind::ArraySuperpage)
                .workers(2)
                .build()
                .unwrap_or_else(|e| panic!("{}: page builds: {e}", w.name));
            let reports = pool.run_batch(std::iter::repeat_n(b"", 4));
            let first = &reports[0];
            for r in &reports[1..] {
                assert_eq!(
                    (r.output.as_str(), r.exec),
                    (first.output.as_str(), first.exec),
                    "{}: pooled requests must be bit-identical across workers",
                    w.name
                );
            }
            (w.name.to_string(), first.exec.insts, first.exec.cycles)
        })
        .collect()
}

/// Runs `src` under `config` and collects its [`CounterRow`] —
/// *without* asserting a clean exit: PACTight-incompatible cells trap
/// at a deterministic point and their counters (and the trap verdict
/// itself) are gated like any other.
fn counter_row(id: String, name: &str, src: &str, config: BuildConfig) -> CounterRow {
    let mut session = Session::builder()
        .source(src)
        .name(name)
        .protection(config)
        .store(StoreKind::ArraySuperpage)
        .build()
        .unwrap_or_else(|e| panic!("{id}: workload builds: {e}"));
    let run = session.run(b"");
    CounterRow {
        id,
        insts: run.exec.insts,
        cycles: run.exec.cycles,
        pac_signs: run.exec.pac_signs,
        pac_auths: run.exec.pac_auths,
        trapped: !run.success(),
    }
}

/// Re-runs every kernel of the engine-comparison lineup under both PAC
/// modes — the `pac_rows` half of `defense_matrix.json`.
fn fresh_pac_kernel_counters() -> Vec<CounterRow> {
    let mut out = Vec::new();
    for config in [BuildConfig::Pac, BuildConfig::PacTight] {
        for spec in KERNELS {
            out.push(counter_row(
                format!("{}/{}", config.name(), spec.name),
                spec.name,
                &spec.program(),
                config,
            ));
        }
    }
    out
}

/// Re-measures the CPI-vs-PAC spec table at scale 1: every SPEC-like
/// workload under vanilla / CPI / PAC / PACTight.
fn fresh_spec_counters() -> Vec<CounterRow> {
    let mut out = Vec::new();
    for w in spec_suite() {
        let src = w.source(1);
        for config in [
            BuildConfig::Vanilla,
            BuildConfig::Cpi,
            BuildConfig::Pac,
            BuildConfig::PacTight,
        ] {
            out.push(counter_row(
                format!("{}/{}", w.name, config.name()),
                w.name,
                &src,
                config,
            ));
        }
    }
    out
}

/// Seed of the recorded RIPE verdict rows — `defense_matrix`'s own.
const RIPE_SEED: u64 = 7;

/// Re-runs the RIPE matrix for every Levee mechanism at the recorded
/// seed: `(mechanism, hijacked, detected)`.
fn fresh_ripe_verdicts() -> Vec<(String, usize, usize)> {
    let attacks = all_attacks();
    [
        BuildConfig::SafeStack,
        BuildConfig::Cps,
        BuildConfig::Cpi,
        BuildConfig::Pac,
        BuildConfig::PacTight,
    ]
    .iter()
    .map(|c| {
        let tally = evaluate(&attacks, &Profile::Levee(*c), RIPE_SEED);
        (c.name().to_string(), tally.successes(), tally.detected)
    })
    .collect()
}

fn render_counter_rows(rows: &[CounterRow]) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "    {{\"id\": \"{}\", \"insts\": {}, \"cycles\": {}, \
                 \"pac_signs\": {}, \"pac_auths\": {}, \"trapped\": {}}}",
                r.id, r.insts, r.cycles, r.pac_signs, r.pac_auths, r.trapped
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

/// Rewrites the two PAC-era baselines from fresh measurements.
fn record_pac_baselines(
    verdicts: &[(String, usize, usize)],
    pac_rows: &[CounterRow],
    spec_rows: &[CounterRow],
) {
    let dir: PathBuf = [env!("CARGO_MANIFEST_DIR"), "baselines"].iter().collect();
    let verdict_rows = verdicts
        .iter()
        .map(|(m, h, d)| {
            format!("    {{\"mechanism\": \"{m}\", \"hijacked\": {h}, \"detected\": {d}}}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let defense = format!(
        "{{\n  \"seed\": {RIPE_SEED},\n  \"verdicts\": [\n{}\n  ],\n  \"rows\": [\n{}\n  ]\n}}\n",
        verdict_rows,
        render_counter_rows(pac_rows)
    );
    let spec = format!(
        "{{\n  \"scale\": 1,\n  \"rows\": [\n{}\n  ]\n}}\n",
        render_counter_rows(spec_rows)
    );
    for (name, text) in [
        ("defense_matrix.json", defense),
        ("spec_overhead.json", spec),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        println!("recorded {}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = std::env::var("LEVEE_DRIFT_THRESHOLD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD_PCT);
    let mut warn_only = std::env::var("LEVEE_DRIFT_WARN_ONLY").is_ok_and(|v| v == "1");
    let mut record_pac = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--threshold needs a number"));
            }
            "--warn-only" => warn_only = true,
            "--record-pac" => record_pac = true,
            other => panic!(
                "unknown argument {other:?} (want --threshold N | --warn-only | --record-pac)"
            ),
        }
        i += 1;
    }

    if record_pac {
        println!("re-measuring the PAC kernel lineup (both PAC modes)...");
        let pac_rows = fresh_pac_kernel_counters();
        println!("re-measuring the CPI-vs-PAC spec table (scale 1)...");
        let spec_rows = fresh_spec_counters();
        println!("re-running the RIPE matrix for every Levee mechanism (seed {RIPE_SEED})...");
        let verdicts = fresh_ripe_verdicts();
        record_pac_baselines(&verdicts, &pac_rows, &spec_rows);
        return;
    }

    let mut combined = DriftReport::default();
    let mut absorb = |what: &str, r: Result<DriftReport, String>| match r {
        Ok(mut rep) => {
            combined.cases.append(&mut rep.cases);
            combined.errors.append(&mut rep.errors);
        }
        Err(e) => combined.errors.push(format!("{what}: {e}")),
    };

    println!("re-running the engine-comparison lineup (deterministic counters)...");
    let fresh = fresh_engine_counters();
    absorb(
        "engine_compare",
        baseline("engine_compare.json").map(|b| check_engine_compare(&b, &fresh)),
    );

    println!("re-measuring store geometry ({DENSE_ENTRIES} dense entries)...");
    let geometry: Vec<(String, f64)> = StoreKind::all()
        .iter()
        .map(|k| {
            (
                k.name().to_string(),
                dense_bytes_per_entry(*k, DENSE_ENTRIES),
            )
        })
        .collect();
    absorb(
        "memory_overhead",
        baseline("memory_overhead.json").map(|b| check_memory_overhead(&b, &geometry)),
    );
    absorb(
        "value_traffic",
        baseline("value_traffic.json").map(|b| check_value_traffic(&b)),
    );
    println!("re-measuring the PAC kernel lineup (both PAC modes)...");
    let pac_rows = fresh_pac_kernel_counters();
    println!("re-measuring the CPI-vs-PAC spec table (scale 1)...");
    let spec_rows = fresh_spec_counters();
    println!("re-running the RIPE matrix for every Levee mechanism (seed {RIPE_SEED})...");
    let verdicts = fresh_ripe_verdicts();
    absorb(
        "defense_matrix",
        baseline("defense_matrix.json").map(|b| {
            let mut rep = check_ripe_verdicts(&b, &verdicts);
            let mut counters = check_counter_rows("defense_matrix", &b, &pac_rows);
            rep.cases.append(&mut counters.cases);
            rep.errors.append(&mut counters.errors);
            rep
        }),
    );
    absorb(
        "spec_overhead",
        baseline("spec_overhead.json").map(|b| check_counter_rows("spec_overhead", &b, &spec_rows)),
    );
    println!("re-measuring per-request snapshot-reset costs (web stack)...");
    let reset_costs = fresh_reset_costs();
    println!("re-serving the web stack through a 2-worker pool (deterministic counters)...");
    let pool_counters = fresh_pool_counters();
    absorb(
        "webserver_throughput",
        baseline("webserver_throughput.json").map(|b| {
            let mut rep = check_webserver_shape(&b);
            for mut part in [
                check_webserver_reset(&b, &reset_costs),
                check_webserver_pool(&b, &pool_counters),
            ] {
                rep.cases.append(&mut part.cases);
                rep.errors.append(&mut part.errors);
            }
            rep
        }),
    );

    println!();
    print!("{}", combined.render(threshold));
    if combined.ok(threshold) {
        println!("drift gate: PASS");
    } else if warn_only {
        println!("drift gate: FAIL (warn-only mode, not failing the build)");
    } else {
        println!("drift gate: FAIL");
        std::process::exit(1);
    }
}
