//! Experiment E11 — §3.3's Perl-opcode discussion and the CFI-bypass
//! results [19, 15, 9]: static CFI admits redirecting an opcode
//! dispatch pointer to *any* valid-typed handler, while CPS only admits
//! code pointers the program actually assigned — and the corrupted
//! regular-memory copy is simply never used.
//!
//! Usage: `cargo run -p levee-bench --bin cfi_bypass`

use levee_bench::Table;
use levee_core::BuildConfig;
use levee_defenses::Deployment;
use levee_ripe::{
    run_attack, AbuseFn, Attack, AttackResult, Location, Payload, Profile, Target, Technique,
};

fn main() {
    println!("§3.3 / §5.2 — CFI bypass vs CPS/CPI\n");
    // The attack: corrupt a global function pointer (a dispatch-table
    // slot) and redirect it to an existing function of the SAME type
    // signature that the program never assigned to it — precisely what
    // static CFI cannot distinguish.
    let attack = Attack {
        location: Location::Bss,
        target: Target::FuncPtr,
        technique: Technique::Direct,
        abuse: AbuseFn::ReadInput,
        payload: Payload::FuncReuse,
    };
    let mut table = Table::new(&["defense", "outcome", "verdict"]);
    for (name, profile) in [
        (
            "CFI coarse (any function)",
            Profile::Deployment(Deployment::CoarseCfi),
        ),
        ("CFI type-based", Profile::Deployment(Deployment::TypeCfi)),
        ("CPS", Profile::Levee(BuildConfig::Cps)),
        ("CPI", Profile::Levee(BuildConfig::Cpi)),
    ] {
        let result = run_attack(&attack, &profile, 99);
        let (outcome, verdict) = match &result {
            AttackResult::Hijacked => ("HIJACKED".to_string(), "bypassed"),
            AttackResult::Detected(by) => (format!("detected by {by}"), "stopped"),
            AttackResult::Crashed(why) => (format!("crashed ({why})"), "stopped"),
            AttackResult::Survived => ("program survived".to_string(), "stopped silently"),
        };
        table.row(vec![name.to_string(), outcome, verdict.to_string()]);
    }
    table.print();
    println!(
        "\nExpected: both CFI variants are bypassed (the target is a valid,\n\
         matching-signature function); CPS and CPI stop the attack because\n\
         the authentic pointer lives in the safe store."
    );

    // And a ROP-style bypass of the coarse return policy.
    let rop = Attack {
        location: Location::Stack,
        target: Target::RetAddr,
        technique: Technique::Direct,
        abuse: AbuseFn::Memcpy,
        payload: Payload::Rop,
    };
    let coarse = run_attack(&rop, &Profile::Deployment(Deployment::CoarseCfi), 99);
    let cpi = run_attack(&rop, &Profile::Levee(BuildConfig::Cpi), 99);
    println!(
        "\nReturn-to-gadget (valid return site): coarse CFI → {:?}; CPI safe stack → {:?}",
        coarse, cpi
    );
}
