//! Experiment E11 — §3.3's Perl-opcode discussion and the CFI-bypass
//! results [19, 15, 9]: static CFI admits redirecting an opcode
//! dispatch pointer to *any* valid-typed handler, while CPS only admits
//! code pointers the program actually assigned — and the corrupted
//! regular-memory copy is simply never used.
//!
//! Usage: `cargo run -p levee-bench --bin cfi_bypass [--json]
//! [--profile]` (`--profile` prints execution attribution for the
//! dispatch-table victim built under CPI.)

use levee_bench::profile::profile_run;
use levee_bench::{print_json_rows, BenchArgs, Table};
use levee_core::session::json_str;
use levee_core::BuildConfig;
use levee_defenses::Deployment;
use levee_ripe::{
    run_attack, AbuseFn, Attack, AttackResult, Location, Payload, Profile, Target, Technique,
};

fn main() {
    let args = BenchArgs::parse();
    if !args.json {
        println!("§3.3 / §5.2 — CFI bypass vs CPS/CPI\n");
    }
    // The attack: corrupt a global function pointer (a dispatch-table
    // slot) and redirect it to an existing function of the SAME type
    // signature that the program never assigned to it — precisely what
    // static CFI cannot distinguish.
    let attack = Attack {
        location: Location::Bss,
        target: Target::FuncPtr,
        technique: Technique::Direct,
        abuse: AbuseFn::ReadInput,
        payload: Payload::FuncReuse,
    };
    let mut table = Table::new(&["defense", "outcome", "verdict"]);
    let mut json_rows = Vec::new();
    for (name, profile) in [
        (
            "CFI coarse (any function)",
            Profile::Deployment(Deployment::CoarseCfi),
        ),
        ("CFI type-based", Profile::Deployment(Deployment::TypeCfi)),
        ("CPS", Profile::Levee(BuildConfig::Cps)),
        ("CPI", Profile::Levee(BuildConfig::Cpi)),
    ] {
        let result = run_attack(&attack, &profile, 99);
        let (outcome, verdict) = match &result {
            AttackResult::Hijacked => ("HIJACKED".to_string(), "bypassed"),
            AttackResult::Detected(by) => (format!("detected by {by}"), "stopped"),
            AttackResult::Crashed(why) => (format!("crashed ({why})"), "stopped"),
            AttackResult::Survived => ("program survived".to_string(), "stopped silently"),
        };
        json_rows.push(format!(
            "{{\"defense\": {}, \"outcome\": {}, \"verdict\": {}}}",
            json_str(name),
            json_str(&outcome),
            json_str(verdict)
        ));
        table.row(vec![name.to_string(), outcome, verdict.to_string()]);
    }

    // And a ROP-style bypass of the coarse return policy.
    let rop = Attack {
        location: Location::Stack,
        target: Target::RetAddr,
        technique: Technique::Direct,
        abuse: AbuseFn::Memcpy,
        payload: Payload::Rop,
    };
    let coarse = run_attack(&rop, &Profile::Deployment(Deployment::CoarseCfi), 99);
    let cpi = run_attack(&rop, &Profile::Levee(BuildConfig::Cpi), 99);

    if args.json {
        // AttackResult's payload variants carry free-form trap names —
        // escape the Debug renderings so the row stays valid JSON.
        json_rows.push(format!(
            "{{\"rop\": {{\"coarse_cfi\": {}, \"cpi\": {}}}}}",
            json_str(&format!("{coarse:?}")),
            json_str(&format!("{cpi:?}"))
        ));
        print_json_rows("cfi_bypass", &json_rows);
        return;
    }
    table.print();
    println!(
        "\nExpected: both CFI variants are bypassed (the target is a valid,\n\
         matching-signature function); CPS and CPI stop the attack because\n\
         the authentic pointer lives in the safe store."
    );
    println!(
        "\nReturn-to-gadget (valid return site): coarse CFI → {:?}; CPI safe stack → {:?}",
        coarse, cpi
    );
    if args.profile {
        profile_run(
            &format!("cfi_bypass: victim {} under CPI", attack.id()),
            "cfi-victim",
            &levee_ripe::generate(&attack),
            BuildConfig::Cpi,
            levee_vm::StoreKind::ArraySuperpage,
        );
    }
}
