//! Experiment E3 — Table 2: compilation statistics per benchmark:
//! FNUStack (fraction of functions needing an unsafe stack frame),
//! MOCPS and MOCPI (fraction of memory operations instrumented).
//!
//! Usage: `cargo run -p levee-bench --bin compilation_stats [--json]
//! [--profile]` (`--json` runs each build once at scale 1 and emits the
//! `levee::RunReport` rows — build statistics ride on the report;
//! `--profile` additionally prints execution attribution for the first
//! workload's CPI build, connecting the static MOCPI fraction to the
//! dynamic check-site counters.)

use levee_bench::profile::profile_run;
use levee_bench::{print_json_rows, BenchArgs, Table};
use levee_core::{BuildConfig, LeveeError, Session};
use levee_vm::StoreKind;
use levee_workloads::spec_suite;

fn main() -> Result<(), LeveeError> {
    let args = BenchArgs::parse();
    if args.json {
        // Quick mode: one checked run per (workload, config) — the
        // build stats every table below reads live on the reports.
        let mut json_rows = Vec::new();
        for w in spec_suite() {
            for config in [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi] {
                let mut session = Session::builder()
                    .source(&w.source(1))
                    .name(w.name)
                    .protection(config)
                    .build()?;
                json_rows.push(session.run_ok(b"")?.to_json());
            }
        }
        print_json_rows("compilation_stats", &json_rows);
        return Ok(());
    }

    println!("Table 2 — compilation statistics (paper: FNUStack <25% typical,");
    println!("MOCPS ≪ MOCPI ≪ 100%, omnetpp/xalancbmk as MOCPI outliers)\n");
    let mut table = Table::new(&["benchmark", "FNUStack", "MOCPS", "MOCPI"]);
    // Compile-time statistics only — no machine is needed, so this
    // path stays on the driver (`build_source`) rather than paying a
    // module load per (workload, config) through a session.
    let build = |w: &levee_workloads::Workload, config| -> Result<_, LeveeError> {
        let built = levee_core::build_source(&w.source(1), w.name, config).map_err(|error| {
            LeveeError::Compile {
                name: w.name.to_string(),
                error,
            }
        })?;
        Ok(built.stats)
    };
    for w in spec_suite() {
        let ss = build(&w, BuildConfig::SafeStack)?;
        let cps = build(&w, BuildConfig::Cps)?;
        let cpi = build(&w, BuildConfig::Cpi)?;
        table.row(vec![
            w.spec_id.to_string(),
            format!("{:.1}%", ss.fnustack() * 100.0),
            format!("{:.1}%", cps.mo_fraction() * 100.0),
            format!("{:.1}%", cpi.mo_fraction() * 100.0),
        ]);
    }
    table.print();

    println!("\nAggregate over the suite:");
    let mut mem = 0u64;
    let mut inst = 0u64;
    for w in spec_suite() {
        let cpi = build(&w, BuildConfig::Cpi)?;
        mem += cpi.mem_ops;
        inst += cpi.instrumented_mem_ops;
    }
    println!(
        "  CPI instruments {inst}/{mem} = {:.1}% of memory operations \
         (paper: 6.5% of pointer operations on SPEC)",
        inst as f64 / mem as f64 * 100.0
    );
    if args.profile {
        let w = &spec_suite()[0];
        profile_run(
            &format!("compilation_stats: {}/CPI (scale 1)", w.name),
            w.name,
            &w.source(1),
            BuildConfig::Cpi,
            StoreKind::ArraySuperpage,
        );
    }
    Ok(())
}
