//! Experiment E3 — Table 2: compilation statistics per benchmark:
//! FNUStack (fraction of functions needing an unsafe stack frame),
//! MOCPS and MOCPI (fraction of memory operations instrumented).
//!
//! Usage: `cargo run -p levee-bench --bin compilation_stats`

use levee_bench::Table;
use levee_core::{build_source, BuildConfig};
use levee_workloads::spec_suite;

fn main() {
    println!("Table 2 — compilation statistics (paper: FNUStack <25% typical,");
    println!("MOCPS ≪ MOCPI ≪ 100%, omnetpp/xalancbmk as MOCPI outliers)\n");
    let mut table = Table::new(&["benchmark", "FNUStack", "MOCPS", "MOCPI"]);
    for w in spec_suite() {
        let src = w.source(1);
        let ss = build_source(&src, w.name, BuildConfig::SafeStack).expect("builds");
        let cps = build_source(&src, w.name, BuildConfig::Cps).expect("builds");
        let cpi = build_source(&src, w.name, BuildConfig::Cpi).expect("builds");
        table.row(vec![
            w.spec_id.to_string(),
            format!("{:.1}%", ss.stats.fnustack() * 100.0),
            format!("{:.1}%", cps.stats.mo_fraction() * 100.0),
            format!("{:.1}%", cpi.stats.mo_fraction() * 100.0),
        ]);
    }
    table.print();

    println!("\nAggregate over the suite:");
    let mut mem = 0u64;
    let mut inst = 0u64;
    for w in spec_suite() {
        let cpi = build_source(&w.source(1), w.name, BuildConfig::Cpi).expect("builds");
        mem += cpi.stats.mem_ops;
        inst += cpi.stats.instrumented_mem_ops;
    }
    println!(
        "  CPI instruments {inst}/{mem} = {:.1}% of memory operations \
         (paper: 6.5% of pointer operations on SPEC)",
        inst as f64 / mem as f64 * 100.0
    );
}
