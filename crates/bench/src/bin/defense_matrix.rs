//! Experiment E9 — Figure 5: the defense-mechanism comparison matrix.
//! For every implemented mechanism: does it stop all control-flow
//! hijacks (measured against the RIPE-like suite), and what does it
//! cost (measured on the SPEC-like suite)?
//!
//! Usage: `cargo run -p levee-bench --bin defense_matrix [-- scale]`

use levee_bench::Table;
use levee_core::BuildConfig;
use levee_defenses::Deployment;
use levee_ripe::{all_attacks, evaluate, Profile};
use levee_vm::{StoreKind, VmConfig};
use levee_workloads::spec_suite;

/// Average overhead of a Deployment's passes over a few workloads.
fn deployment_overhead(d: Deployment, scale: u64) -> f64 {
    let mut total = 0.0;
    let mut n = 0.0;
    for w in spec_suite().iter().take(6) {
        let src = w.source(scale);
        let base_module = levee_minic::compile(&src, w.name).expect("compiles");
        let mut base_vm = levee_vm::Machine::new(&base_module, VmConfig::default());
        let base = base_vm.run(b"");

        let mut module = levee_minic::compile(&src, w.name).expect("compiles");
        d.apply(&mut module);
        let mut vm = levee_vm::Machine::new(&module, d.vm_config(VmConfig::default()));
        let run = vm.run(b"");
        total += run.stats.overhead_pct(&base.stats);
        n += 1.0;
    }
    total / n
}

/// Average overhead of a Levee config over a few workloads.
fn levee_overhead(c: BuildConfig, scale: u64) -> f64 {
    let mut total = 0.0;
    let mut n = 0.0;
    for w in spec_suite().iter().take(6) {
        let row = levee_workloads::overhead_row(w, scale, &[c], StoreKind::ArraySuperpage);
        total += row.overhead(c).expect("measured");
        n += 1.0;
    }
    total / n
}

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let attacks = all_attacks();
    println!(
        "Figure 5 — defense mechanisms vs {} hijack attempts + average overhead\n",
        attacks.len()
    );
    let mut table = Table::new(&["mechanism", "hijacks leaked", "stops all?", "avg overhead"]);

    for d in Deployment::all() {
        let tally = evaluate(&attacks, &Profile::Deployment(*d), 7);
        table.row(vec![
            d.name().to_string(),
            tally.successes().to_string(),
            if tally.successes() == 0 { "yes" } else { "NO" }.to_string(),
            format!("{:+.1}%", deployment_overhead(*d, scale)),
        ]);
    }
    for c in [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi] {
        let tally = evaluate(&attacks, &Profile::Levee(c), 7);
        table.row(vec![
            c.name().to_string(),
            tally.successes().to_string(),
            if tally.successes() == 0 { "yes" } else { "NO" }.to_string(),
            format!("{:+.1}%", levee_overhead(c, scale)),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape (Fig. 5): only CPI stops all hijacks by construction;\n\
         CPS stops all observed ones at ~2% cost; baselines each leak a class."
    );
}
