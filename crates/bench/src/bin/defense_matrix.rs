//! Experiment E9 — Figure 5: the defense-mechanism comparison matrix.
//! For every implemented mechanism: does it stop all control-flow
//! hijacks (measured against the RIPE-like suite), and what does it
//! cost (measured on the SPEC-like suite)?
//!
//! The matrix is also the CPI-vs-PAC table: the PAC family rows show
//! plain `-fpac` stopping every classic hijack yet leaking the
//! substitution (seal-replay) attacks, and `-fpac-tight` closing them
//! by re-binding each seal to its slot — at the compatibility cost of
//! trapping on workloads that memcpy callback-carrying records (those
//! are excluded from its overhead average and counted in the JSON
//! row). `bench_drift` gates both the verdict counts and the PAC
//! sign/auth counters against `baselines/defense_matrix.json`.
//!
//! Usage: `cargo run -p levee-bench --bin defense_matrix [-- scale]
//! [--json] [--profile]` (`--json` emits one row per mechanism at a
//! quick scale; `--profile` prints execution attribution for the first
//! suite workload under CPI — the only mechanism that stops every
//! hijack.)

use levee_bench::profile::profile_run;
use levee_bench::{pct, print_json_rows, BenchArgs, Table};
use levee_core::{json_f64, BuildConfig, LeveeError, Session};
use levee_defenses::Deployment;
use levee_ripe::{all_attacks, evaluate, Profile};
use levee_vm::{StoreKind, VmConfig};
use levee_workloads::spec_suite;

/// Average overhead of a Deployment's passes over a few workloads —
/// each (baseline, deployed) pair served through `Session`s.
fn deployment_overhead(d: Deployment, scale: u64) -> Result<f64, LeveeError> {
    let mut total = 0.0;
    let mut n = 0.0;
    for w in spec_suite().iter().take(6) {
        let src = w.source(scale);
        let base_module = levee_minic::compile(&src, w.name).expect("compiles");
        let base = Session::builder()
            .module(base_module)
            .name(w.name)
            .vm_config(VmConfig::default())
            .build()?
            .run_ok(b"")?;

        let mut module = levee_minic::compile(&src, w.name).expect("compiles");
        d.apply(&mut module);
        let run = Session::builder()
            .module(module)
            .name(w.name)
            .vm_config(d.vm_config(VmConfig::default()))
            .build()?
            .run_ok(b"")?;
        total += run.overhead_pct(&base);
        n += 1.0;
    }
    Ok(total / n)
}

/// Average overhead of a Levee config over a few workloads, plus how
/// many of them the config refuses to run. Only PACTight may refuse:
/// its per-slot seal binding traps on workloads that memcpy
/// callback-carrying records, so those are skipped (and counted)
/// rather than averaged — any other build error propagates.
fn levee_overhead(c: BuildConfig, scale: u64) -> Result<(f64, usize), LeveeError> {
    let mut total = 0.0;
    let mut n = 0.0;
    let mut incompatible = 0;
    for w in spec_suite().iter().take(6) {
        match levee_workloads::overhead_row(w, scale, &[c], StoreKind::ArraySuperpage) {
            Ok(row) => {
                total += row.overhead(c).expect("measured");
                n += 1.0;
            }
            Err(_) if c == BuildConfig::PacTight => incompatible += 1,
            Err(e) => return Err(e),
        }
    }
    Ok((total / n, incompatible))
}

fn main() -> Result<(), LeveeError> {
    let args = BenchArgs::parse();
    let scale = args.scale_or(2, 1);
    let attacks = all_attacks();
    if !args.json {
        println!(
            "Figure 5 — defense mechanisms vs {} hijack attempts + average overhead\n",
            attacks.len()
        );
    }
    let mut table = Table::new(&[
        "mechanism",
        "hijacks leaked",
        "detected",
        "stops all?",
        "avg overhead",
    ]);
    let mut json_rows = Vec::new();
    let mut record = |table: &mut Table,
                      name: String,
                      leaked: usize,
                      detected: usize,
                      overhead: f64,
                      incompatible: usize| {
        json_rows.push(format!(
            "{{\"mechanism\": \"{name}\", \"hijacks_leaked\": {leaked}, \
             \"detected\": {detected}, \"stops_all\": {}, \
             \"avg_overhead_pct\": {}, \"incompatible_workloads\": {incompatible}}}",
            leaked == 0,
            json_f64(overhead, 2)
        ));
        table.row(vec![
            name,
            leaked.to_string(),
            detected.to_string(),
            if leaked == 0 { "yes" } else { "NO" }.to_string(),
            if incompatible == 0 {
                pct(overhead)
            } else {
                format!("{} ({incompatible} trap)", pct(overhead))
            },
        ]);
    };

    for d in Deployment::all() {
        let tally = evaluate(&attacks, &Profile::Deployment(*d), 7);
        let overhead = deployment_overhead(*d, scale)?;
        record(
            &mut table,
            d.name().to_string(),
            tally.successes(),
            tally.detected,
            overhead,
            0,
        );
    }
    for c in [
        BuildConfig::SafeStack,
        BuildConfig::Cps,
        BuildConfig::Cpi,
        BuildConfig::Pac,
        BuildConfig::PacTight,
    ] {
        let tally = evaluate(&attacks, &Profile::Levee(c), 7);
        let (overhead, incompatible) = levee_overhead(c, scale)?;
        record(
            &mut table,
            c.name().to_string(),
            tally.successes(),
            tally.detected,
            overhead,
            incompatible,
        );
    }
    if args.json {
        print_json_rows("defense_matrix", &json_rows);
    } else {
        table.print();
        println!(
            "\nExpected shape (Fig. 5): only CPI stops all hijacks by construction;\n\
             CPS stops all observed ones at ~2% cost; baselines each leak a class.\n\
             PAC stops every classic hijack but leaks the substitution replays;\n\
             PACTight closes those too at the cost of trapping on workloads that\n\
             memcpy callback records."
        );
        if args.profile {
            let w = &spec_suite()[0];
            profile_run(
                &format!("defense_matrix: {}/CPI (scale {scale})", w.name),
                w.name,
                &w.source(scale),
                BuildConfig::Cpi,
                StoreKind::ArraySuperpage,
            );
        }
    }
    Ok(())
}
