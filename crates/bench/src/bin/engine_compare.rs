//! Engine comparison — the bytecode tier vs the step-walking reference.
//!
//! Runs every `levee-workloads` kernel under both engines and both a
//! vanilla and a CPI build, asserting **identical simulated cycle
//! counts, instruction counts and output** (the cost model is engine
//! independent), and reporting wall-clock speedup. Each measurement is
//! the minimum of several repetitions, which rejects scheduler noise.
//!
//! The speedup is bounded by how much of a kernel's wall-clock goes to
//! interpreter dispatch rather than to the simulation work both engines
//! share (cache model, memory image, frame setup, intrinsic bodies):
//! compute-bound kernels approach the dispatch-elimination limit, while
//! call- and intrinsic-heavy kernels are dominated by shared costs.
//!
//! Run with: `cargo run --release -p levee-bench --bin engine_compare`

use std::time::Instant;

use levee_bench::Table;
use levee_core::{build_source, BuildConfig};
use levee_vm::{Engine, Machine, VmConfig};
use levee_workloads::kernels;

/// Repetitions per (kernel, engine); the minimum is reported.
const REPS: usize = 5;

struct KernelSpec {
    name: &'static str,
    source: &'static str,
    entry: &'static str,
    iters: u64,
}

const KERNELS: &[KernelSpec] = &[
    KernelSpec {
        name: "dispatch",
        source: kernels::DISPATCH,
        entry: "dispatch_kernel",
        iters: 20_000,
    },
    KernelSpec {
        name: "vcall",
        source: kernels::VCALL,
        entry: "vcall_kernel",
        iters: 20_000,
    },
    KernelSpec {
        name: "numeric",
        source: kernels::NUMERIC,
        entry: "numeric_kernel",
        iters: 100_000,
    },
    KernelSpec {
        name: "bigstack",
        source: kernels::BIGSTACK,
        entry: "bigstack_kernel",
        iters: 400,
    },
    KernelSpec {
        name: "strings",
        source: kernels::STRINGS,
        entry: "string_kernel",
        iters: 2_000,
    },
    KernelSpec {
        name: "graph",
        source: kernels::GRAPH,
        entry: "graph_kernel",
        iters: 100_000,
    },
    KernelSpec {
        name: "cbstruct",
        source: kernels::CBSTRUCT,
        entry: "cbstruct_kernel",
        iters: 10_000,
    },
    KernelSpec {
        name: "heapchurn",
        source: kernels::HEAPCHURN,
        entry: "heap_kernel",
        iters: 20_000,
    },
    KernelSpec {
        name: "bulkcopy",
        source: kernels::BULKCOPY,
        entry: "bulkcopy_kernel",
        iters: 4_000,
    },
    KernelSpec {
        name: "calltree",
        source: kernels::CALLTREE,
        entry: "calltree_kernel",
        iters: 40_000,
    },
    KernelSpec {
        name: "ptrdense",
        source: kernels::PTRDENSE,
        entry: "ptrdense_kernel",
        iters: 40_000,
    },
];

/// Best-of-`REPS` wall-clock for one engine; checks the run every time.
fn measure(module: &levee_ir::Module, base: VmConfig, engine: Engine) -> (f64, u64, u64, String) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    let mut insts = 0;
    let mut output = String::new();
    for _ in 0..REPS {
        let mut vm = Machine::new(module, base.with_engine(engine));
        let t0 = Instant::now();
        let out = vm.run(b"");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            out.status.is_success(),
            "kernel must exit cleanly under {engine:?}, got {:?}",
            out.status
        );
        best = best.min(dt);
        cycles = out.stats.cycles;
        insts = out.stats.insts;
        output = out.output;
    }
    (best, cycles, insts, output)
}

fn main() {
    let mut totals = [0.0f64; 2]; // walk, bytecode
    for config in [BuildConfig::Vanilla, BuildConfig::Cpi] {
        println!("== build: {} ==", config.name());
        let mut table = Table::new(&[
            "kernel",
            "insts",
            "cycles",
            "walk ms",
            "bytecode ms",
            "speedup",
        ]);
        for spec in KERNELS {
            let src = kernels::assemble(&[spec.source], &[(spec.entry, spec.iters)]);
            let built = build_source(&src, spec.name, config).unwrap();
            let base = built.vm_config(VmConfig::default());
            let (walk_ms, walk_cycles, walk_insts, walk_out) =
                measure(&built.module, base, Engine::Walk);
            let (bc_ms, bc_cycles, bc_insts, bc_out) =
                measure(&built.module, base, Engine::Bytecode);
            assert_eq!(
                walk_cycles, bc_cycles,
                "{}: cycle counts diverge",
                spec.name
            );
            assert_eq!(
                walk_insts, bc_insts,
                "{}: instruction counts diverge",
                spec.name
            );
            assert_eq!(walk_out, bc_out, "{}: output diverges", spec.name);
            totals[0] += walk_ms;
            totals[1] += bc_ms;
            table.row(vec![
                spec.name.into(),
                walk_insts.to_string(),
                walk_cycles.to_string(),
                format!("{walk_ms:.2}"),
                format!("{bc_ms:.2}"),
                format!("{:.2}x", walk_ms / bc_ms),
            ]);
        }
        table.print();
        println!();
    }
    let speedup = totals[0] / totals[1];
    println!(
        "aggregate: walk {:.1} ms, bytecode {:.1} ms — {speedup:.2}x at identical cycle counts",
        totals[0], totals[1]
    );
    assert!(
        speedup >= 1.4,
        "bytecode engine regressed: expected >=1.4x aggregate, got {speedup:.2}x"
    );
}
