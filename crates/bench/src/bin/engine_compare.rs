//! Engine comparison — the bytecode tier (fused and unfused) vs the
//! step-walking reference.
//!
//! Runs every `levee-workloads` kernel under three execution
//! configurations — the walker, the bytecode engine with
//! superinstruction fusion off, and with fusion on — and both a vanilla
//! and a CPI build, asserting **identical simulated cycle counts,
//! instruction counts and output** (the cost model is engine and
//! fusion independent), and reporting wall-clock speedups. Each
//! measurement is the minimum of several repetitions, which rejects
//! scheduler noise.
//!
//! The walk→bytecode speedup is bounded by how much of a kernel's
//! wall-clock goes to interpreter dispatch rather than to the
//! simulation work all engines share (cache model, memory image, frame
//! setup, intrinsic bodies); fusion then removes a further slice of
//! the remaining dispatch — one fetch/decode per fused pair — so its
//! win concentrates in tight-loop kernels (`dispatch`, `numeric`,
//! `vcall`) where compare+branch and gep+load pairs dominate.
//!
//! Run with: `cargo run --release -p levee-bench --bin engine_compare`
//! (`--json` emits a machine-readable report; the checked-in baseline
//! lives in `crates/bench/baselines/engine_compare.json`; `--profile`
//! additionally runs each kernel with the execution profiler on,
//! prints per-opcode/per-function attribution, and gates the
//! profiler's invariants: attribution partitions the cycle count
//! exactly, and superinstruction dispatch counts are consistent with
//! the fusion planner).

use std::time::Instant;

use levee_bench::kernels::{KernelSpec, FUSION_KERNELS, KERNELS};
use levee_bench::profile::print_profile;
use levee_bench::{BenchArgs, Table};
use levee_core::{BuildConfig, Session};
use levee_vm::{Engine, VmConfig};

/// Repetitions per (kernel, configuration); the minimum is reported.
const REPS: usize = 5;

/// Best-of-`REPS` wall-clock for one configuration; checks the run
/// every time. The session's resident machine serves every rep —
/// `Session::reset` re-arms it outside the timed window (bit-identical
/// to a fresh machine), and compile/fuse happens once via
/// `Session::precompile`.
fn measure(
    session: &mut Session,
    base: VmConfig,
    engine: Engine,
    fusion: bool,
) -> (f64, u64, u64, String) {
    session.reconfigure(|cfg| *cfg = base.with_engine(engine).with_fusion(fusion));
    session.precompile(); // one-time compile/fuse stays out of the timing
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    let mut insts = 0;
    let mut output = String::new();
    for _ in 0..REPS {
        session.reset();
        let t0 = Instant::now();
        let out = session.run(b"");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            out.success(),
            "kernel must exit cleanly under {engine:?}/fusion={fusion}, got {:?}",
            out.status
        );
        best = best.min(dt);
        cycles = out.exec.cycles;
        insts = out.exec.insts;
        output = out.output;
    }
    (best, cycles, insts, output)
}

/// The `--profile` pass for one kernel: re-runs it (fused bytecode,
/// profiler on, outside any timed window), prints the attribution
/// tables, and gates the profiler's invariants against the counters the
/// timed passes just measured.
fn profile_pass(
    session: &mut Session,
    base: VmConfig,
    spec: &KernelSpec,
    config: BuildConfig,
    timed_cycles: u64,
    timed_insts: u64,
) {
    session.reconfigure(|cfg| {
        *cfg = base
            .with_engine(Engine::Bytecode)
            .with_fusion(true)
            .with_profile(true)
    });
    session.precompile();
    let fuse = session.fuse_stats().expect("bytecode tier compiled");
    let run = session.run(b"");
    assert!(
        run.success(),
        "{}: profiled run must exit cleanly",
        spec.name
    );
    let report = run.profile.as_ref().expect("profiler on");
    // Cycle-neutrality + exact attribution: the profiled run reproduces
    // the timed passes' counters, and the per-opcode table partitions
    // them without remainder.
    assert_eq!(
        (run.exec.cycles, run.exec.insts),
        (timed_cycles, timed_insts),
        "{}: profiler must be cycle-neutral",
        spec.name
    );
    assert_eq!(
        report.op_cycle_total(),
        run.exec.cycles,
        "{}: per-op cycles must partition the run",
        spec.name
    );
    // On the fusion-hot kernels the planner's pair counts must be
    // consistent with what actually dispatched: every planned pattern
    // executes, and nothing executes unplanned.
    if FUSION_KERNELS.contains(&spec.name) {
        for (op, planned) in [
            ("CmpBr", fuse.cmp_br),
            ("GepLoad", fuse.gep_load),
            ("GepStore", fuse.gep_store),
            ("CheckLoad", fuse.check_load),
            ("CheckPtrLoad", fuse.check_ptr_load),
            ("CheckedCall", fuse.checked_call),
        ] {
            assert_eq!(
                planned > 0,
                report.op_count(op) > 0,
                "{}: planner fused {planned} {op} pairs but the profiler \
                 counted {} dispatches",
                spec.name,
                report.op_count(op)
            );
        }
    }
    print_profile(&format!("{}/{}", config.name(), spec.name), report);
}

fn main() {
    let args = BenchArgs::parse();
    let json = args.json;
    let mut totals = [0.0f64; 3]; // walk, bytecode unfused, bytecode fused
    let mut fusion_kernel_totals = [0.0f64; 2]; // unfused, fused on FUSION_KERNELS
    let mut json_rows = Vec::new();
    for config in [BuildConfig::Vanilla, BuildConfig::Cpi] {
        if !json {
            println!("== build: {} ==", config.name());
        }
        let mut table = Table::new(&[
            "kernel",
            "insts",
            "cycles",
            "walk ms",
            "unfused ms",
            "fused ms",
            "bc speedup",
            "fusion speedup",
        ]);
        for spec in KERNELS {
            // One session per (kernel, build config): compiled once,
            // reconfigured per engine, machine reused across reps.
            let mut session = Session::builder()
                .source(&spec.program())
                .name(spec.name)
                .protection(config)
                .vm_config(VmConfig::default())
                .build()
                .unwrap_or_else(|e| panic!("kernel builds: {e}"));
            let base = session.vm_config();
            let (walk_ms, walk_cycles, walk_insts, walk_out) =
                measure(&mut session, base, Engine::Walk, false);
            let (unfused_ms, unfused_cycles, unfused_insts, unfused_out) =
                measure(&mut session, base, Engine::Bytecode, false);
            let (fused_ms, fused_cycles, fused_insts, fused_out) =
                measure(&mut session, base, Engine::Bytecode, true);
            assert_eq!(
                (walk_cycles, walk_cycles),
                (unfused_cycles, fused_cycles),
                "{}: cycle counts diverge",
                spec.name
            );
            assert_eq!(
                (walk_insts, walk_insts),
                (unfused_insts, fused_insts),
                "{}: instruction counts diverge",
                spec.name
            );
            assert_eq!(walk_out, unfused_out, "{}: output diverges", spec.name);
            assert_eq!(walk_out, fused_out, "{}: output diverges", spec.name);
            totals[0] += walk_ms;
            totals[1] += unfused_ms;
            totals[2] += fused_ms;
            if FUSION_KERNELS.contains(&spec.name) {
                fusion_kernel_totals[0] += unfused_ms;
                fusion_kernel_totals[1] += fused_ms;
            }
            table.row(vec![
                spec.name.into(),
                walk_insts.to_string(),
                walk_cycles.to_string(),
                format!("{walk_ms:.2}"),
                format!("{unfused_ms:.2}"),
                format!("{fused_ms:.2}"),
                format!("{:.2}x", walk_ms / fused_ms),
                format!("{:.2}x", unfused_ms / fused_ms),
            ]);
            json_rows.push(format!(
                "    {{\"build\": \"{}\", \"kernel\": \"{}\", \"insts\": {}, \"cycles\": {}, \
                 \"walk_ms\": {:.3}, \"unfused_ms\": {:.3}, \"fused_ms\": {:.3}}}",
                config.name(),
                spec.name,
                walk_insts,
                walk_cycles,
                walk_ms,
                unfused_ms,
                fused_ms,
            ));
            if args.profile {
                profile_pass(&mut session, base, spec, config, walk_cycles, walk_insts);
            }
        }
        if !json {
            table.print();
            println!();
        }
    }
    let bc_speedup = totals[0] / totals[2];
    let fusion_speedup = totals[1] / totals[2];
    let fusion_hot_speedup = fusion_kernel_totals[0] / fusion_kernel_totals[1];
    if json {
        println!("{{");
        println!("  \"reps\": {REPS},");
        println!("  \"rows\": [");
        println!("{}", json_rows.join(",\n"));
        println!("  ],");
        println!("  \"aggregate\": {{");
        println!("    \"walk_ms\": {:.3},", totals[0]);
        println!("    \"unfused_ms\": {:.3},", totals[1]);
        println!("    \"fused_ms\": {:.3},", totals[2]);
        println!("    \"bc_speedup\": {bc_speedup:.3},");
        println!("    \"fusion_speedup\": {fusion_speedup:.3},");
        println!("    \"fusion_hot_kernel_speedup\": {fusion_hot_speedup:.3}");
        println!("  }}");
        println!("}}");
    } else {
        println!(
            "aggregate: walk {:.1} ms, bytecode unfused {:.1} ms, fused {:.1} ms — \
             {bc_speedup:.2}x over walk, fusion {fusion_speedup:.2}x over unfused \
             ({fusion_hot_speedup:.2}x on {FUSION_KERNELS:?}) at identical cycle counts",
            totals[0], totals[1], totals[2]
        );
    }
    assert!(
        bc_speedup >= 1.4,
        "bytecode engine regressed: expected >=1.4x aggregate over walk, got {bc_speedup:.2}x"
    );
    // The recorded baseline shows ~1.04-1.05x; the gate sits well below
    // it so sustained scheduler noise on shared CI runners (which
    // min-of-REPS cannot reject) doesn't flake the job, while an actual
    // fusion regression (fused slower than unfused) still fails.
    assert!(
        fusion_hot_speedup >= 1.005,
        "fusion regressed: expected a measurable win over unfused bytecode on \
         {FUSION_KERNELS:?}, got {fusion_hot_speedup:.3}x"
    );
}
