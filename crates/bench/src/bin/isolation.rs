//! Experiment E10 — §3.2.3: the cost of safe-region isolation
//! mechanisms, and the crash-proneness of guessing attacks against
//! information hiding.
//!
//! Paper: SFI adds <5%; under information hiding "most failed guessing
//! attempts would crash the program".
//!
//! Usage: `cargo run -p levee-bench --bin isolation [-- scale] [--json]
//! [--profile]` (`--json` runs the quick profile and emits
//! per-isolation rows; `--profile` prints execution attribution for
//! the first suite workload under CPI.)

use levee_bench::profile::profile_run;
use levee_bench::{pct, print_json_rows, BenchArgs, Table};
use levee_core::{json_f64, BuildConfig, LeveeError, Session};
use levee_vm::{GuessOutcome, Isolation, StoreKind};
use levee_workloads::spec_suite;

fn main() -> Result<(), LeveeError> {
    let args = BenchArgs::parse();
    let scale = args.scale_or(4, 1);

    if !args.json {
        println!("§3.2.3 — isolation mechanism cost under CPI (scale {scale})\n");
    }
    let mut table = Table::new(&["isolation", "avg CPI overhead"]);
    let mut json_rows = Vec::new();
    for iso in [
        Isolation::Segmentation,
        Isolation::InfoHiding,
        Isolation::Sfi,
    ] {
        let mut total = 0.0;
        let mut n = 0.0;
        for w in spec_suite().iter().take(8) {
            let src = w.source(scale);
            let base_run = Session::builder()
                .source(&src)
                .name(w.name)
                .protection(BuildConfig::Vanilla)
                .configure(|cfg| cfg.isolation = Isolation::Segmentation) // plain baseline
                .build()?
                .run_ok(b"")?;

            let run = Session::builder()
                .source(&src)
                .name(w.name)
                .protection(BuildConfig::Cpi)
                .store(StoreKind::ArraySuperpage)
                .configure(move |cfg| cfg.isolation = iso)
                .build()?
                .run_ok(b"")?;
            total += run.overhead_pct(&base_run);
            n += 1.0;
        }
        json_rows.push(format!(
            "{{\"isolation\": \"{iso:?}\", \"avg_cpi_overhead_pct\": {}}}",
            json_f64(total / n, 2)
        ));
        table.row(vec![format!("{iso:?}"), pct(total / n)]);
    }
    if !args.json {
        table.print();
        println!("\nExpected: SFI ≈ segmentation + a few % (one mask per memory access).\n");
    }

    // Guessing attack against information hiding.
    let src = spec_suite()[0].source(1);
    let session = Session::builder()
        .source(&src)
        .name("victim")
        .protection(BuildConfig::Cpi)
        .seed(0xFEE1)
        .configure(|cfg| cfg.isolation = Isolation::InfoHiding)
        .build()?;
    let (mut hits, mut crashes, mut misses) = (0u64, 0u64, 0u64);
    let probes = 2048u64;
    for i in 0..probes {
        let guess =
            levee_vm::layout::SAFE_REGION_MIN + i * (levee_vm::layout::SAFE_REGION_WINDOW / probes);
        match session.attacker_guess(guess) {
            GuessOutcome::Hit => hits += 1,
            GuessOutcome::Crash => crashes += 1,
            GuessOutcome::Miss => misses += 1,
        }
    }
    if args.json {
        json_rows.push(format!(
            "{{\"guessing\": {{\"probes\": {probes}, \"hits\": {hits}, \"crashes\": {crashes}, \
             \"misses\": {misses}, \"guess_space\": {}}}}}",
            session.guess_space()
        ));
        print_json_rows("isolation", &json_rows);
        return Ok(());
    }
    println!(
        "Guessing the hidden safe region: {probes} probes → {hits} hits, \
         {crashes} crashes, {misses} silent misses"
    );
    println!(
        "Guess space: {} equally likely bases → every probe is ~{:.2}% likely to hit,\n\
         and every miss crashes the process (detectable crash storm).",
        session.guess_space(),
        100.0 / session.guess_space() as f64
    );
    if args.profile {
        let w = &spec_suite()[0];
        profile_run(
            &format!("isolation: {}/CPI (scale {scale})", w.name),
            w.name,
            &w.source(scale),
            BuildConfig::Cpi,
            StoreKind::ArraySuperpage,
        );
    }
    Ok(())
}
