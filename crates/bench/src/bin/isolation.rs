//! Experiment E10 — §3.2.3: the cost of safe-region isolation
//! mechanisms, and the crash-proneness of guessing attacks against
//! information hiding.
//!
//! Paper: SFI adds <5%; under information hiding "most failed guessing
//! attempts would crash the program".
//!
//! Usage: `cargo run -p levee-bench --bin isolation [-- scale]`

use levee_bench::{pct, Table};
use levee_core::{build_source, BuildConfig};
use levee_vm::{GuessOutcome, Isolation, Machine, StoreKind, VmConfig};
use levee_workloads::spec_suite;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("§3.2.3 — isolation mechanism cost under CPI (scale {scale})\n");
    let mut table = Table::new(&["isolation", "avg CPI overhead"]);
    for iso in [
        Isolation::Segmentation,
        Isolation::InfoHiding,
        Isolation::Sfi,
    ] {
        let mut total = 0.0;
        let mut n = 0.0;
        for w in spec_suite().iter().take(8) {
            let src = w.source(scale);
            let base = build_source(&src, w.name, BuildConfig::Vanilla).expect("builds");
            let mut base_cfg = base.vm_config(VmConfig::default());
            base_cfg.isolation = Isolation::Segmentation; // plain baseline
            let base_run = Machine::new(&base.module, base_cfg).run(b"");

            let built = build_source(&src, w.name, BuildConfig::Cpi).expect("builds");
            let mut cfg = built.vm_config(VmConfig::default());
            cfg.isolation = iso;
            cfg.store_kind = StoreKind::ArraySuperpage;
            let run = Machine::new(&built.module, cfg).run(b"");
            total += run.stats.overhead_pct(&base_run.stats);
            n += 1.0;
        }
        table.row(vec![format!("{iso:?}"), pct(total / n)]);
    }
    table.print();
    println!("\nExpected: SFI ≈ segmentation + a few % (one mask per memory access).\n");

    // Guessing attack against information hiding.
    let src = spec_suite()[0].source(1);
    let built = build_source(&src, "victim", BuildConfig::Cpi).expect("builds");
    let mut cfg = built.vm_config(VmConfig::default());
    cfg.isolation = Isolation::InfoHiding;
    cfg.seed = 0xFEE1;
    let vm = Machine::new(&built.module, cfg);
    let (mut hits, mut crashes, mut misses) = (0u64, 0u64, 0u64);
    let probes = 2048u64;
    for i in 0..probes {
        let guess =
            levee_vm::layout::SAFE_REGION_MIN + i * (levee_vm::layout::SAFE_REGION_WINDOW / probes);
        match vm.attacker_guess(guess) {
            GuessOutcome::Hit => hits += 1,
            GuessOutcome::Crash => crashes += 1,
            GuessOutcome::Miss => misses += 1,
        }
    }
    println!(
        "Guessing the hidden safe region: {probes} probes → {hits} hits, \
         {crashes} crashes, {misses} silent misses"
    );
    println!(
        "Guess space: {} equally likely bases → every probe is ~{:.2}% likely to hit,\n\
         and every miss crashes the process (detectable crash storm).",
        vm.guess_space(),
        100.0 / vm.guess_space() as f64
    );
}
