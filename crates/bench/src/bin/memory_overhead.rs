//! Experiment E5 — §5.2's memory-overhead paragraph: safe-region memory
//! cost per configuration and store organization.
//!
//! Paper (SPEC medians): SafeStack 0.1%; CPS 2.1% (hash) / 5.6%
//! (array); CPI 13.9% (hash) / 105% (array). We report the 4 KB-page
//! array (simulated programs are far smaller than SPEC, so superpage
//! rounding would swamp the signal; the array ≫ hash ordering is the
//! reproduced claim).
//!
//! Usage: `cargo run -p levee-bench --bin memory_overhead [-- scale]`

use levee_bench::Table;
use levee_core::BuildConfig;
use levee_vm::StoreKind;
use levee_workloads::{measure, spec_suite};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("§5.2 memory overhead — safe-region bytes vs baseline residency (scale {scale})\n");
    let mut table = Table::new(&["config", "store", "median mem overhead", "max"]);
    for config in [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi] {
        for store in [StoreKind::Hash, StoreKind::Array4K] {
            let mut overheads: Vec<f64> = Vec::new();
            for w in spec_suite() {
                let base = measure(&w, scale, BuildConfig::Vanilla, store);
                let m = measure(&w, scale, config, store);
                overheads.push(m.store_overhead_pct(&base));
            }
            overheads.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = overheads[overheads.len() / 2];
            let max = *overheads.last().expect("non-empty");
            table.row(vec![
                config.name().to_string(),
                store.name().to_string(),
                format!("{median:.1}%"),
                format!("{max:.1}%"),
            ]);
        }
    }
    table.print();
    println!("\nExpected shape: array ≫ hash; CPI ≫ CPS ≫ SafeStack ≈ 0.");
}
