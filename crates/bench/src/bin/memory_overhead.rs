//! Experiment E5 — §5.2's memory-overhead paragraph: safe-region memory
//! cost per configuration and store organization.
//!
//! Paper (SPEC medians): SafeStack 0.1%; CPS 2.1% (hash) / 5.6%
//! (array); CPI 13.9% (hash) / 105% (array). We report the 4 KB-page
//! array (simulated programs are far smaller than SPEC, so superpage
//! rounding would swamp the signal; the array ≫ hash ordering is the
//! reproduced claim).
//!
//! The second section measures **simulated safe-region bytes per live
//! entry** for every organization on a dense population, against the
//! seed's inline-entry geometry: compact 16-byte `(word, MetaId)` slots
//! (`levee_rt::SLOT_SIZE`) halve the per-slot footprint the seed's
//! 32-byte `Entry` records needed, and the bench asserts the shrink is
//! ≥ 1.8× for *every* organization.
//!
//! Usage: `cargo run -p levee-bench --bin memory_overhead [-- scale]`
//! (`--json` emits the machine-readable bytes-per-entry report; the
//! checked-in baseline lives in
//! `crates/bench/baselines/memory_overhead.json`).

use levee_bench::Table;
use levee_core::BuildConfig;
use levee_rt::{MetaId, Slot, SLOT_SIZE};
use levee_vm::StoreKind;
use levee_workloads::{measure, spec_suite};

/// Dense population size: contiguous pointer slots covering 4 MB of key
/// space — wide enough that even 2 MB superpage rounding cannot mask
/// the slot-size ratio (the compact layout needs 4 superpages here, the
/// seed layout needed 8).
const DENSE_ENTRIES: u64 = 1 << 19;

/// The seed's inline-entry geometry, kept as the "before" reference:
/// 32 bytes per slot (`value + lower + upper + id`), and a 40-byte hash
/// bucket (8-byte key tag + the inline entry).
const SEED_SLOT: u64 = 32;
const SEED_HASH_BUCKET: u64 = 8 + SEED_SLOT;

/// Measured bytes per live entry after populating `n` contiguous slots.
fn dense_bytes_per_entry(kind: StoreKind, n: u64) -> f64 {
    let mut store = kind.instantiate(0x7000_0000_0000);
    for i in 0..n {
        // Handle liveness is irrelevant to geometry; NONE keeps the
        // bench free of a MetaTable without changing a single byte.
        let _ = store.set(i * 8, Slot::new(i, MetaId::NONE));
    }
    assert_eq!(store.entry_count() as u64, n);
    store.memory_bytes() as f64 / n as f64
}

/// What the same dense population cost under the seed geometry,
/// computed from the organizations' (unchanged) layout rules with the
/// 32-byte slot plugged back in.
fn seed_bytes_per_entry(kind: StoreKind, n: u64) -> f64 {
    let bytes = match kind {
        StoreKind::Array4K | StoreKind::ArraySuperpage => {
            // Sparse linear array: pages materialize on touch; n
            // contiguous slots span n * SEED_SLOT metadata bytes.
            let page: u64 = if kind == StoreKind::Array4K {
                4 << 10
            } else {
                2 << 20
            };
            (n * SEED_SLOT).div_ceil(page) * page
        }
        StoreKind::TwoLevel => {
            // 512-slot leaves plus 4 KB directory pages (the directory
            // is slot-size independent: 8 bytes per leaf pointer).
            let leaves = n.div_ceil(512);
            let dir_pages = (leaves * 8).div_ceil(4096);
            leaves * 512 * SEED_SLOT + dir_pages * 4096
        }
        StoreKind::Hash => {
            // Replay the (slot-size independent) growth rule: start at
            // 64 buckets, double when the next insert would push the
            // load factor past 0.7.
            let mut cap = 64u64;
            for live in 0..n {
                if (live + 1) * 10 > cap * 7 {
                    cap *= 2;
                }
            }
            cap * SEED_HASH_BUCKET
        }
    };
    bytes as f64 / n as f64
}

struct Shrink {
    org: &'static str,
    seed: f64,
    compact: f64,
    shrink: f64,
}

fn measure_shrinks() -> Vec<Shrink> {
    StoreKind::all()
        .iter()
        .map(|kind| {
            let seed = seed_bytes_per_entry(*kind, DENSE_ENTRIES);
            let compact = dense_bytes_per_entry(*kind, DENSE_ENTRIES);
            let shrink = seed / compact;
            assert!(
                shrink >= 1.8,
                "{}: compact slots must shrink safe-region bytes/entry ≥1.8× \
                 (seed {seed:.1} B, compact {compact:.1} B, {shrink:.2}x)",
                kind.name()
            );
            Shrink {
                org: kind.name(),
                seed,
                compact,
                shrink,
            }
        })
        .collect()
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let shrinks = measure_shrinks();

    if json {
        let mut rows = String::new();
        for s in &shrinks {
            rows.push_str(&format!(
                "    {{\"org\": \"{}\", \"seed_bytes_per_entry\": {:.2}, \
                 \"compact_bytes_per_entry\": {:.2}, \"shrink\": {:.2}}},\n",
                s.org, s.seed, s.compact, s.shrink
            ));
        }
        rows.pop();
        rows.pop(); // trailing ",\n"
        println!(
            "{{\n  \"slot_size\": {SLOT_SIZE},\n  \"seed_slot_size\": {SEED_SLOT},\n  \
             \"dense_entries\": {DENSE_ENTRIES},\n  \"orgs\": [\n{rows}\n  ]\n}}"
        );
        return;
    }

    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("§5.2 memory overhead — safe-region bytes vs baseline residency (scale {scale})\n");
    let mut table = Table::new(&["config", "store", "median mem overhead", "max"]);
    for config in [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi] {
        for store in [StoreKind::Hash, StoreKind::Array4K] {
            let mut overheads: Vec<f64> = Vec::new();
            for w in spec_suite() {
                let base = measure(&w, scale, BuildConfig::Vanilla, store)
                    .unwrap_or_else(|e| panic!("{e}"));
                let m = measure(&w, scale, config, store).unwrap_or_else(|e| panic!("{e}"));
                overheads.push(m.store_overhead_pct(&base));
            }
            overheads.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = overheads[overheads.len() / 2];
            let max = *overheads.last().expect("non-empty");
            table.row(vec![
                config.name().to_string(),
                store.name().to_string(),
                format!("{median:.1}%"),
                format!("{max:.1}%"),
            ]);
        }
    }
    table.print();
    println!("\nExpected shape: array ≫ hash; CPI ≫ CPS ≫ SafeStack ≈ 0.");

    println!(
        "\nbytes per live entry, dense population of {DENSE_ENTRIES} slots (seed vs compact):\n"
    );
    let mut t2 = Table::new(&["store", "seed B/entry", "compact B/entry", "shrink"]);
    for s in &shrinks {
        t2.row(vec![
            s.org.to_string(),
            format!("{:.1}", s.seed),
            format!("{:.1}", s.compact),
            format!("{:.2}x", s.shrink),
        ]);
    }
    t2.print();
    println!("\nEvery organization must shrink ≥1.8x (asserted above).");
}
