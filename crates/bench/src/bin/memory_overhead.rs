//! Experiment E5 — §5.2's memory-overhead paragraph: safe-region memory
//! cost per configuration and store organization.
//!
//! Paper (SPEC medians): SafeStack 0.1%; CPS 2.1% (hash) / 5.6%
//! (array); CPI 13.9% (hash) / 105% (array). We report the 4 KB-page
//! array (simulated programs are far smaller than SPEC, so superpage
//! rounding would swamp the signal; the array ≫ hash ordering is the
//! reproduced claim).
//!
//! The second section measures **simulated safe-region bytes per live
//! entry** for every organization on a dense population, against the
//! seed's inline-entry geometry: compact 16-byte `(word, MetaId)` slots
//! (`levee_rt::SLOT_SIZE`) halve the per-slot footprint the seed's
//! 32-byte `Entry` records needed, and the bench asserts the shrink is
//! ≥ 1.8× for *every* organization.
//!
//! Usage: `cargo run -p levee-bench --bin memory_overhead [-- scale]
//! [--json] [--profile]` (`--json` emits the machine-readable
//! bytes-per-entry report; the checked-in baseline lives in
//! `crates/bench/baselines/memory_overhead.json`; `--profile` prints
//! execution attribution for a representative CPI run against the
//! hashtable organization).

use levee_bench::geometry::{
    dense_bytes_per_entry, seed_bytes_per_entry, DENSE_ENTRIES, SEED_SLOT,
};
use levee_bench::profile::profile_run;
use levee_bench::{pct, BenchArgs, Table};
use levee_core::{BuildConfig, Session};
use levee_rt::SLOT_SIZE;
use levee_vm::StoreKind;
use levee_workloads::{measure, spec_suite, web_stack};

struct Shrink {
    org: &'static str,
    seed: f64,
    compact: f64,
    shrink: f64,
}

struct SnapshotFootprint {
    page: &'static str,
    snapshot_pages: usize,
    snapshot_bytes: u64,
    private_after_run: u64,
    private_after_reset: u64,
}

/// The copy-on-write snapshot's residency cost per web-stack page: the
/// post-load image is `Arc`-shared with live memory, so its *extra*
/// cost is only the pages a run dirtied (each split into a private
/// copy). After `reset` re-shares them, the snapshot is free again —
/// asserted, because a leak here would grow every resident session by
/// its full image size.
fn measure_snapshot_footprint() -> Vec<SnapshotFootprint> {
    web_stack()
        .iter()
        .map(|w| {
            let mut session = Session::builder()
                .source(&w.source(1))
                .name(w.name)
                .protection(BuildConfig::Cpi)
                .store(StoreKind::ArraySuperpage)
                .build()
                .unwrap_or_else(|e| panic!("{}: page builds: {e}", w.name));
            let snapshot_pages = session.snapshot_pages();
            assert!(snapshot_pages > 0, "{}: boot captures a snapshot", w.name);
            assert_eq!(
                session.snapshot_private_bytes(),
                0,
                "{}: the fresh snapshot is fully shared with live memory",
                w.name
            );
            session.run(b"");
            let private_after_run = session.snapshot_private_bytes();
            session.reset();
            let private_after_reset = session.snapshot_private_bytes();
            assert_eq!(
                private_after_reset, 0,
                "{}: reset must re-share every dirtied page",
                w.name
            );
            SnapshotFootprint {
                page: w.name,
                snapshot_pages,
                snapshot_bytes: snapshot_pages as u64 * levee_vm::mem::PAGE_SIZE,
                private_after_run,
                private_after_reset,
            }
        })
        .collect()
}

fn measure_shrinks() -> Vec<Shrink> {
    StoreKind::all()
        .iter()
        .map(|kind| {
            let seed = seed_bytes_per_entry(*kind, DENSE_ENTRIES);
            let compact = dense_bytes_per_entry(*kind, DENSE_ENTRIES);
            let shrink = seed / compact;
            assert!(
                shrink >= 1.8,
                "{}: compact slots must shrink safe-region bytes/entry ≥1.8× \
                 (seed {seed:.1} B, compact {compact:.1} B, {shrink:.2}x)",
                kind.name()
            );
            Shrink {
                org: kind.name(),
                seed,
                compact,
                shrink,
            }
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    let json = args.json;
    let shrinks = measure_shrinks();
    let footprints = measure_snapshot_footprint();

    if json {
        let mut rows = String::new();
        for s in &shrinks {
            rows.push_str(&format!(
                "    {{\"org\": \"{}\", \"seed_bytes_per_entry\": {:.2}, \
                 \"compact_bytes_per_entry\": {:.2}, \"shrink\": {:.2}}},\n",
                s.org, s.seed, s.compact, s.shrink
            ));
        }
        rows.pop();
        rows.pop(); // trailing ",\n"
        let mut snaps = String::new();
        for f in &footprints {
            snaps.push_str(&format!(
                "    {{\"page\": \"{}\", \"snapshot_pages\": {}, \"snapshot_bytes\": {}, \
                 \"private_after_run\": {}, \"private_after_reset\": {}}},\n",
                f.page,
                f.snapshot_pages,
                f.snapshot_bytes,
                f.private_after_run,
                f.private_after_reset
            ));
        }
        snaps.pop();
        snaps.pop();
        println!(
            "{{\n  \"slot_size\": {SLOT_SIZE},\n  \"seed_slot_size\": {SEED_SLOT},\n  \
             \"dense_entries\": {DENSE_ENTRIES},\n  \"orgs\": [\n{rows}\n  ],\n  \
             \"snapshot_footprint\": [\n{snaps}\n  ]\n}}"
        );
        return;
    }

    let scale: u64 = args.scale.unwrap_or(4);
    println!("§5.2 memory overhead — safe-region bytes vs baseline residency (scale {scale})\n");
    let mut table = Table::new(&["config", "store", "median mem overhead", "max"]);
    for config in [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi] {
        for store in [StoreKind::Hash, StoreKind::Array4K] {
            let mut overheads: Vec<f64> = Vec::new();
            for w in spec_suite() {
                let base = measure(&w, scale, BuildConfig::Vanilla, store)
                    .unwrap_or_else(|e| panic!("{e}"));
                let m = measure(&w, scale, config, store).unwrap_or_else(|e| panic!("{e}"));
                overheads.push(m.store_overhead_pct(&base));
            }
            // total_cmp: a NaN overhead (degenerate baseline) sorts
            // last and shows up as "n/a" instead of aborting the table.
            overheads.sort_by(|a, b| a.total_cmp(b));
            let median = overheads[overheads.len() / 2];
            let max = *overheads.last().expect("non-empty");
            table.row(vec![
                config.name().to_string(),
                store.name().to_string(),
                pct(median),
                pct(max),
            ]);
        }
    }
    table.print();
    println!("\nExpected shape: array ≫ hash; CPI ≫ CPS ≫ SafeStack ≈ 0.");

    println!(
        "\nbytes per live entry, dense population of {DENSE_ENTRIES} slots (seed vs compact):\n"
    );
    let mut t2 = Table::new(&["store", "seed B/entry", "compact B/entry", "shrink"]);
    for s in &shrinks {
        t2.row(vec![
            s.org.to_string(),
            format!("{:.1}", s.seed),
            format!("{:.1}", s.compact),
            format!("{:.2}x", s.shrink),
        ]);
    }
    t2.print();
    println!("\nEvery organization must shrink ≥1.8x (asserted above).");

    println!(
        "\ncopy-on-write snapshot footprint (CPI web stack): the post-load image is\n\
         Arc-shared with live memory, so its extra residency is only the pages a run\n\
         dirtied; reset re-shares them (asserted to return to 0):\n"
    );
    let mut t3 = Table::new(&[
        "page",
        "snapshot pages",
        "image bytes",
        "private after run",
        "after reset",
    ]);
    for f in &footprints {
        t3.row(vec![
            f.page.to_string(),
            f.snapshot_pages.to_string(),
            f.snapshot_bytes.to_string(),
            f.private_after_run.to_string(),
            f.private_after_reset.to_string(),
        ]);
    }
    t3.print();
    if args.profile {
        let w = &spec_suite()[0];
        profile_run(
            &format!(
                "memory_overhead: {}/CPI on hashtable (scale {scale})",
                w.name
            ),
            w.name,
            &w.source(scale),
            BuildConfig::Cpi,
            StoreKind::Hash,
        );
    }
}
