//! Experiment E13 — §4's "Future MPX-based implementation": what CPI
//! costs if bounds checks and metadata bookkeeping run in MPX-like
//! hardware (dedicated bounds registers + hardware two-level table).
//!
//! Usage: `cargo run -p levee-bench --bin mpx_ablation [-- scale]
//! [--json] [--profile]` (`--json` emits one `levee::RunReport` row per
//! run at a quick scale; `--profile` prints execution attribution for
//! perlbench under software CPI — the cost the MPX model ablates.)

use levee_bench::profile::profile_run;
use levee_bench::{pct, print_json_rows, BenchArgs, Table};
use levee_core::{BuildConfig, LeveeError, Session};
use levee_vm::{HardwareModel, StoreKind};
use levee_workloads::spec_suite;

fn main() -> Result<(), LeveeError> {
    let args = BenchArgs::parse();
    let scale = args.scale_or(4, 1);
    if !args.json {
        println!("§4 — software-only CPI vs MPX-assisted CPI (scale {scale})\n");
    }
    let mut table = Table::new(&["benchmark", "CPI (software)", "CPI (MPX model)"]);
    let mut json_rows = Vec::new();
    for w in spec_suite()
        .iter()
        .filter(|w| ["perlbench", "gcc", "dealII", "omnetpp", "xalancbmk", "lbm"].contains(&w.name))
    {
        let src = w.source(scale);
        let base_run = Session::builder()
            .source(&src)
            .name(w.name)
            .protection(BuildConfig::Vanilla)
            .build()?
            .run_ok(b"")?;

        let sw = Session::builder()
            .source(&src)
            .name(w.name)
            .protection(BuildConfig::Cpi)
            .store(StoreKind::ArraySuperpage)
            .configure(|cfg| cfg.hardware = HardwareModel::Software)
            .build()?
            .run_ok(b"")?;

        let hw = Session::builder()
            .source(&src)
            .name(w.name)
            .protection(BuildConfig::Cpi)
            .store(StoreKind::TwoLevel) // MPX's bounds tables
            .configure(|cfg| cfg.hardware = HardwareModel::Mpx)
            .build()?
            .run_ok(b"")?;

        table.row(vec![
            w.spec_id.to_string(),
            pct(sw.overhead_pct(&base_run)),
            pct(hw.overhead_pct(&base_run)),
        ]);
        json_rows.extend([base_run.to_json(), sw.to_json(), hw.to_json()]);
    }
    if args.json {
        print_json_rows("mpx_ablation", &json_rows);
    } else {
        table.print();
        println!("\nExpected: the MPX model reduces (but does not erase) CPI's overhead.");
        if args.profile {
            let suite = spec_suite();
            let w = suite
                .iter()
                .find(|w| w.name == "perlbench")
                .expect("suite has perlbench");
            profile_run(
                &format!("mpx_ablation: {}/CPI software (scale {scale})", w.name),
                w.name,
                &w.source(scale),
                BuildConfig::Cpi,
                StoreKind::ArraySuperpage,
            );
        }
    }
    Ok(())
}
