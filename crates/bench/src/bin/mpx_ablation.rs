//! Experiment E13 — §4's "Future MPX-based implementation": what CPI
//! costs if bounds checks and metadata bookkeeping run in MPX-like
//! hardware (dedicated bounds registers + hardware two-level table).
//!
//! Usage: `cargo run -p levee-bench --bin mpx_ablation [-- scale]`

use levee_bench::{pct, Table};
use levee_core::{build_source, BuildConfig};
use levee_vm::{HardwareModel, Machine, StoreKind, VmConfig};
use levee_workloads::spec_suite;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("§4 — software-only CPI vs MPX-assisted CPI (scale {scale})\n");
    let mut table = Table::new(&["benchmark", "CPI (software)", "CPI (MPX model)"]);
    for w in spec_suite()
        .iter()
        .filter(|w| ["perlbench", "gcc", "dealII", "omnetpp", "xalancbmk", "lbm"].contains(&w.name))
    {
        let src = w.source(scale);
        let base = build_source(&src, w.name, BuildConfig::Vanilla).expect("builds");
        let base_run = Machine::new(&base.module, base.vm_config(VmConfig::default())).run(b"");

        let built = build_source(&src, w.name, BuildConfig::Cpi).expect("builds");
        let mut sw_cfg = built.vm_config(VmConfig::default());
        sw_cfg.hardware = HardwareModel::Software;
        sw_cfg.store_kind = StoreKind::ArraySuperpage;
        let sw = Machine::new(&built.module, sw_cfg).run(b"");

        let mut hw_cfg = built.vm_config(VmConfig::default());
        hw_cfg.hardware = HardwareModel::Mpx;
        hw_cfg.store_kind = StoreKind::TwoLevel; // MPX's bounds tables
        let hw = Machine::new(&built.module, hw_cfg).run(b"");

        table.row(vec![
            w.spec_id.to_string(),
            pct(sw.stats.overhead_pct(&base_run.stats)),
            pct(hw.stats.overhead_pct(&base_run.stats)),
        ]);
    }
    table.print();
    println!("\nExpected: the MPX model reduces (but does not erase) CPI's overhead.");
}
