//! Experiment E7 — Figure 4: the Phoronix-like system suite under
//! SafeStack / CPS / CPI (the FreeBSD case study of §5.3).
//!
//! Expected shape: most overheads small; the interpreter-bound pybench
//! is the CPI outlier, exactly as in the paper's Fig. 4.
//!
//! Usage: `cargo run -p levee-bench --bin phoronix [-- scale] [--json]
//! [--profile]` (`--json` emits one `levee::RunReport` row per measured
//! run at a quick scale; `--profile` prints execution attribution for
//! pybench under CPI — the Fig. 4 outlier — showing where its
//! interpreter-dispatch cycles go.)

use levee_bench::profile::profile_run;
use levee_bench::{pct, print_json_rows, BenchArgs, Table};
use levee_core::{BuildConfig, LeveeError};
use levee_vm::StoreKind;
use levee_workloads::{overhead_row, phoronix_suite};

fn main() -> Result<(), LeveeError> {
    let args = BenchArgs::parse();
    let scale = args.scale_or(8, 1);
    let configs = [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi];
    if !args.json {
        println!("Figure 4 — Phoronix-like suite overheads (scale {scale})\n");
    }
    let mut table = Table::new(&["benchmark", "SafeStack", "CPS", "CPI"]);
    let mut json_rows = Vec::new();
    for w in phoronix_suite() {
        let row = overhead_row(&w, scale, &configs, StoreKind::ArraySuperpage)?;
        table.row(vec![
            w.name.to_string(),
            pct(row.overhead(BuildConfig::SafeStack).unwrap()),
            pct(row.overhead(BuildConfig::Cps).unwrap()),
            pct(row.overhead(BuildConfig::Cpi).unwrap()),
        ]);
        json_rows.extend(row.measurements.iter().map(|m| m.to_json()));
    }
    if args.json {
        print_json_rows("phoronix", &json_rows);
    } else {
        table.print();
        if args.profile {
            let suite = phoronix_suite();
            let w = suite
                .iter()
                .find(|w| w.name == "pybench")
                .expect("suite has pybench");
            profile_run(
                &format!("phoronix: {}/CPI (scale {scale})", w.name),
                w.name,
                &w.source(scale),
                BuildConfig::Cpi,
                StoreKind::ArraySuperpage,
            );
        }
    }
    Ok(())
}
