//! Experiment E7 — Figure 4: the Phoronix-like system suite under
//! SafeStack / CPS / CPI (the FreeBSD case study of §5.3).
//!
//! Expected shape: most overheads small; the interpreter-bound pybench
//! is the CPI outlier, exactly as in the paper's Fig. 4.
//!
//! Usage: `cargo run -p levee-bench --bin phoronix [-- scale]`

use levee_bench::{pct, Table};
use levee_core::BuildConfig;
use levee_vm::StoreKind;
use levee_workloads::{overhead_row, phoronix_suite};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let configs = [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi];
    println!("Figure 4 — Phoronix-like suite overheads (scale {scale})\n");
    let mut table = Table::new(&["benchmark", "SafeStack", "CPS", "CPI"]);
    for w in phoronix_suite() {
        let row = overhead_row(&w, scale, &configs, StoreKind::ArraySuperpage);
        table.row(vec![
            w.name.to_string(),
            pct(row.overhead(BuildConfig::SafeStack).unwrap()),
            pct(row.overhead(BuildConfig::Cps).unwrap()),
            pct(row.overhead(BuildConfig::Cpi).unwrap()),
        ]);
    }
    table.print();
}
