//! Profile-attribution recorder — per-opcode and top-function
//! attribution for every engine-comparison kernel, under the fused
//! bytecode tier with the execution profiler on.
//!
//! The deterministic attribution tables are the observability
//! counterpart of `engine_compare`'s counters: `--json` emits the
//! machine-readable report recorded as
//! `crates/bench/baselines/profile_attribution.json`; the default mode
//! prints the attribution tables. Either way the bin gates the
//! profiler's invariants on every kernel:
//!
//! * per-opcode cycle attribution sums *exactly* to the run's
//!   `ExecStats::cycles` (attribution is a partition, not a sample),
//! * the fused superinstructions that the fusion planner reports for
//!   the program (`FuseStats`) show up in the dispatch counts, and no
//!   superinstruction executes that the planner did not plan.
//!
//! Usage: `cargo run --release -p levee-bench --bin profile_attribution
//! [-- --json]`.

use levee_bench::kernels::KERNELS;
use levee_bench::profile::print_profile;
use levee_bench::BenchArgs;
use levee_core::session::json_str;
use levee_core::{BuildConfig, Session};
use levee_vm::{Engine, ProfileReport, VmConfig};

/// The six superinstruction patterns: (dispatch-count op name, the
/// planner counter).
fn fused_pairs(stats: &levee_vm::FuseStats) -> [(&'static str, u64); 6] {
    [
        ("CmpBr", stats.cmp_br),
        ("GepLoad", stats.gep_load),
        ("GepStore", stats.gep_store),
        ("CheckLoad", stats.check_load),
        ("CheckPtrLoad", stats.check_ptr_load),
        ("CheckedCall", stats.checked_call),
    ]
}

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    for config in [BuildConfig::Vanilla, BuildConfig::Cpi] {
        for spec in KERNELS {
            let mut session = Session::builder()
                .source(&spec.program())
                .name(spec.name)
                .protection(config)
                .vm_config(VmConfig::default())
                .engine(Engine::Bytecode)
                .fusion(true)
                .profile(true)
                .build()
                .unwrap_or_else(|e| panic!("{}: kernel builds: {e}", spec.name));
            session.precompile();
            let fuse = session.fuse_stats().expect("bytecode tier compiled");
            let run = session.run(b"");
            assert!(run.success(), "{}: kernel must exit cleanly", spec.name);
            let report = run.profile.as_ref().expect("profiler on");
            assert_eq!(
                report.op_cycle_total(),
                run.exec.cycles,
                "{}/{}: per-op cycles must partition the run",
                config.name(),
                spec.name
            );
            // Planner/runtime consistency: a superinstruction pattern
            // executes iff the planner fused it somewhere reachable —
            // on these kernels every fused pattern sits in the driver
            // loop, so planned implies executed, and an executed
            // superinstruction without a plan would mean the stream
            // was rewritten behind the planner's back.
            for (op, planned) in fused_pairs(&fuse) {
                let executed = report.op_count(op);
                assert_eq!(
                    planned > 0,
                    executed > 0,
                    "{}/{}: fusion planner reports {planned} {op} pairs but \
                     the profiler counted {executed} dispatches",
                    config.name(),
                    spec.name
                );
            }
            if args.json {
                rows.push(render_row(config, spec.name, &fuse, report));
            } else {
                print_profile(&format!("{}/{}", config.name(), spec.name), report);
            }
        }
    }
    if args.json {
        println!("{{\"profile_attribution\": [");
        println!("{}", rows.join(",\n"));
        println!("]}}");
    }
}

/// One baseline row: identity, totals, fused-pair counts, per-opcode
/// table and the top-5 functions by inclusive cycles.
fn render_row(
    config: BuildConfig,
    kernel: &str,
    fuse: &levee_vm::FuseStats,
    report: &ProfileReport,
) -> String {
    let ops: Vec<String> = report
        .ops
        .iter()
        .map(|o| {
            format!(
                "{{\"op\": {}, \"count\": {}, \"cycles\": {}}}",
                json_str(&o.name),
                o.count,
                o.cycles
            )
        })
        .collect();
    let funcs: Vec<String> = report
        .funcs
        .iter()
        .take(5)
        .map(|f| {
            format!(
                "{{\"func\": {}, \"calls\": {}, \"incl_cycles\": {}, \"excl_cycles\": {}}}",
                json_str(&f.name),
                f.calls,
                f.incl_cycles,
                f.excl_cycles
            )
        })
        .collect();
    let pairs: Vec<String> = fused_pairs(fuse)
        .iter()
        .map(|(op, planned)| {
            format!(
                "{{\"op\": {}, \"planned\": {planned}, \"dispatches\": {}}}",
                json_str(op),
                report.op_count(op)
            )
        })
        .collect();
    format!(
        "  {{\"build\": {}, \"kernel\": {}, \"cycles\": {}, \"insts\": {}, \
         \"fused\": [{}],\n   \"ops\": [{}],\n   \"top_funcs\": [{}]}}",
        json_str(config.name()),
        json_str(kernel),
        report.total_cycles,
        report.total_insts,
        pairs.join(", "),
        ops.join(", "),
        funcs.join(", ")
    )
}
