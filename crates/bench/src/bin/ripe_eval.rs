//! Experiment E1 — §5.1: the RIPE-like attack matrix against the
//! paper's five protection profiles.
//!
//! Paper numbers (850 attempts): vanilla Ubuntu 6.06 833–848 succeed;
//! DEP+ASLR+cookies 43–49; CPS/CPI 0; safe stack stops all stack-based
//! attacks.
//!
//! Usage: `cargo run -p levee-bench --bin ripe_eval [-- seed]`

use levee_bench::Table;
use levee_ripe::{all_attacks, evaluate, Profile, Target};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1CE);
    let attacks = all_attacks();
    println!(
        "§5.1 — RIPE-like evaluation: {} attack instances (location × target\n\
         × technique × abused function × payload), seed {seed}\n",
        attacks.len()
    );
    let mut table = Table::new(&[
        "profile",
        "hijacked",
        "detected",
        "crashed",
        "survived",
        "ret-addr hijacks",
    ]);
    for profile in Profile::paper_lineup() {
        let tally = evaluate(&attacks, &profile, seed);
        let ret_hijacks = tally
            .hijacked
            .iter()
            .filter(|a| a.target == Target::RetAddr)
            .count();
        table.row(vec![
            profile.name(),
            tally.successes().to_string(),
            tally.detected.to_string(),
            tally.crashed.to_string(),
            tally.survived.to_string(),
            ret_hijacks.to_string(),
        ]);
    }
    table.print();
    println!("\nExpected shape: legacy ≫ deployed > 0; safestack ret-addr = 0; CPS = CPI = 0.");
}
