//! Experiment E1 — §5.1: the RIPE-like attack matrix against the
//! paper's five protection profiles.
//!
//! Paper numbers (850 attempts): vanilla Ubuntu 6.06 833–848 succeed;
//! DEP+ASLR+cookies 43–49; CPS/CPI 0; safe stack stops all stack-based
//! attacks.
//!
//! Usage: `cargo run -p levee-bench --bin ripe_eval [-- seed] [--json]
//! [--profile]` (`--json` emits one verdict-tally row per profile;
//! `--profile` additionally prints execution attribution for a
//! representative victim program under CPI.)

use levee_bench::profile::profile_run;
use levee_bench::{print_json_rows, BenchArgs, Table};
use levee_core::BuildConfig;
use levee_ripe::{all_attacks, evaluate, Profile, Target};
use levee_vm::StoreKind;

fn main() {
    let args = BenchArgs::parse();
    let seed = args.scale.unwrap_or(0xD1CE);
    let attacks = all_attacks();
    if !args.json {
        println!(
            "§5.1 — RIPE-like evaluation: {} attack instances (location × target\n\
             × technique × abused function × payload), seed {seed}\n",
            attacks.len()
        );
    }
    let mut table = Table::new(&[
        "profile",
        "hijacked",
        "detected",
        "crashed",
        "survived",
        "ret-addr hijacks",
    ]);
    let mut json_rows = Vec::new();
    for profile in Profile::paper_lineup() {
        let tally = evaluate(&attacks, &profile, seed);
        let ret_hijacks = tally
            .hijacked
            .iter()
            .filter(|a| a.target == Target::RetAddr)
            .count();
        json_rows.push(format!(
            "{{\"profile\": \"{}\", \"attacks\": {}, \"hijacked\": {}, \"detected\": {}, \
             \"crashed\": {}, \"survived\": {}, \"ret_addr_hijacks\": {}}}",
            profile.name(),
            tally.total(),
            tally.successes(),
            tally.detected,
            tally.crashed,
            tally.survived,
            ret_hijacks
        ));
        table.row(vec![
            profile.name(),
            tally.successes().to_string(),
            tally.detected.to_string(),
            tally.crashed.to_string(),
            tally.survived.to_string(),
            ret_hijacks.to_string(),
        ]);
    }
    if args.json {
        print_json_rows("ripe_eval", &json_rows);
    } else {
        table.print();
        println!("\nExpected shape: legacy ≫ deployed > 0; safestack ret-addr = 0; CPS = CPI = 0.");
        if args.profile {
            // A representative victim build: the first attack's template
            // under CPI, on benign input — the check-site table shows
            // which sites guard its indirect control flow.
            let attack = &attacks[0];
            profile_run(
                &format!("ripe_eval: victim {} under CPI", attack.id()),
                "ripe-victim",
                &levee_ripe::generate(attack),
                BuildConfig::Cpi,
                StoreKind::ArraySuperpage,
            );
        }
    }
}
