//! Experiment E4 — Table 3: CPI vs full memory safety (SoftBound mode)
//! on the four benchmarks the paper could run under SoftBound.
//!
//! Paper: bzip2 2.8% vs 90.2%; dealII 3.7% vs 60.2%; sjeng 2.6% vs
//! 79.0%; h264ref 5.8% vs 249.4%.
//!
//! Usage: `cargo run -p levee-bench --bin softbound_compare [-- scale]`

use levee_bench::{pct, Table};
use levee_core::BuildConfig;
use levee_vm::StoreKind;
use levee_workloads::{overhead_row, spec_suite};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let names = ["bzip2", "dealII", "sjeng", "h264ref"];
    println!("Table 3 — Levee vs SoftBound-style full memory safety (scale {scale})\n");
    let mut table = Table::new(&["benchmark", "SafeStack", "CPS", "CPI", "SoftBound"]);
    for w in spec_suite().iter().filter(|w| names.contains(&w.name)) {
        let row = overhead_row(
            w,
            scale,
            &[
                BuildConfig::SafeStack,
                BuildConfig::Cps,
                BuildConfig::Cpi,
                BuildConfig::SoftBound,
            ],
            StoreKind::ArraySuperpage,
        );
        table.row(vec![
            w.spec_id.to_string(),
            pct(row.overhead(BuildConfig::SafeStack).unwrap()),
            pct(row.overhead(BuildConfig::Cps).unwrap()),
            pct(row.overhead(BuildConfig::Cpi).unwrap()),
            pct(row.overhead(BuildConfig::SoftBound).unwrap()),
        ]);
    }
    table.print();
    println!("\nExpected shape: SoftBound ≫ CPI (the paper's 16–44× selectivity win).");
}
