//! Experiment E4 — Table 3: CPI vs full memory safety (SoftBound mode)
//! on the four benchmarks the paper could run under SoftBound.
//!
//! Paper: bzip2 2.8% vs 90.2%; dealII 3.7% vs 60.2%; sjeng 2.6% vs
//! 79.0%; h264ref 5.8% vs 249.4%.
//!
//! Usage: `cargo run -p levee-bench --bin softbound_compare [-- scale]
//! [--json] [--profile]` (`--json` emits one `levee::RunReport` row per
//! measured run at a quick scale; `--profile` prints execution
//! attribution for bzip2 under full memory safety — where the 16–44×
//! selectivity win comes from is visible in the check-site table.)

use levee_bench::profile::profile_run;
use levee_bench::{pct, print_json_rows, BenchArgs, Table};
use levee_core::{BuildConfig, LeveeError};
use levee_vm::StoreKind;
use levee_workloads::{overhead_row, spec_suite};

fn main() -> Result<(), LeveeError> {
    let args = BenchArgs::parse();
    let scale = args.scale_or(8, 1);
    let names = ["bzip2", "dealII", "sjeng", "h264ref"];
    if !args.json {
        println!("Table 3 — Levee vs SoftBound-style full memory safety (scale {scale})\n");
    }
    let mut table = Table::new(&["benchmark", "SafeStack", "CPS", "CPI", "SoftBound"]);
    let mut json_rows = Vec::new();
    for w in spec_suite().iter().filter(|w| names.contains(&w.name)) {
        let row = overhead_row(
            w,
            scale,
            &[
                BuildConfig::SafeStack,
                BuildConfig::Cps,
                BuildConfig::Cpi,
                BuildConfig::SoftBound,
            ],
            StoreKind::ArraySuperpage,
        )?;
        table.row(vec![
            w.spec_id.to_string(),
            pct(row.overhead(BuildConfig::SafeStack).unwrap()),
            pct(row.overhead(BuildConfig::Cps).unwrap()),
            pct(row.overhead(BuildConfig::Cpi).unwrap()),
            pct(row.overhead(BuildConfig::SoftBound).unwrap()),
        ]);
        json_rows.extend(row.measurements.iter().map(|m| m.to_json()));
    }
    if args.json {
        print_json_rows("softbound_compare", &json_rows);
    } else {
        table.print();
        println!("\nExpected shape: SoftBound ≫ CPI (the paper's 16–44× selectivity win).");
        if args.profile {
            let w = spec_suite();
            let w = w
                .iter()
                .find(|w| w.name == "bzip2")
                .expect("suite has bzip2");
            for config in [BuildConfig::Cpi, BuildConfig::SoftBound] {
                profile_run(
                    &format!(
                        "softbound_compare: {}/{} (scale {scale})",
                        w.name,
                        config.name()
                    ),
                    w.name,
                    &w.source(scale),
                    config,
                    StoreKind::ArraySuperpage,
                );
            }
        }
    }
    Ok(())
}
