//! Experiment E2 — Table 1 + Figure 3: SPEC-CPU2006-like overheads of
//! SafeStack / CPS / CPI per benchmark, with C-only and C/C++ summary
//! rows.
//!
//! Usage: `cargo run -p levee-bench --bin spec_overhead [-- scale]`

use levee_bench::{pct, Table};
use levee_core::BuildConfig;
use levee_vm::StoreKind;
use levee_workloads::{overhead_row, spec_suite, summarize};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let configs = [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi];
    println!("Figure 3 / Table 1 — SPEC CPU2006-like overheads (scale {scale})\n");

    let mut table = Table::new(&["benchmark", "lang", "SafeStack", "CPS", "CPI"]);
    let mut rows = Vec::new();
    for w in spec_suite() {
        let row = overhead_row(&w, scale, &configs, StoreKind::ArraySuperpage);
        table.row(vec![
            w.spec_id.to_string(),
            if w.cpp { "C++" } else { "C" }.to_string(),
            pct(row.overhead(BuildConfig::SafeStack).unwrap()),
            pct(row.overhead(BuildConfig::Cps).unwrap()),
            pct(row.overhead(BuildConfig::Cpi).unwrap()),
        ]);
        rows.push(row);
    }
    table.print();

    println!("\nTable 1 — summary (paper: SafeStack 0.0%/1.9%/8.4% avg rows)\n");
    let mut summary = Table::new(&["statistic", "SafeStack", "CPS", "CPI"]);
    for (label, filter) in [
        ("Average (C/C++)", None),
        ("Median (C/C++)", None),
        ("Maximum (C/C++)", None),
        ("Average (C only)", Some(false)),
        ("Median (C only)", Some(false)),
        ("Maximum (C only)", Some(false)),
    ] {
        let stat = |config| {
            let (avg, med, max) = summarize(&rows, config, filter);
            match label.split(' ').next().unwrap() {
                "Average" => avg,
                "Median" => med,
                _ => max,
            }
        };
        summary.row(vec![
            label.to_string(),
            pct(stat(BuildConfig::SafeStack)),
            pct(stat(BuildConfig::Cps)),
            pct(stat(BuildConfig::Cpi)),
        ]);
    }
    summary.print();
}
