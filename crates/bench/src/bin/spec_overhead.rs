//! Experiment E2 — Table 1 + Figure 3: SPEC-CPU2006-like overheads of
//! SafeStack / CPS / CPI per benchmark, with C-only and C/C++ summary
//! rows — extended with the PAC defense family (`-fpac`,
//! `-fpac-tight`) for the CPI-vs-PAC comparison.
//!
//! PACTight re-binds every seal to its slot address, so workloads
//! whose profile memcpys callback-carrying records (perlbench, gcc,
//! h264ref — the cbstruct kernel) trap authenticating the moved seal.
//! That is the faithful PACTight compatibility cost, not a bug: those
//! cells report `n/a (traps)` and are excluded from the PACTight
//! summary statistics.
//!
//! Usage: `cargo run -p levee-bench --bin spec_overhead [-- scale]
//! [--json] [--profile]` (`--json` emits one `levee::RunReport` row per
//! measured run at a quick scale — the CI `bench-smoke` shape;
//! `--profile` additionally prints execution attribution for the
//! representative CPI run.)

use levee_bench::profile::profile_run;
use levee_bench::{pct, print_json_rows, BenchArgs, Table};
use levee_core::{BuildConfig, LeveeError};
use levee_vm::StoreKind;
use levee_workloads::{overhead_row, spec_suite, summarize};

fn main() -> Result<(), LeveeError> {
    let args = BenchArgs::parse();
    let scale = args.scale_or(8, 1);
    let configs = [
        BuildConfig::SafeStack,
        BuildConfig::Cps,
        BuildConfig::Cpi,
        BuildConfig::Pac,
    ];
    if !args.json {
        println!("Figure 3 / Table 1 — SPEC CPU2006-like overheads (scale {scale})\n");
    }

    let mut table = Table::new(&[
        "benchmark",
        "lang",
        "SafeStack",
        "CPS",
        "CPI",
        "PAC",
        "PACTight",
    ]);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for w in spec_suite() {
        let mut row = overhead_row(&w, scale, &configs, StoreKind::ArraySuperpage)?;
        // PACTight is measured separately and fallibly: an
        // incompatible workload surfaces as a PAC trap from the run,
        // not as a number.
        let tight = match overhead_row(
            &w,
            scale,
            &[BuildConfig::PacTight],
            StoreKind::ArraySuperpage,
        ) {
            Ok(t) => {
                let o = t.overhead(BuildConfig::PacTight).expect("measured");
                row.overheads.push((BuildConfig::PacTight, o));
                // Skip the duplicate vanilla baseline measurement.
                row.measurements.extend(t.measurements.into_iter().skip(1));
                pct(o)
            }
            Err(_) => "n/a (traps)".to_string(),
        };
        table.row(vec![
            w.spec_id.to_string(),
            if w.cpp { "C++" } else { "C" }.to_string(),
            pct(row.overhead(BuildConfig::SafeStack).unwrap()),
            pct(row.overhead(BuildConfig::Cps).unwrap()),
            pct(row.overhead(BuildConfig::Cpi).unwrap()),
            pct(row.overhead(BuildConfig::Pac).unwrap()),
            tight,
        ]);
        json_rows.extend(row.measurements.iter().map(|m| m.to_json()));
        rows.push(row);
    }
    if args.json {
        print_json_rows("spec_overhead", &json_rows);
        return Ok(());
    }
    table.print();

    println!(
        "\nTable 1 — summary (paper: SafeStack 0.0%/1.9%/8.4% avg rows;\n\
         PACTight over compatible workloads only)\n"
    );
    let mut summary = Table::new(&["statistic", "SafeStack", "CPS", "CPI", "PAC", "PACTight"]);
    for (label, filter) in [
        ("Average (C/C++)", None),
        ("Median (C/C++)", None),
        ("Maximum (C/C++)", None),
        ("Average (C only)", Some(false)),
        ("Median (C only)", Some(false)),
        ("Maximum (C only)", Some(false)),
    ] {
        let stat = |config| {
            let (avg, med, max) = summarize(&rows, config, filter);
            match label.split(' ').next().unwrap() {
                "Average" => avg,
                "Median" => med,
                _ => max,
            }
        };
        summary.row(vec![
            label.to_string(),
            pct(stat(BuildConfig::SafeStack)),
            pct(stat(BuildConfig::Cps)),
            pct(stat(BuildConfig::Cpi)),
            pct(stat(BuildConfig::Pac)),
            pct(stat(BuildConfig::PacTight)),
        ]);
    }
    summary.print();
    if args.profile {
        let w = &spec_suite()[0];
        profile_run(
            &format!("spec_overhead: {}/CPI (scale {scale})", w.name),
            w.name,
            &w.source(scale),
            BuildConfig::Cpi,
            StoreKind::ArraySuperpage,
        );
    }
    Ok(())
}
