//! Value-traffic micro-bench: bytes moved per register/frame copy,
//! before vs. after the `V` shrink.
//!
//! The seed VM carried a 48-byte runtime value (raw word + inline
//! `Option<Entry>`) through every register file, argument list and
//! frame copy — the interpreter's hottest memory traffic. The compact
//! representation (raw word + interned 4-byte `MetaId`) is 16 bytes.
//! This bench makes the difference concrete: it replays the frame
//! traffic of a call-heavy run (fill a register file, copy arguments,
//! push/pop) under both layouts and reports bytes moved per frame and
//! effective copy throughput.
//!
//! Run with: `cargo run --release -p levee-bench --bin value_traffic`
//! (`--json` emits a machine-readable report; the checked-in baseline
//! lives in `crates/bench/baselines/value_traffic.json`; `--profile`
//! prints execution attribution for the call-heaviest kernel — the
//! workload whose frame traffic this bench isolates).

use std::hint::black_box;
use std::time::Instant;

use levee_bench::profile::profile_run;
use levee_bench::{BenchArgs, Table};
use levee_rt::{Entry, MetaId};
use levee_vm::V;

/// The seed's value layout, reproduced for comparison: a raw word plus
/// inline based-on metadata. The fields are never read — only their
/// size and copy cost matter here.
#[derive(Clone, Copy)]
#[allow(dead_code)]
struct SeedV {
    raw: u64,
    meta: Option<Entry>,
}

/// Frame sizes exercised: a tiny leaf, a typical function, a register
///-heavy one (matching the kernel suite's range of `locals` counts).
const FRAME_SIZES: &[usize] = &[8, 32, 128];

/// Frame copies per measurement (enough to dominate timer noise).
const COPIES: usize = 200_000;

/// Repetitions; the minimum wall-clock is reported.
const REPS: usize = 5;

struct Measurement {
    frame_regs: usize,
    bytes_per_frame: usize,
    ns_per_frame: f64,
    gib_per_s: f64,
}

/// Replays `COPIES` frame pushes of `n`-register frames for one value
/// layout: fill the argument prefix from a "caller", zero the rest,
/// then copy the whole file once more (the pop/return path).
fn measure<T: Copy>(n: usize, zero: T, arg: T) -> Measurement {
    let caller: Vec<T> = vec![arg; n];
    let mut callee: Vec<T> = vec![zero; n];
    let nargs = (n / 4).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..COPIES {
            callee[..nargs].copy_from_slice(&caller[..nargs]);
            for slot in callee[nargs..].iter_mut() {
                *slot = zero;
            }
            black_box(&mut callee);
            callee.copy_from_slice(black_box(&caller));
            black_box(&mut callee);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    // Two full-file traversals per iteration (push + pop).
    let bytes_per_frame = 2 * n * std::mem::size_of::<T>();
    let total = (bytes_per_frame * COPIES) as f64;
    Measurement {
        frame_regs: n,
        bytes_per_frame,
        ns_per_frame: best * 1e9 / COPIES as f64,
        gib_per_s: total / best / (1u64 << 30) as f64,
    }
}

fn run() -> (Vec<Measurement>, Vec<Measurement>) {
    let seed_zero = SeedV { raw: 0, meta: None };
    let seed_arg = SeedV {
        raw: 0x1000,
        meta: Some(Entry::data(0x1000, 0x1000, 0x1040, 7)),
    };
    let compact_zero = V::int(0);
    // Copy traffic depends only on the value's size, not on whether the
    // 4-byte handle is live, so `NONE` stands in for a provenance
    // handle here.
    let compact_arg = V {
        raw: 0x1000,
        meta: MetaId::NONE,
    };
    let seed: Vec<Measurement> = FRAME_SIZES
        .iter()
        .map(|n| measure(*n, seed_zero, seed_arg))
        .collect();
    let compact: Vec<Measurement> = FRAME_SIZES
        .iter()
        .map(|n| measure(*n, compact_zero, compact_arg))
        .collect();
    (seed, compact)
}

fn main() {
    let args = BenchArgs::parse();
    let json = args.json;
    let seed_bytes = std::mem::size_of::<SeedV>();
    let compact_bytes = std::mem::size_of::<V>();
    assert!(
        compact_bytes <= 16,
        "compact V regressed past 16 bytes: {compact_bytes}"
    );
    let (seed, compact) = run();

    if json {
        let mut rows = String::new();
        for (s, c) in seed.iter().zip(&compact) {
            rows.push_str(&format!(
                "    {{\"frame_regs\": {}, \"seed_bytes_per_frame\": {}, \
                 \"compact_bytes_per_frame\": {}, \"seed_ns_per_frame\": {:.1}, \
                 \"compact_ns_per_frame\": {:.1}, \"seed_gib_per_s\": {:.2}, \
                 \"compact_gib_per_s\": {:.2}}},\n",
                s.frame_regs,
                s.bytes_per_frame,
                c.bytes_per_frame,
                s.ns_per_frame,
                c.ns_per_frame,
                s.gib_per_s,
                c.gib_per_s
            ));
        }
        rows.pop();
        rows.pop(); // trailing ",\n"
        println!(
            "{{\n  \"seed_value_bytes\": {seed_bytes},\n  \"compact_value_bytes\": {compact_bytes},\n  \"frames\": [\n{rows}\n  ]\n}}"
        );
        return;
    }

    println!("value size: seed {seed_bytes} B, compact {compact_bytes} B");
    let mut table = Table::new(&[
        "frame regs",
        "seed B/frame",
        "compact B/frame",
        "shrink",
        "seed ns/frame",
        "compact ns/frame",
        "speedup",
    ]);
    for (s, c) in seed.iter().zip(&compact) {
        table.row(vec![
            s.frame_regs.to_string(),
            s.bytes_per_frame.to_string(),
            c.bytes_per_frame.to_string(),
            format!(
                "{:.1}x",
                s.bytes_per_frame as f64 / c.bytes_per_frame as f64
            ),
            format!("{:.1}", s.ns_per_frame),
            format!("{:.1}", c.ns_per_frame),
            format!("{:.2}x", s.ns_per_frame / c.ns_per_frame),
        ]);
    }
    table.print();
    if args.profile {
        // The value-copy traffic this bench isolates is driven by call
        // frames — profile the call-heaviest kernel so the function
        // table shows the frames behind it.
        let spec = levee_bench::kernels::kernel("calltree").expect("kernel exists");
        profile_run(
            "value_traffic: calltree kernel (vanilla)",
            spec.name,
            &spec.program(),
            levee_core::BuildConfig::Vanilla,
            levee_vm::StoreKind::ArraySuperpage,
        );
    }
}
