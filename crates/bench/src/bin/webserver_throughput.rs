//! Experiment E8 — Table 4: web-server stack throughput under
//! SafeStack / CPS / CPI (the Apache + mod_wsgi + Django model).
//!
//! Paper: static 1.7/8.9/16.9%; wsgi 1.0/4.0/15.3%; dynamic
//! 1.4/15.9/138.8% — the dynamic (interpreter) path is where CPI
//! explodes.
//!
//! Usage: `cargo run -p levee-bench --bin webserver_throughput [-- requests]`

use levee_bench::{pct, Table};
use levee_core::BuildConfig;
use levee_vm::StoreKind;
use levee_workloads::{measure, web_stack};

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    println!("Table 4 — web stack throughput ({requests} requests per run)\n");
    let mut table = Table::new(&["page", "SafeStack", "CPS", "CPI", "baseline req/Mcycle"]);
    for w in web_stack() {
        let base = measure(
            &w,
            requests,
            BuildConfig::Vanilla,
            StoreKind::ArraySuperpage,
        );
        let cells: Vec<String> = [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi]
            .iter()
            .map(|c| {
                let m = measure(&w, requests, *c, StoreKind::ArraySuperpage);
                pct(m.overhead_pct(&base))
            })
            .collect();
        let throughput = requests as f64 / (base.exec.cycles as f64 / 1.0e6);
        table.row(vec![
            w.name.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            format!("{throughput:.1}"),
        ]);
    }
    table.print();
    println!("\nExpected shape: dynamic-page CPI ≫ wsgi ≫ static (interpreter dispatch cost).");
}
