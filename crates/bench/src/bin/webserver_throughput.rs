//! Experiment E8 — Table 4: web-server stack throughput under
//! SafeStack / CPS / CPI (the Apache + mod_wsgi + Django model).
//!
//! Paper: static 1.7/8.9/16.9%; wsgi 1.0/4.0/15.3%; dynamic
//! 1.4/15.9/138.8% — the dynamic (interpreter) path is where CPI
//! explodes.
//!
//! The second section is the embedding-API scale win: a server does
//! not rebuild its program per request. One resident `levee::Session`
//! serves every request via `Session::run_batch` — one compile, one
//! module load, then `Machine::reset` per request (bit-identical to a
//! fresh build, proven by the session proptest suite) — and is
//! compared against the old one-session-per-request wiring, in both
//! reset modes: the PR 5 loader reset (full re-load per request) and
//! the copy-on-write snapshot reset (restore only what the request
//! dirtied — the fork-per-request model). The measured requests/sec
//! improvements are asserted and recorded in
//! `crates/bench/baselines/webserver_throughput.json`, along with the
//! deterministic per-request reset cost (pages dirtied, bytes
//! restored) the `bench_drift` gate tracks.
//!
//! The third section is the multi-worker scale-out: a `SessionPool`
//! compiles the page once, forks N resident machines from the shared
//! copy-on-write boot snapshot, and shards the request batch across
//! them. Every pooled request is asserted bit-identical to serial
//! snapshot-reset serving, and on a ≥4-core host the 4-worker
//! aggregate req/s is gated ≥2.5× the 1-worker rate. The deterministic
//! per-page counters land in the baseline as `pool_pages`.
//!
//! Usage: `cargo run --release -p levee-bench --bin webserver_throughput
//! [-- requests] [--json] [--profile]` (`--profile` prints execution
//! attribution for the dynamic page under CPI — the Table 4 blow-up
//! row).

use std::time::Instant;

use levee_bench::profile::profile_run;
use levee_bench::{pct, print_json_rows, BenchArgs, Table};
use levee_core::{json_f64, json_str, BuildConfig, LeveeError, RunReport, Session, SessionPool};
use levee_vm::{ResetMode, StoreKind};
use levee_workloads::{measure, web_stack, Workload};

/// Requests served per throughput measurement (wall-clock section).
const SERVED_REQUESTS: usize = 64;

/// Aggregated over the three page types, the loader-reset resident
/// session must serve requests at least this much faster than
/// fresh-session-per-request. What reuse saves is the fixed
/// per-request setup — source build, instrumentation, bytecode
/// compile+fuse — measured ≈1.1–1.3× per page in release (see
/// `baselines/webserver_throughput.json`). Per-page wall-clock is
/// scheduler-noisy, so the gate is on the aggregate, which is stable;
/// a real reuse regression (resident no faster than rebuild) still
/// fails it.
const MIN_REUSE_SPEEDUP: f64 = 1.08;

/// The gate used in `--json` (CI `bench-smoke`) mode: shared runners
/// are far noisier than a quiet box, so CI only fails when reuse shows
/// *no* win at all — an actual regression — while the interactive gate
/// keeps the measured margin.
const MIN_REUSE_SPEEDUP_CI: f64 = 1.0;

/// The ISSUE-7 gate: with copy-on-write snapshot resets (restore only
/// the pages/store slots/heap state the request dirtied instead of
/// re-running the loader), the resident session must serve the
/// aggregate web stack ≥2× faster than rebuild-per-request — better
/// than double PR 5's ≈1.27× loader-reset aggregate.
const MIN_SNAPSHOT_SPEEDUP: f64 = 2.0;

/// CI twin of the snapshot gate (noisy shared runners): the snapshot
/// path must still clearly beat the loader-reset resident path, not
/// merely match rebuild-per-request.
const MIN_SNAPSHOT_SPEEDUP_CI: f64 = 1.3;

/// The ISSUE-8 multi-worker gate: on a host with ≥4 cores, the
/// 4-worker `SessionPool` must serve the aggregate web stack at ≥2.5×
/// the 1-worker snapshot-reset request rate (near-linear scaling over
/// shared copy-on-write snapshots; the gap to 4.0× absorbs
/// cross-worker memory-bandwidth contention and sharding overhead).
const MIN_POOL_SCALING_4W: f64 = 2.5;

/// Fallback scaling gate for hosts without 4 real cores (CI shared
/// runners, small containers): wall-clock scaling is physically
/// impossible without cores, but sharding must never *collapse* —
/// N workers over one shared snapshot must stay within a small factor
/// of the 1-worker rate even when time-sliced onto one core.
const MIN_POOL_SCALING_FLOOR: f64 = 0.5;

struct Throughput {
    page: &'static str,
    fresh_rps: f64,
    resident_rps: f64,
    snapshot_rps: f64,
    speedup: f64,
    snapshot_speedup: f64,
    /// Deterministic per-request reset cost under snapshot resets:
    /// pages the request dirtied and bytes the restore copied back
    /// (identical for every recycled request of a page — asserted).
    pages_dirtied: u64,
    bytes_restored: u64,
}

/// Serves `n` requests by building a fresh session per request — the
/// pre-`Session` wiring every consumer hand-rolled.
fn serve_fresh(w: &Workload, n: usize) -> Result<(f64, Vec<RunReport>), LeveeError> {
    let src = w.source(1);
    let t0 = Instant::now();
    let mut reports = Vec::with_capacity(n);
    for _ in 0..n {
        let mut session = Session::builder()
            .source(&src)
            .name(w.name)
            .protection(BuildConfig::Cpi)
            .store(StoreKind::ArraySuperpage)
            .build()?;
        reports.push(session.run_ok(b"")?);
    }
    Ok((t0.elapsed().as_secs_f64(), reports))
}

/// Serves `n` requests from one resident session (`run_batch` resets
/// the machine between requests; the module compiles and loads once).
/// `mode` picks the recycling path: `ResetMode::Loader` re-runs the
/// full loader per request (the PR 5 wiring); `ResetMode::Snapshot`
/// restores the post-load copy-on-write memory image, copying back
/// only what the request dirtied.
fn serve_resident(
    w: &Workload,
    n: usize,
    mode: ResetMode,
) -> Result<(f64, Vec<RunReport>), LeveeError> {
    let src = w.source(1);
    let t0 = Instant::now();
    let mut session = Session::builder()
        .source(&src)
        .name(w.name)
        .protection(BuildConfig::Cpi)
        .store(StoreKind::ArraySuperpage)
        .build()?;
    session.reconfigure(|c| c.reset_mode = mode);
    let reports = session.run_batch(std::iter::repeat_n(b"", n));
    Ok((t0.elapsed().as_secs_f64(), reports))
}

/// Repetitions per (page, serving mode); the minimum wall-clock is
/// used, which rejects scheduler noise (same policy as
/// `engine_compare`).
const REPS: usize = 3;

fn measure_reuse(
    n: usize,
    min_speedup: f64,
    min_snapshot_speedup: f64,
) -> Result<(Vec<Throughput>, f64, f64), LeveeError> {
    let mut rows = Vec::new();
    let mut total_fresh_s = 0.0;
    let mut total_resident_s = 0.0;
    let mut total_snapshot_s = 0.0;
    for w in web_stack() {
        let mut fresh_s = f64::INFINITY;
        let mut resident_s = f64::INFINITY;
        let mut snapshot_s = f64::INFINITY;
        let mut fresh_reports = Vec::new();
        let mut resident_reports = Vec::new();
        let mut snapshot_reports = Vec::new();
        for _ in 0..REPS {
            let (s, reports) = serve_fresh(&w, n)?;
            if s < fresh_s {
                fresh_s = s;
                fresh_reports = reports;
            }
            let (s, reports) = serve_resident(&w, n, ResetMode::Loader)?;
            if s < resident_s {
                resident_s = s;
                resident_reports = reports;
            }
            let (s, reports) = serve_resident(&w, n, ResetMode::Snapshot)?;
            if s < snapshot_s {
                snapshot_s = s;
                snapshot_reports = reports;
            }
        }
        // Reuse must be invisible to the served results: every resident
        // request — loader- or snapshot-recycled — is bit-identical to
        // a freshly built session's run in output and every simulated
        // counter.
        for (f, (r, s)) in fresh_reports
            .iter()
            .zip(resident_reports.iter().zip(&snapshot_reports))
        {
            for (twin, mode) in [(r, "loader reset"), (s, "snapshot reset")] {
                assert_eq!(
                    f.output, twin.output,
                    "{}: output diverged under reuse ({mode})",
                    w.name
                );
                assert_eq!(
                    f.exec, twin.exec,
                    "{}: simulated counters diverged under reuse ({mode})",
                    w.name
                );
            }
        }
        // The per-request reset cost is deterministic: every recycled
        // request of a page dirties the same pages.
        let reset = snapshot_reports.last().map(|r| r.reset).unwrap_or_default();
        for r in snapshot_reports.iter().skip(1) {
            assert!(
                r.reset.used_snapshot,
                "{}: recycled request must use the snapshot reset",
                w.name
            );
            assert_eq!(
                (r.reset.pages_dirtied, r.reset.bytes_restored),
                (reset.pages_dirtied, reset.bytes_restored),
                "{}: per-request reset cost must be deterministic",
                w.name
            );
        }
        let fresh_rps = n as f64 / fresh_s;
        let resident_rps = n as f64 / resident_s;
        let snapshot_rps = n as f64 / snapshot_s;
        rows.push(Throughput {
            page: w.name,
            fresh_rps,
            resident_rps,
            snapshot_rps,
            speedup: resident_rps / fresh_rps,
            snapshot_speedup: snapshot_rps / fresh_rps,
            pages_dirtied: reset.pages_dirtied,
            bytes_restored: reset.bytes_restored,
        });
        total_fresh_s += fresh_s;
        total_resident_s += resident_s;
        total_snapshot_s += snapshot_s;
    }
    let aggregate = total_fresh_s / total_resident_s;
    assert!(
        aggregate >= min_speedup,
        "resident sessions must serve the web stack ≥{min_speedup}x faster than \
         rebuild-per-request in aggregate, got {aggregate:.2}x \
         ({total_fresh_s:.3}s vs {total_resident_s:.3}s for {} pages × {n} requests)",
        rows.len()
    );
    let snapshot_aggregate = total_fresh_s / total_snapshot_s;
    assert!(
        snapshot_aggregate >= min_snapshot_speedup,
        "snapshot-reset sessions must serve the web stack ≥{min_snapshot_speedup}x faster \
         than rebuild-per-request in aggregate, got {snapshot_aggregate:.2}x \
         ({total_fresh_s:.3}s vs {total_snapshot_s:.3}s for {} pages × {n} requests)",
        rows.len()
    );
    Ok((rows, aggregate, snapshot_aggregate))
}

struct PoolThroughput {
    workers: usize,
    aggregate_rps: f64,
    /// Aggregate req/s relative to this run's 1-worker pool row (the
    /// 1-worker snapshot-reset number the ISSUE-8 gate is phrased
    /// against).
    scaling: f64,
}

/// Serves `n` requests of one page through an N-worker `SessionPool`.
/// Pool construction (one compile, one boot snapshot, N−1 forks) sits
/// outside the timed window — a server pays it once at startup, and
/// keeping it out of every row makes the scaling ratio a pure measure
/// of sharded serving.
fn serve_pool(w: &Workload, n: usize, workers: usize) -> Result<(f64, Vec<RunReport>), LeveeError> {
    let src = w.source(1);
    let mut pool = SessionPool::builder()
        .source(&src)
        .name(w.name)
        .protection(BuildConfig::Cpi)
        .store(StoreKind::ArraySuperpage)
        .workers(workers)
        .build()?;
    let t0 = Instant::now();
    let reports = pool.run_batch(std::iter::repeat_n(b"", n));
    Ok((t0.elapsed().as_secs_f64(), reports))
}

/// The multi-worker section: serves the web stack through a
/// `SessionPool` at each worker count in `worker_counts` (which must
/// start at 1 — the scaling base) and asserts every per-request report
/// — output, every simulated counter, and the per-request reset cost —
/// bit-identical to serial snapshot-reset `run_batch` serving,
/// regardless of how requests interleave across workers.
///
/// The deterministic `(page, insts, cycles)` counters of a pooled
/// request, recorded in the baseline as `pool_pages` and gated
/// two-sided by `bench_drift`.
type PoolPageCounters = Vec<(String, u64, u64)>;

/// Returns the wall-clock rows plus the deterministic per-page
/// (insts, cycles) counters of a pooled request, which the baseline
/// records as `pool_pages` and `bench_drift` gates two-sided.
fn measure_pool(
    n: usize,
    worker_counts: &[usize],
) -> Result<(Vec<PoolThroughput>, PoolPageCounters), LeveeError> {
    assert_eq!(worker_counts.first(), Some(&1), "scaling base is 1 worker");
    // Serial snapshot-reset reference: the bit-identity target.
    let mut serial: Vec<(&'static str, Vec<RunReport>)> = Vec::new();
    for w in web_stack() {
        let (_, reports) = serve_resident(&w, n, ResetMode::Snapshot)?;
        serial.push((w.name, reports));
    }
    let mut rows = Vec::new();
    for &workers in worker_counts {
        let mut total_s = 0.0;
        for (w, (page, serial_reports)) in web_stack().iter().zip(&serial) {
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let (s, reports) = serve_pool(w, n, workers)?;
                assert_eq!(reports.len(), serial_reports.len());
                for (p, twin) in reports.iter().zip(serial_reports) {
                    assert_eq!(
                        p.output, twin.output,
                        "{page}: output diverged under {workers}-worker sharding"
                    );
                    assert_eq!(
                        p.exec, twin.exec,
                        "{page}: simulated counters diverged under {workers}-worker sharding"
                    );
                    assert_eq!(
                        p.reset, twin.reset,
                        "{page}: per-request reset cost diverged under {workers}-worker sharding"
                    );
                }
                best = best.min(s);
            }
            total_s += best;
        }
        rows.push(PoolThroughput {
            workers,
            aggregate_rps: (serial.len() * n) as f64 / total_s,
            scaling: 0.0,
        });
    }
    let base = rows[0].aggregate_rps;
    for r in &mut rows {
        r.scaling = r.aggregate_rps / base;
    }
    let pool_pages = serial
        .iter()
        .map(|(page, reports)| {
            let r = &reports[0];
            (page.to_string(), r.exec.insts, r.exec.cycles)
        })
        .collect();
    Ok((rows, pool_pages))
}

fn main() -> Result<(), LeveeError> {
    let args = BenchArgs::parse();
    let requests = args.scale_or(16, 4);
    let served = if args.json { 48 } else { SERVED_REQUESTS };

    // --- Table 4: simulated-cycle overheads per page type. ---
    let mut table = Table::new(&["page", "SafeStack", "CPS", "CPI", "baseline req/Mcycle"]);
    let mut json_rows = Vec::new();
    for w in web_stack() {
        let base = measure(
            &w,
            requests,
            BuildConfig::Vanilla,
            StoreKind::ArraySuperpage,
        )?;
        let mut cells = Vec::new();
        for c in [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi] {
            let m = measure(&w, requests, c, StoreKind::ArraySuperpage)?;
            cells.push(pct(m.overhead_pct(&base)));
            json_rows.push(m.to_json());
        }
        let throughput = requests as f64 / (base.exec.cycles as f64 / 1.0e6);
        json_rows.push(base.to_json());
        table.row(vec![
            w.name.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            format!("{throughput:.1}"),
        ]);
    }

    // --- The reuse win: resident session vs rebuild-per-request. ---
    let (gate, snapshot_gate) = if args.json {
        (MIN_REUSE_SPEEDUP_CI, MIN_SNAPSHOT_SPEEDUP_CI)
    } else {
        (MIN_REUSE_SPEEDUP, MIN_SNAPSHOT_SPEEDUP)
    };
    let (reuse, aggregate, snapshot_aggregate) = measure_reuse(served, gate, snapshot_gate)?;

    // --- Multi-worker sharding over the shared CoW boot snapshot. ---
    // CI (`--json`) stays at 2 workers — shared runners rarely expose 4
    // quiet cores; interactive runs sweep 1/2/4. The near-linear 4-worker
    // gate only applies where 4 real cores exist; elsewhere the floor
    // gate still catches a sharding collapse.
    let pool_counts: &[usize] = if args.json { &[1, 2] } else { &[1, 2, 4] };
    let (pool_rows, pool_pages) = measure_pool(served, pool_counts)?;
    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let four = pool_rows.iter().find(|r| r.workers == 4);
    if let (Some(four), true) = (four, host_cores >= 4) {
        assert!(
            four.scaling >= MIN_POOL_SCALING_4W,
            "4-worker pool must serve ≥{MIN_POOL_SCALING_4W}x the 1-worker snapshot-reset \
             aggregate rate on a {host_cores}-core host, got {:.2}x",
            four.scaling
        );
    } else if let Some(last) = pool_rows.last() {
        assert!(
            last.scaling >= MIN_POOL_SCALING_FLOOR,
            "{}-worker pool collapsed to {:.2}x the 1-worker aggregate rate \
             (floor {MIN_POOL_SCALING_FLOOR}x on a {host_cores}-core host)",
            last.workers,
            last.scaling
        );
    }

    if args.json {
        for t in &reuse {
            json_rows.push(format!(
                "{{\"page\": {}, \"served_requests\": {served}, \
                 \"fresh_rps\": {}, \"resident_rps\": {}, \"snapshot_rps\": {}, \
                 \"reuse_speedup\": {}, \"snapshot_speedup\": {}, \
                 \"pages_dirtied\": {}, \"bytes_restored\": {}}}",
                json_str(t.page),
                json_f64(t.fresh_rps, 1),
                json_f64(t.resident_rps, 1),
                json_f64(t.snapshot_rps, 1),
                json_f64(t.speedup, 2),
                json_f64(t.snapshot_speedup, 2),
                t.pages_dirtied,
                t.bytes_restored
            ));
        }
        json_rows.push(format!(
            "{{\"aggregate_reuse_speedup\": {}, \
             \"aggregate_snapshot_speedup\": {}}}",
            json_f64(aggregate, 2),
            json_f64(snapshot_aggregate, 2)
        ));
        for r in &pool_rows {
            json_rows.push(format!(
                "{{\"pool_workers\": {}, \"pool_aggregate_rps\": {}, \
                 \"pool_scaling_vs_1w\": {}}}",
                r.workers,
                json_f64(r.aggregate_rps, 1),
                json_f64(r.scaling, 2)
            ));
        }
        for (page, insts, cycles) in &pool_pages {
            json_rows.push(format!(
                "{{\"pool_page\": {}, \"insts\": {insts}, \"cycles\": {cycles}}}",
                json_str(page)
            ));
        }
        print_json_rows("webserver_throughput", &json_rows);
        return Ok(());
    }

    println!("Table 4 — web stack throughput ({requests} requests per run)\n");
    table.print();
    println!("\nExpected shape: dynamic-page CPI ≫ wsgi ≫ static (interpreter dispatch cost).");

    println!("\nResident-session reuse under CPI ({served} requests per page, wall-clock):\n");
    let mut t2 = Table::new(&[
        "page",
        "rebuild/req req/s",
        "loader-reset req/s",
        "snapshot req/s",
        "loader speedup",
        "snapshot speedup",
        "pages dirtied/req",
        "bytes restored/req",
    ]);
    for t in &reuse {
        t2.row(vec![
            t.page.to_string(),
            format!("{:.0}", t.fresh_rps),
            format!("{:.0}", t.resident_rps),
            format!("{:.0}", t.snapshot_rps),
            format!("{:.2}x", t.speedup),
            format!("{:.2}x", t.snapshot_speedup),
            t.pages_dirtied.to_string(),
            t.bytes_restored.to_string(),
        ]);
    }
    t2.print();
    println!(
        "\naggregate reuse speedup: {aggregate:.2}x (loader reset), {snapshot_aggregate:.2}x \
         (copy-on-write snapshot reset)\n\
         — one compile + one module load serve every request (Machine::reset between runs,\n\
         bit-identical to a fresh build); the snapshot reset restores only the pages the\n\
         request dirtied instead of re-running the loader (the fork-per-request model);\n\
         baseline recorded in crates/bench/baselines/webserver_throughput.json."
    );

    println!(
        "\nSessionPool sharding over the shared CoW snapshot \
         ({served} requests per page, {host_cores} host cores):\n"
    );
    let mut t3 = Table::new(&["workers", "aggregate req/s", "scaling vs 1 worker"]);
    for r in &pool_rows {
        t3.row(vec![
            r.workers.to_string(),
            format!("{:.0}", r.aggregate_rps),
            format!("{:.2}x", r.scaling),
        ]);
    }
    t3.print();
    if host_cores >= 4 {
        println!(
            "\n— every pooled request is bit-identical to serial snapshot-reset serving\n\
             (output, simulated counters, per-request reset cost); the 4-worker row is\n\
             gated ≥{MIN_POOL_SCALING_4W}x the 1-worker rate."
        );
    } else {
        println!(
            "\n— every pooled request is bit-identical to serial snapshot-reset serving\n\
             (output, simulated counters, per-request reset cost). Only {host_cores} host\n\
             core(s): the near-linear ≥{MIN_POOL_SCALING_4W}x gate needs 4 real cores, so\n\
             this run applies the ≥{MIN_POOL_SCALING_FLOOR}x no-collapse floor instead."
        );
    }
    if args.profile {
        let stack = web_stack();
        let w = stack
            .iter()
            .find(|w| w.name == "dynamic-page")
            .expect("web stack has a dynamic page");
        profile_run(
            &format!("webserver_throughput: {}/CPI ({requests} requests)", w.name),
            w.name,
            &w.source(requests),
            BuildConfig::Cpi,
            StoreKind::ArraySuperpage,
        );
    }
    Ok(())
}
