//! Bench drift gates: compare a fresh deterministic measurement against
//! the recorded baselines in `crates/bench/baselines/`.
//!
//! The simulated counters (cycles, instructions, per-entry store bytes)
//! are deterministic, so *any* divergence from the recorded baseline is
//! a real cost-model or instrumentation change, not noise — the checker
//! still takes a threshold (default 5%) so intentional small cost-model
//! tweaks can land together with refreshed baselines rather than
//! blocking on a 0.1% wobble. The gate is **two-sided**: an unexplained
//! drop past the threshold fails just like growth, because on
//! deterministic counters a drop is the signature of an under-counting
//! bug (dropped `Touched` records, un-charged checks) at least as often
//! as of a genuine win — a real improvement lands together with its
//! refreshed baseline. Wall-clock columns in the baselines are
//! machine-dependent and are *never* gated.
//!
//! The library half (this module) is pure comparison logic over parsed
//! [`Json`] so it can be unit-tested with doctored baselines; the
//! `bench_drift` binary wires it to fresh `levee::Session` runs.

use crate::json::Json;

/// Default regression threshold, percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 5.0;

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftCase {
    /// What was compared, e.g. `engine_compare/CPI/dispatch`.
    pub key: String,
    /// The metric name, e.g. `cycles`.
    pub metric: String,
    /// Recorded baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
}

impl DriftCase {
    /// Relative change in percent (positive = the metric grew).
    /// `NaN` on a degenerate (zero/NaN) baseline — degenerate baselines
    /// are reported, never silently passed (see
    /// `levee_vm::ExecStats::overhead_pct` for the same convention).
    pub fn delta_pct(&self) -> f64 {
        if self.baseline == 0.0 || self.baseline.is_nan() {
            return f64::NAN;
        }
        (self.current / self.baseline - 1.0) * 100.0
    }

    /// Whether this case drifts past `threshold_pct` in **either**
    /// direction. Growth is a regression; an unexplained drop on a
    /// deterministic counter is just as suspect (under-counting bugs
    /// shrink counters silently) and must be acknowledged by
    /// re-recording the baseline. A `NaN` delta (degenerate baseline)
    /// counts as drift: a gate that cannot compute its metric must
    /// fail loudly.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        let d = self.delta_pct();
        d.is_nan() || d.abs() > threshold_pct
    }
}

/// The checker's outcome over all compared metrics.
#[derive(Debug, Clone, Default)]
pub struct DriftReport {
    /// Every compared metric, in comparison order.
    pub cases: Vec<DriftCase>,
    /// Problems that prevented a comparison (missing baseline rows,
    /// malformed entries). Always failures: a gate that cannot run
    /// must not pass.
    pub errors: Vec<String>,
}

impl DriftReport {
    /// The cases regressing past `threshold_pct`.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&DriftCase> {
        self.cases
            .iter()
            .filter(|c| c.regressed(threshold_pct))
            .collect()
    }

    /// True when the gate passes at `threshold_pct`.
    pub fn ok(&self, threshold_pct: f64) -> bool {
        self.errors.is_empty() && self.regressions(threshold_pct).is_empty()
    }

    /// Renders a human-readable summary.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut out = String::new();
        for c in &self.cases {
            let d = c.delta_pct();
            let flag = if c.regressed(threshold_pct) {
                "  <-- DRIFT"
            } else {
                ""
            };
            let delta = if d.is_nan() {
                "n/a".to_string()
            } else {
                format!("{d:+.2}%")
            };
            out.push_str(&format!(
                "{:<40} {:<8} baseline {:>14.1} current {:>14.1} {:>9}{}\n",
                c.key, c.metric, c.baseline, c.current, delta, flag
            ));
        }
        for e in &self.errors {
            out.push_str(&format!("error: {e}\n"));
        }
        let n = self.regressions(threshold_pct).len();
        out.push_str(&format!(
            "{} metrics compared, {} drift(s), {} error(s) at threshold ±{threshold_pct}%\n",
            self.cases.len(),
            n,
            self.errors.len()
        ));
        out
    }
}

/// A fresh engine-comparison measurement: the deterministic counters of
/// one (build, kernel) cell.
#[derive(Debug, Clone)]
pub struct FreshCounters {
    /// Build configuration name, as the baseline records it.
    pub build: String,
    /// Kernel name.
    pub kernel: String,
    /// Instructions executed.
    pub insts: u64,
    /// Simulated cycles.
    pub cycles: u64,
}

/// Compares fresh engine-comparison counters against the recorded
/// `engine_compare.json` baseline. Every baseline row must find a
/// fresh counterpart (a missing one is an error — the gate must not
/// quietly shrink its coverage); wall-clock columns are ignored.
pub fn check_engine_compare(baseline: &Json, fresh: &[FreshCounters]) -> DriftReport {
    let mut report = DriftReport::default();
    let Some(rows) = baseline.get("rows").and_then(Json::as_arr) else {
        report
            .errors
            .push("engine_compare baseline: no \"rows\" array".into());
        return report;
    };
    for row in rows {
        let (Some(build), Some(kernel)) = (
            row.get("build").and_then(Json::as_str),
            row.get("kernel").and_then(Json::as_str),
        ) else {
            report
                .errors
                .push("engine_compare baseline: row without build/kernel".into());
            continue;
        };
        let key = format!("engine_compare/{build}/{kernel}");
        let Some(f) = fresh
            .iter()
            .find(|f| f.build == build && f.kernel == kernel)
        else {
            report
                .errors
                .push(format!("{key}: no fresh measurement for this baseline row"));
            continue;
        };
        for (metric, current) in [("insts", f.insts as f64), ("cycles", f.cycles as f64)] {
            match row.get(metric).and_then(Json::as_f64) {
                Some(baseline_v) => report.cases.push(DriftCase {
                    key: key.clone(),
                    metric: metric.into(),
                    baseline: baseline_v,
                    current,
                }),
                None => report
                    .errors
                    .push(format!("{key}: baseline row lacks \"{metric}\"")),
            }
        }
    }
    if report.cases.is_empty() && report.errors.is_empty() {
        report
            .errors
            .push("engine_compare baseline: empty rows array".into());
    }
    report
}

/// Compares fresh per-entry store-residency numbers against the
/// `memory_overhead.json` baseline: `(org name, compact bytes/entry)`.
pub fn check_memory_overhead(baseline: &Json, fresh: &[(String, f64)]) -> DriftReport {
    let mut report = DriftReport::default();
    let Some(orgs) = baseline.get("orgs").and_then(Json::as_arr) else {
        report
            .errors
            .push("memory_overhead baseline: no \"orgs\" array".into());
        return report;
    };
    for row in orgs {
        let Some(org) = row.get("org").and_then(Json::as_str) else {
            report
                .errors
                .push("memory_overhead baseline: org row without name".into());
            continue;
        };
        let key = format!("memory_overhead/{org}");
        let Some(&(_, current)) = fresh.iter().find(|(name, _)| name == org) else {
            report
                .errors
                .push(format!("{key}: no fresh measurement for this baseline row"));
            continue;
        };
        match row.get("compact_bytes_per_entry").and_then(Json::as_f64) {
            Some(b) => report.cases.push(DriftCase {
                key,
                metric: "bytes_per_entry".into(),
                baseline: b,
                current,
            }),
            None => report
                .errors
                .push(format!("{key}: baseline row lacks compact_bytes_per_entry")),
        }
    }
    report
}

/// One fresh counter row of a PAC-era baseline (`defense_matrix.json`
/// `pac_rows`, `spec_overhead.json` `rows`): the deterministic
/// execution counters of one (build, workload) cell, PAC sign/auth
/// included, plus whether the run trapped. Trapping cells are *still
/// gated*: a PACTight-incompatible workload (memcpy'd sealed callback
/// records) dies at a deterministic point, so its counters drift like
/// any other — and a cell silently flipping between trapping and clean
/// is itself a defense-semantics change that must be acknowledged.
#[derive(Debug, Clone)]
pub struct CounterRow {
    /// Row identity, as the baseline's `id` key records it
    /// (e.g. `PAC/dispatch`, `gcc/PACTight`).
    pub id: String,
    /// Instructions executed.
    pub insts: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Pointers sealed.
    pub pac_signs: u64,
    /// Seals authenticated.
    pub pac_auths: u64,
    /// Whether the run ended in a trap instead of a clean exit.
    pub trapped: bool,
}

/// Compares fresh [`CounterRow`]s against a baseline's `array_key`
/// rows. Counters are gated two-sided at the threshold like every
/// other deterministic counter; a counter that was zero on one side
/// and nonzero on the other is an error (a ±% gate cannot price
/// appearing/disappearing instrumentation), zero-to-zero matches pass
/// silently, and a flipped `trapped` verdict is an error.
pub fn check_counter_rows(section: &str, baseline: &Json, fresh: &[CounterRow]) -> DriftReport {
    let mut report = DriftReport::default();
    let Some(rows) = baseline.get("rows").and_then(Json::as_arr) else {
        report
            .errors
            .push(format!("{section} baseline: no \"rows\" array"));
        return report;
    };
    for row in rows {
        let Some(id) = row.get("id").and_then(Json::as_str) else {
            report
                .errors
                .push(format!("{section} baseline: row without \"id\""));
            continue;
        };
        let key = format!("{section}/{id}");
        let Some(f) = fresh.iter().find(|f| f.id == id) else {
            report
                .errors
                .push(format!("{key}: no fresh measurement for this baseline row"));
            continue;
        };
        match row.get("trapped").and_then(Json::as_bool) {
            Some(b) if b != f.trapped => report.errors.push(format!(
                "{key}: trap verdict flipped (baseline trapped={b}, fresh trapped={})",
                f.trapped
            )),
            Some(_) => {}
            None => report
                .errors
                .push(format!("{key}: baseline row lacks \"trapped\"")),
        }
        for (metric, current) in [
            ("insts", f.insts as f64),
            ("cycles", f.cycles as f64),
            ("pac_signs", f.pac_signs as f64),
            ("pac_auths", f.pac_auths as f64),
        ] {
            match row.get(metric).and_then(Json::as_f64) {
                Some(b) if b == 0.0 && current == 0.0 => {}
                Some(b) if b == 0.0 || current == 0.0 => report.errors.push(format!(
                    "{key}: {metric} went {b} -> {current} — a counter \
                     (dis)appearing outright needs a re-recorded baseline"
                )),
                Some(b) => report.cases.push(DriftCase {
                    key: key.clone(),
                    metric: metric.into(),
                    baseline: b,
                    current,
                }),
                None => report
                    .errors
                    .push(format!("{key}: baseline row lacks \"{metric}\"")),
            }
        }
    }
    if report.cases.is_empty() && report.errors.is_empty() {
        report
            .errors
            .push(format!("{section} baseline: empty rows array"));
    }
    report
}

/// Compares fresh RIPE verdict tallies — `(mechanism, hijacked,
/// detected)` at the recorded seed — against the `defense_matrix.json`
/// baseline's `verdicts` rows. Verdict counts are **exact**, not
/// thresholded: they are small discrete outcomes of the attack matrix
/// (144 → 137 hijacks would sail through a ±5% gate while silently
/// weakening a defense), so any difference is an error until the
/// baseline is re-recorded alongside the change that explains it.
pub fn check_ripe_verdicts(baseline: &Json, fresh: &[(String, usize, usize)]) -> DriftReport {
    let mut report = DriftReport::default();
    let Some(rows) = baseline.get("verdicts").and_then(Json::as_arr) else {
        report
            .errors
            .push("defense_matrix baseline: no \"verdicts\" array".into());
        return report;
    };
    let mut compared = 0usize;
    for row in rows {
        let Some(mech) = row.get("mechanism").and_then(Json::as_str) else {
            report
                .errors
                .push("defense_matrix baseline: verdict row without mechanism".into());
            continue;
        };
        let key = format!("defense_matrix/{mech}");
        let Some(&(_, hijacked, detected)) = fresh.iter().find(|(name, _, _)| name == mech) else {
            report
                .errors
                .push(format!("{key}: no fresh tally for this baseline row"));
            continue;
        };
        for (metric, current) in [("hijacked", hijacked), ("detected", detected)] {
            match row.get(metric).and_then(Json::as_f64) {
                Some(b) if b == current as f64 => compared += 1,
                Some(b) => report.errors.push(format!(
                    "{key}: {metric} changed {b} -> {current} (verdict counts \
                     are exact; re-record the baseline with the change that \
                     explains this)"
                )),
                None => report
                    .errors
                    .push(format!("{key}: baseline row lacks \"{metric}\"")),
            }
        }
    }
    if compared == 0 && report.errors.is_empty() {
        report
            .errors
            .push("defense_matrix baseline: empty verdicts array".into());
    }
    report
}

/// Compares fresh per-request snapshot-reset costs against the
/// `webserver_throughput.json` baseline: `(page, pages dirtied per
/// request, bytes restored per request)`. Throughput columns in that
/// baseline are wall-clock and stay ungated; the reset cost is a
/// *deterministic* counter (the same request dirties the same pages
/// every time — the in-bin assert pins that), so growth here means the
/// copy-on-write restore got genuinely more expensive, e.g. a new
/// always-dirty page crept into the request path.
pub fn check_webserver_reset(baseline: &Json, fresh: &[(String, u64, u64)]) -> DriftReport {
    let mut report = DriftReport::default();
    let Some(pages) = baseline.get("pages").and_then(Json::as_arr) else {
        report
            .errors
            .push("webserver_throughput baseline: no \"pages\" array".into());
        return report;
    };
    for row in pages {
        let Some(page) = row.get("page").and_then(Json::as_str) else {
            report
                .errors
                .push("webserver_throughput baseline: page row without name".into());
            continue;
        };
        let key = format!("webserver_throughput/{page}");
        let Some(&(_, pages_dirtied, bytes_restored)) =
            fresh.iter().find(|(name, _, _)| name == page)
        else {
            report
                .errors
                .push(format!("{key}: no fresh measurement for this baseline row"));
            continue;
        };
        for (metric, current) in [
            ("pages_dirtied", pages_dirtied as f64),
            ("bytes_restored", bytes_restored as f64),
        ] {
            match row.get(metric).and_then(Json::as_f64) {
                Some(b) => report.cases.push(DriftCase {
                    key: key.clone(),
                    metric: metric.into(),
                    baseline: b,
                    current,
                }),
                None => report
                    .errors
                    .push(format!("{key}: baseline row lacks \"{metric}\"")),
            }
        }
    }
    if report.cases.is_empty() && report.errors.is_empty() {
        report
            .errors
            .push("webserver_throughput baseline: empty pages array".into());
    }
    report
}

/// Compares fresh pool-served per-request counters against the
/// `webserver_throughput.json` baseline's `pool_pages` rows: `(page,
/// insts per request, cycles per request)`, measured through a
/// multi-worker `SessionPool`. These are deterministic (pool serving
/// is bit-identical to serial serving at any worker count — the pool
/// proptest pins that), so drift here means sharded serving diverged
/// from the serial cost model. The per-worker-count rps rows in the
/// same baseline are wall-clock and stay ungated.
pub fn check_webserver_pool(baseline: &Json, fresh: &[(String, u64, u64)]) -> DriftReport {
    let mut report = DriftReport::default();
    let Some(pages) = baseline.get("pool_pages").and_then(Json::as_arr) else {
        report
            .errors
            .push("webserver_throughput baseline: no \"pool_pages\" array".into());
        return report;
    };
    for row in pages {
        let Some(page) = row.get("page").and_then(Json::as_str) else {
            report
                .errors
                .push("webserver_throughput baseline: pool_pages row without name".into());
            continue;
        };
        let key = format!("webserver_throughput/pool/{page}");
        let Some(&(_, insts, cycles)) = fresh.iter().find(|(name, _, _)| name == page) else {
            report
                .errors
                .push(format!("{key}: no fresh measurement for this baseline row"));
            continue;
        };
        for (metric, current) in [("insts", insts as f64), ("cycles", cycles as f64)] {
            match row.get(metric).and_then(Json::as_f64) {
                Some(b) => report.cases.push(DriftCase {
                    key: key.clone(),
                    metric: metric.into(),
                    baseline: b,
                    current,
                }),
                None => report
                    .errors
                    .push(format!("{key}: baseline row lacks \"{metric}\"")),
            }
        }
    }
    if report.cases.is_empty() && report.errors.is_empty() {
        report
            .errors
            .push("webserver_throughput baseline: empty pool_pages array".into());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Json {
        Json::parse(
            r#"{
              "rows": [
                {"build": "vanilla", "kernel": "dispatch", "insts": 1000000, "cycles": 2000000, "walk_ms": 14.9},
                {"build": "CPI", "kernel": "dispatch", "insts": 1100000, "cycles": 2600000, "walk_ms": 16.4}
              ]
            }"#,
        )
        .expect("doctored baseline parses")
    }

    fn fresh(c_vanilla: u64, c_cpi: u64) -> Vec<FreshCounters> {
        vec![
            FreshCounters {
                build: "vanilla".into(),
                kernel: "dispatch".into(),
                insts: 1_000_000,
                cycles: c_vanilla,
            },
            FreshCounters {
                build: "CPI".into(),
                kernel: "dispatch".into(),
                insts: 1_100_000,
                cycles: c_cpi,
            },
        ]
    }

    #[test]
    fn identical_counters_pass() {
        let r = check_engine_compare(&baseline(), &fresh(2_000_000, 2_600_000));
        assert!(r.ok(DEFAULT_THRESHOLD_PCT), "{}", r.render(5.0));
        assert_eq!(r.cases.len(), 4);
    }

    #[test]
    fn a_six_percent_cycle_regression_fails_the_five_percent_gate() {
        // 2_000_000 -> 2_120_000 is +6%: past the 5% default gate.
        let r = check_engine_compare(&baseline(), &fresh(2_120_000, 2_600_000));
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
        let regs = r.regressions(DEFAULT_THRESHOLD_PCT);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "engine_compare/vanilla/dispatch");
        assert_eq!(regs[0].metric, "cycles");
        assert!((regs[0].delta_pct() - 6.0).abs() < 1e-9);
        // …and passes a loosened gate.
        assert!(r.ok(10.0));
    }

    #[test]
    fn small_in_threshold_improvements_pass() {
        // 2_600_000 -> 2_500_000 is -3.8%: inside the ±5% gate.
        let r = check_engine_compare(&baseline(), &fresh(2_000_000, 2_500_000));
        assert!(r.ok(DEFAULT_THRESHOLD_PCT), "{}", r.render(5.0));
    }

    /// The gate is two-sided: on a deterministic counter an
    /// unexplained drop is the signature of an under-counting bug and
    /// must fail until the baseline is re-recorded alongside the
    /// change that explains it.
    #[test]
    fn an_unexplained_drop_fails_like_growth() {
        // 2_000_000 -> 1_500_000 is -25%: far past the ±5% gate.
        let r = check_engine_compare(&baseline(), &fresh(1_500_000, 2_600_000));
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
        let regs = r.regressions(DEFAULT_THRESHOLD_PCT);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "cycles");
        assert!(regs[0].delta_pct() < 0.0, "the drift is a drop");
        // A -6% drop also fails at 5% but passes a loosened ±10% gate.
        let r = check_engine_compare(&baseline(), &fresh(1_880_000, 2_600_000));
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
        assert!(r.ok(10.0));
    }

    #[test]
    fn missing_fresh_rows_and_shapes_are_errors_not_passes() {
        let r = check_engine_compare(&baseline(), &fresh(2_000_000, 2_600_000)[..1]);
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
        assert_eq!(r.errors.len(), 1);

        let r = check_engine_compare(&Json::parse("{}").unwrap(), &fresh(1, 1));
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
    }

    #[test]
    fn degenerate_baselines_are_flagged_not_ignored() {
        let doctored = Json::parse(
            r#"{"rows": [{"build": "vanilla", "kernel": "dispatch", "insts": 0, "cycles": 0}]}"#,
        )
        .unwrap();
        let r = check_engine_compare(&doctored, &fresh(2_000_000, 2_600_000));
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
        assert!(r.regressions(DEFAULT_THRESHOLD_PCT).len() == 2);
        assert!(r.render(5.0).contains("n/a"));
    }

    #[test]
    fn webserver_reset_cost_gates_dirty_page_growth() {
        let b = Json::parse(
            r#"{"pages": [
                {"page": "static-page", "resident_rps": 834, "pages_dirtied": 4, "bytes_restored": 8192},
                {"page": "dynamic-page", "resident_rps": 572, "pages_dirtied": 4, "bytes_restored": 4096}
            ]}"#,
        )
        .unwrap();
        let ok = check_webserver_reset(
            &b,
            &[
                ("static-page".into(), 4, 8192),
                ("dynamic-page".into(), 4, 4096),
            ],
        );
        assert!(ok.ok(DEFAULT_THRESHOLD_PCT), "{}", ok.render(5.0));
        assert_eq!(ok.cases.len(), 4);

        // One extra always-dirty page (4 -> 5 is +25%) trips the gate.
        let grew = check_webserver_reset(
            &b,
            &[
                ("static-page".into(), 5, 12288),
                ("dynamic-page".into(), 4, 4096),
            ],
        );
        assert!(!grew.ok(DEFAULT_THRESHOLD_PCT));
        assert_eq!(grew.regressions(DEFAULT_THRESHOLD_PCT).len(), 2);

        // A shrink past the threshold trips the two-sided gate too:
        // fewer pages restored than recorded means either the restore
        // stopped covering dirt (a bug) or a genuine improvement that
        // must land with a re-recorded baseline.
        let shrank = check_webserver_reset(
            &b,
            &[
                ("static-page".into(), 3, 4096),
                ("dynamic-page".into(), 4, 4096),
            ],
        );
        assert!(!shrank.ok(DEFAULT_THRESHOLD_PCT), "{}", shrank.render(5.0));
        assert_eq!(shrank.regressions(DEFAULT_THRESHOLD_PCT).len(), 2);

        // A baseline page with no fresh twin is an error, not a pass.
        let missing = check_webserver_reset(&b, &[("static-page".into(), 4, 8192)]);
        assert!(!missing.ok(DEFAULT_THRESHOLD_PCT));
        assert_eq!(missing.errors.len(), 1);

        // Pre-snapshot baselines (no reset columns) are flagged so the
        // baseline refresh cannot be forgotten.
        let stale =
            Json::parse(r#"{"pages": [{"page": "static-page", "resident_rps": 834}]}"#).unwrap();
        let r = check_webserver_reset(&stale, &[("static-page".into(), 4, 8192)]);
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
        assert_eq!(r.errors.len(), 2);
    }

    #[test]
    fn pool_counters_are_gated_two_sided() {
        let b = Json::parse(
            r#"{"pool_pages": [
                {"page": "static-page", "insts": 52000, "cycles": 161000},
                {"page": "dynamic-page", "insts": 87000, "cycles": 270000}
            ]}"#,
        )
        .unwrap();
        let ok = check_webserver_pool(
            &b,
            &[
                ("static-page".into(), 52_000, 161_000),
                ("dynamic-page".into(), 87_000, 270_000),
            ],
        );
        assert!(ok.ok(DEFAULT_THRESHOLD_PCT), "{}", ok.render(5.0));
        assert_eq!(ok.cases.len(), 4);

        // Growth and shrink both trip the gate.
        for cycles in [200_000u64, 120_000] {
            let drifted = check_webserver_pool(
                &b,
                &[
                    ("static-page".into(), 52_000, cycles),
                    ("dynamic-page".into(), 87_000, 270_000),
                ],
            );
            assert!(!drifted.ok(DEFAULT_THRESHOLD_PCT));
            assert_eq!(drifted.regressions(DEFAULT_THRESHOLD_PCT).len(), 1);
        }

        // A baseline predating the pool section is an error, not a
        // pass: the refresh cannot be forgotten.
        let stale = Json::parse(r#"{"pages": []}"#).unwrap();
        let r = check_webserver_pool(&stale, &[("static-page".into(), 1, 1)]);
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
    }

    fn pac_row(id: &str, cycles: u64, signs: u64, auths: u64, trapped: bool) -> CounterRow {
        CounterRow {
            id: id.into(),
            insts: 50_000,
            cycles,
            pac_signs: signs,
            pac_auths: auths,
            trapped,
        }
    }

    #[test]
    fn pac_counter_rows_are_gated_two_sided() {
        let b = Json::parse(
            r#"{"rows": [
                {"id": "PAC/dispatch", "insts": 50000, "cycles": 200000,
                 "pac_signs": 4000, "pac_auths": 4000, "trapped": false},
                {"id": "vanilla/dispatch", "insts": 50000, "cycles": 150000,
                 "pac_signs": 0, "pac_auths": 0, "trapped": false}
            ]}"#,
        )
        .unwrap();
        let ok = check_counter_rows(
            "defense_matrix",
            &b,
            &[
                pac_row("PAC/dispatch", 200_000, 4_000, 4_000, false),
                pac_row("vanilla/dispatch", 150_000, 0, 0, false),
            ],
        );
        assert!(ok.ok(DEFAULT_THRESHOLD_PCT), "{}", ok.render(5.0));
        // Zero-to-zero PAC counters on the vanilla row compare silently:
        // 2 insts + 2 cycles + the PAC pair of the PAC row.
        assert_eq!(ok.cases.len(), 6);

        // Sign-count growth and shrink both trip the gate (an
        // under-counting bug shrinks a deterministic counter silently).
        for signs in [5_000u64, 3_000] {
            let drifted = check_counter_rows(
                "defense_matrix",
                &b,
                &[
                    pac_row("PAC/dispatch", 200_000, signs, 4_000, false),
                    pac_row("vanilla/dispatch", 150_000, 0, 0, false),
                ],
            );
            assert!(!drifted.ok(DEFAULT_THRESHOLD_PCT));
            let regs = drifted.regressions(DEFAULT_THRESHOLD_PCT);
            assert_eq!(regs.len(), 1);
            assert_eq!(regs[0].metric, "pac_signs");
        }

        // A counter appearing from (or collapsing to) zero is an error,
        // not a percentage: ±% cannot price new instrumentation.
        let appeared = check_counter_rows(
            "defense_matrix",
            &b,
            &[
                pac_row("PAC/dispatch", 200_000, 4_000, 4_000, false),
                pac_row("vanilla/dispatch", 150_000, 7, 0, false),
            ],
        );
        assert!(!appeared.ok(DEFAULT_THRESHOLD_PCT));
        assert_eq!(appeared.errors.len(), 1);

        // A flipped trap verdict is an error: a PACTight-incompatible
        // cell quietly starting to pass is a defense-semantics change.
        let flipped = check_counter_rows(
            "defense_matrix",
            &b,
            &[
                pac_row("PAC/dispatch", 200_000, 4_000, 4_000, true),
                pac_row("vanilla/dispatch", 150_000, 0, 0, false),
            ],
        );
        assert!(!flipped.ok(DEFAULT_THRESHOLD_PCT));
        assert!(flipped.errors[0].contains("trap verdict flipped"));

        // Missing fresh rows and missing baselines are errors.
        let missing = check_counter_rows(
            "defense_matrix",
            &b,
            &[pac_row("PAC/dispatch", 200_000, 4_000, 4_000, false)],
        );
        assert!(!missing.ok(DEFAULT_THRESHOLD_PCT));
        let r = check_counter_rows("spec_overhead", &Json::parse("{}").unwrap(), &[]);
        assert!(!r.ok(DEFAULT_THRESHOLD_PCT));
    }

    #[test]
    fn ripe_verdicts_are_exact_not_thresholded() {
        let b = Json::parse(
            r#"{"verdicts": [
                {"mechanism": "CPI", "hijacked": 0, "detected": 160},
                {"mechanism": "PAC", "hijacked": 16, "detected": 144}
            ]}"#,
        )
        .unwrap();
        let ok = check_ripe_verdicts(&b, &[("CPI".into(), 0, 160), ("PAC".into(), 16, 144)]);
        assert!(ok.ok(DEFAULT_THRESHOLD_PCT), "{}", ok.render(5.0));

        // One hijack fewer would pass any sane percentage gate — here
        // it is an error outright.
        let weakened = check_ripe_verdicts(&b, &[("CPI".into(), 0, 160), ("PAC".into(), 15, 144)]);
        assert!(!weakened.ok(DEFAULT_THRESHOLD_PCT));
        assert!(weakened.errors[0].contains("hijacked changed 16 -> 15"));

        // A mechanism dropping out of the fresh lineup is an error.
        let missing = check_ripe_verdicts(&b, &[("CPI".into(), 0, 160)]);
        assert!(!missing.ok(DEFAULT_THRESHOLD_PCT));

        let empty = check_ripe_verdicts(&Json::parse(r#"{"verdicts": []}"#).unwrap(), &[]);
        assert!(!empty.ok(DEFAULT_THRESHOLD_PCT));
    }

    #[test]
    fn memory_overhead_comparison_reads_per_entry_bytes() {
        let b = Json::parse(
            r#"{"orgs": [
                {"org": "array-4K", "compact_bytes_per_entry": 16.0},
                {"org": "hashtable", "compact_bytes_per_entry": 40.0}
            ]}"#,
        )
        .unwrap();
        let ok =
            check_memory_overhead(&b, &[("array-4K".into(), 16.0), ("hashtable".into(), 40.0)]);
        assert!(ok.ok(DEFAULT_THRESHOLD_PCT), "{}", ok.render(5.0));
        let bad =
            check_memory_overhead(&b, &[("array-4K".into(), 18.0), ("hashtable".into(), 40.0)]);
        assert!(!bad.ok(DEFAULT_THRESHOLD_PCT));
    }
}
