//! Safe-pointer-store geometry measurements shared by the
//! `memory_overhead` experiment and the `bench_drift` gate.
//!
//! Both need the same deterministic number — simulated safe-region
//! bytes per live entry on a dense population — so the drift checker
//! re-measures exactly what the recorded baseline in
//! `crates/bench/baselines/memory_overhead.json` holds.

use levee_rt::{MetaId, Slot};
use levee_vm::StoreKind;

/// Dense population size used by the experiment and the baseline:
/// contiguous pointer slots covering 4 MB of key space — wide enough
/// that even 2 MB superpage rounding cannot mask the slot-size ratio.
pub const DENSE_ENTRIES: u64 = 1 << 19;

/// The seed's inline-entry geometry, kept as the "before" reference:
/// 32 bytes per slot (`value + lower + upper + id`), and a 40-byte hash
/// bucket (8-byte key tag + the inline entry).
pub const SEED_SLOT: u64 = 32;
const SEED_HASH_BUCKET: u64 = 8 + SEED_SLOT;

/// Measured bytes per live entry after populating `n` contiguous slots.
pub fn dense_bytes_per_entry(kind: StoreKind, n: u64) -> f64 {
    let mut store = kind.instantiate(0x7000_0000_0000);
    for i in 0..n {
        // Handle liveness is irrelevant to geometry; NONE keeps the
        // bench free of a MetaTable without changing a single byte.
        let _ = store.set(i * 8, Slot::new(i, MetaId::NONE));
    }
    assert_eq!(store.entry_count() as u64, n);
    store.memory_bytes() as f64 / n as f64
}

/// What the same dense population cost under the seed geometry,
/// computed from the organizations' (unchanged) layout rules with the
/// 32-byte slot plugged back in.
pub fn seed_bytes_per_entry(kind: StoreKind, n: u64) -> f64 {
    let bytes = match kind {
        StoreKind::Array4K | StoreKind::ArraySuperpage => {
            // Sparse linear array: pages materialize on touch; n
            // contiguous slots span n * SEED_SLOT metadata bytes.
            let page: u64 = if kind == StoreKind::Array4K {
                4 << 10
            } else {
                2 << 20
            };
            (n * SEED_SLOT).div_ceil(page) * page
        }
        StoreKind::TwoLevel => {
            // 512-slot leaves plus 4 KB directory pages (the directory
            // is slot-size independent: 8 bytes per leaf pointer).
            let leaves = n.div_ceil(512);
            let dir_pages = (leaves * 8).div_ceil(4096);
            leaves * 512 * SEED_SLOT + dir_pages * 4096
        }
        StoreKind::Hash => {
            // Replay the (slot-size independent) growth rule: start at
            // 64 buckets, double when the next insert would push the
            // load factor past 0.7.
            let mut cap = 64u64;
            for live in 0..n {
                if (live + 1) * 10 > cap * 7 {
                    cap *= 2;
                }
            }
            cap * SEED_HASH_BUCKET
        }
    };
    bytes as f64 / n as f64
}
