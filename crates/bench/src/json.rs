//! A small hand-rolled JSON reader for the bench harness.
//!
//! The workspace deliberately carries no serde: every producer
//! hand-renders its JSON (`levee_core::session::RunReport::to_json`,
//! the bench binaries' `--json` modes). This module is the matching
//! consumer — enough of RFC 8259 to load the recorded baselines in
//! `crates/bench/baselines/` for the drift checker and to round-trip
//! the reports the binaries emit in tests. It is a reader for JSON *we*
//! wrote; it accepts all valid JSON but reports errors by byte offset
//! without any recovery.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`; the baselines' counters are
    /// well inside the 2^53 exact-integer range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (none of our consumers
    /// cares); duplicate keys keep the last value.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value()?;
            m.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.i + 4 > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.i += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.i += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.i += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.i += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.i += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.i += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.i += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must
                                // follow with the low half.
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let s = &self.b[self.i..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("ASCII number");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let j = Json::parse(r#"{"a": [1, -2.5, 3e2], "b": {"c": true, "d": null}, "e": "x"}"#)
            .expect("parses");
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(j.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn unescapes_strings_including_unicode() {
        let j = Json::parse(r#""q\"b\\n\nl\u00e9\ud83d\ude00""#).expect("parses");
        assert_eq!(j.as_str(), Some("q\"b\\n\nlé😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("\"\\u12\"").is_err());
        assert!(Json::parse("\"\u{1}\"").is_err());
    }

    #[test]
    fn loads_the_recorded_baselines() {
        for name in [
            "engine_compare.json",
            "memory_overhead.json",
            "value_traffic.json",
            "webserver_throughput.json",
        ] {
            let path = format!("{}/baselines/{name}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).expect("baseline exists");
            let j = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(matches!(j, Json::Obj(_)), "{name}: top level is an object");
        }
    }
}
