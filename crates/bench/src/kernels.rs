//! The shared kernel lineup of the engine-comparison experiments.
//!
//! One place owns the (kernel, entry, iteration-count) table so the
//! `engine_compare` binary, the `profile_attribution` recorder and the
//! `bench_drift` checker all measure *the same* workloads: the drift
//! checker re-runs exactly the kernels whose counters the recorded
//! baseline in `crates/bench/baselines/engine_compare.json` holds.

use levee_workloads::kernels;

/// One kernel of the engine-comparison lineup.
pub struct KernelSpec {
    /// Short name (the baseline's `kernel` key).
    pub name: &'static str,
    /// Mini-C source fragment (see `levee_workloads::kernels`).
    pub source: &'static str,
    /// Entry function driven by `kernels::assemble`.
    pub entry: &'static str,
    /// Iteration count — part of the workload's identity: the recorded
    /// baseline counters are only comparable at the same count.
    pub iters: u64,
}

impl KernelSpec {
    /// The assembled mini-C program for this kernel.
    pub fn program(&self) -> String {
        kernels::assemble(&[self.source], &[(self.entry, self.iters)])
    }
}

/// The kernels on which fusion must show a measurable wall-clock win
/// (tight loops of fusible pairs).
pub const FUSION_KERNELS: &[&str] = &["dispatch", "numeric", "vcall"];

/// The engine-comparison lineup, in baseline row order.
pub const KERNELS: &[KernelSpec] = &[
    KernelSpec {
        name: "dispatch",
        source: kernels::DISPATCH,
        entry: "dispatch_kernel",
        iters: 20_000,
    },
    KernelSpec {
        name: "vcall",
        source: kernels::VCALL,
        entry: "vcall_kernel",
        iters: 20_000,
    },
    KernelSpec {
        name: "numeric",
        source: kernels::NUMERIC,
        entry: "numeric_kernel",
        iters: 100_000,
    },
    KernelSpec {
        name: "bigstack",
        source: kernels::BIGSTACK,
        entry: "bigstack_kernel",
        iters: 400,
    },
    KernelSpec {
        name: "strings",
        source: kernels::STRINGS,
        entry: "string_kernel",
        iters: 2_000,
    },
    KernelSpec {
        name: "graph",
        source: kernels::GRAPH,
        entry: "graph_kernel",
        iters: 100_000,
    },
    KernelSpec {
        name: "cbstruct",
        source: kernels::CBSTRUCT,
        entry: "cbstruct_kernel",
        iters: 10_000,
    },
    KernelSpec {
        name: "heapchurn",
        source: kernels::HEAPCHURN,
        entry: "heap_kernel",
        iters: 20_000,
    },
    KernelSpec {
        name: "bulkcopy",
        source: kernels::BULKCOPY,
        entry: "bulkcopy_kernel",
        iters: 4_000,
    },
    KernelSpec {
        name: "calltree",
        source: kernels::CALLTREE,
        entry: "calltree_kernel",
        iters: 40_000,
    },
    KernelSpec {
        name: "ptrdense",
        source: kernels::PTRDENSE,
        entry: "ptrdense_kernel",
        iters: 40_000,
    },
];

/// Looks a kernel up by name.
pub fn kernel(name: &str) -> Option<&'static KernelSpec> {
    KERNELS.iter().find(|k| k.name == name)
}
