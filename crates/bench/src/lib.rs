//! # levee-bench — the evaluation harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results):
//!
//! | binary | artifact |
//! |---|---|
//! | `ripe_eval` | §5.1 RIPE table |
//! | `spec_overhead` | Table 1 + Fig. 3 |
//! | `compilation_stats` | Table 2 |
//! | `softbound_compare` | Table 3 |
//! | `memory_overhead` | §5.2 memory numbers |
//! | `phoronix` | Fig. 4 |
//! | `webserver_throughput` | Table 4 |
//! | `defense_matrix` | Fig. 5 |
//! | `isolation` | §3.2.3 isolation costs + guessing |
//! | `cfi_bypass` | §3.3 Perl-opcode CFI vs CPS |
//! | `mpx_ablation` | §4 MPX discussion |
//!
//! plus the criterion bench `store_organizations` (§4's array /
//! two-level / hashtable comparison), the `bench_drift` baseline gate
//! and the `profile_attribution` recorder (see [`drift`] and
//! [`profile`]).

pub mod drift;
pub mod geometry;
pub mod json;
pub mod kernels;
pub mod profile;

/// Formats a percentage with sign, one decimal. `NaN` — the overhead
/// helpers' "degenerate baseline" signal (see
/// `levee_vm::ExecStats::overhead_pct`) — renders as `n/a`, so a broken
/// baseline is visible in a table instead of reading as `+NaN%` noise
/// or, worse, zero overhead.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{x:+.1}%")
    }
}

/// Shared command-line convention of every bench binary:
/// `[-- [scale] [--json] [--profile]]`. `--json` selects the
/// machine-readable report *and* the binary's quick profile (a small
/// default scale), so CI's `bench-smoke` job can run all thirteen
/// binaries on every push; an explicit scale always wins. `--profile`
/// turns on the VM's execution profiler and makes the binary print
/// per-opcode/per-function attribution tables for its runs (simulated
/// counters are bit-identical with the profiler on — see
/// `levee_vm::VmConfig::profile`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchArgs {
    /// Emit machine-readable JSON (rows read off `levee::RunReport`).
    pub json: bool,
    /// Profile the runs and print attribution tables.
    pub profile: bool,
    /// Explicit scale/size argument, if one was given.
    pub scale: Option<u64>,
}

impl BenchArgs {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        for a in std::env::args().skip(1) {
            if a == "--json" {
                args.json = true;
            } else if a == "--profile" {
                args.profile = true;
            } else if let Ok(n) = a.parse() {
                args.scale = Some(n);
            }
        }
        args
    }

    /// The effective scale: explicit wins, then the quick default under
    /// `--json`, then the interactive default.
    pub fn scale_or(&self, interactive: u64, quick: u64) -> u64 {
        self.scale
            .unwrap_or(if self.json { quick } else { interactive })
    }
}

/// Renders `rows` of pre-serialized JSON objects as one top-level
/// object: `{"<bin>": [row, row, …]}` — the uniform shape of every
/// bench binary's `--json` output. (Split from [`print_json_rows`] so
/// tests can round-trip the exact bytes the binaries emit.)
pub fn render_json_rows(bin: &str, rows: &[String]) -> String {
    let mut out = format!("{{\"{bin}\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!("  {row}{comma}\n"));
    }
    out.push_str("]}\n");
    out
}

/// Prints [`render_json_rows`] to stdout.
pub fn print_json_rows(bin: &str, rows: &[String]) {
    print!("{}", render_json_rows(bin, rows));
}

/// A fixed-width text table, printed in the paper's style.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "CPS", "CPI"]);
        t.row(vec!["perlbench".into(), "+3.1%".into(), "+12.0%".into()]);
        t.row(vec!["lbm".into(), "+0.1%".into(), "+0.2%".into()]);
        let r = t.render();
        assert!(r.contains("perlbench"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(8.4), "+8.4%");
        assert_eq!(pct(-0.4), "-0.4%");
    }

    #[test]
    fn pct_renders_degenerate_baselines_as_na() {
        assert_eq!(pct(f64::NAN), "n/a");
        let run = levee_vm::ExecStats {
            cycles: 100,
            ..Default::default()
        };
        assert_eq!(
            pct(run.overhead_pct(&levee_vm::ExecStats::default())),
            "n/a"
        );
    }
}
