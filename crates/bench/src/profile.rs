//! Rendering of [`ProfileReport`] attribution tables for the bench
//! binaries' `--profile` mode.
//!
//! Every binary shares one presentation: a per-opcode table (dispatch
//! counts and cycles, with each row's share of the run), a
//! top-functions table (inclusive/exclusive cycles off the call-frame
//! seam) and, when the build carries CPI instrumentation, the hottest
//! check sites. The renderer also re-asserts the profiler's core
//! invariant — per-op cycles are a *partition* of the run, summing
//! exactly to `ExecStats::cycles` — so a bin printing a profile can
//! never print one that doesn't add up.

use levee_core::{BuildConfig, Session};
use levee_vm::{ProfileReport, StoreKind};

use crate::Table;

/// Renders `report` as the standard attribution tables, limiting the
/// function and check-site tables to `top` rows. Panics if the per-op
/// attribution does not sum exactly to the run's cycle total — that
/// would mean the profiler missed or double-counted a dispatch window.
pub fn render_profile(report: &ProfileReport, top: usize) -> String {
    assert_eq!(
        report.op_cycle_total(),
        report.total_cycles,
        "per-op cycle attribution must partition the run"
    );
    let mut out = String::new();
    let share = |cycles: u64| {
        if report.total_cycles == 0 {
            "0.0%".to_string()
        } else {
            format!("{:.1}%", cycles as f64 * 100.0 / report.total_cycles as f64)
        }
    };

    let mut ops = Table::new(&["op", "count", "cycles", "share"]);
    for o in &report.ops {
        ops.row(vec![
            o.name.clone(),
            o.count.to_string(),
            o.cycles.to_string(),
            share(o.cycles),
        ]);
    }
    out.push_str(&format!(
        "per-opcode attribution ({} cycles, {} insts):\n",
        report.total_cycles, report.total_insts
    ));
    out.push_str(&ops.render());

    let mut funcs = Table::new(&[
        "function",
        "calls",
        "incl cycles",
        "excl cycles",
        "incl insts",
        "excl insts",
        "checks",
    ]);
    for f in report.funcs.iter().take(top) {
        funcs.row(vec![
            f.name.clone(),
            f.calls.to_string(),
            f.incl_cycles.to_string(),
            f.excl_cycles.to_string(),
            f.incl_insts.to_string(),
            f.excl_insts.to_string(),
            f.excl_checks.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\ntop functions by inclusive cycles (showing {} of {}):\n",
        report.funcs.len().min(top),
        report.funcs.len()
    ));
    out.push_str(&funcs.render());

    if !report.check_sites.is_empty() {
        let mut sites = Table::new(&["function", "site", "attempts", "passes", "misses"]);
        for s in report.check_sites.iter().take(top) {
            sites.row(vec![
                s.func.clone(),
                s.site.to_string(),
                s.attempts.to_string(),
                s.passes.to_string(),
                s.misses().to_string(),
            ]);
        }
        out.push_str(&format!(
            "\nhottest CPI check sites (showing {} of {}):\n",
            report.check_sites.len().min(top),
            report.check_sites.len()
        ));
        out.push_str(&sites.render());
    }
    if report.dropped_events > 0 {
        out.push_str(&format!(
            "\n(trace ring wrapped: {} events dropped)\n",
            report.dropped_events
        ));
    }
    // Machine-recycling cost (host-side; never part of the cycle
    // attribution above). Only shown when a reset actually served this
    // run — first runs of a session have nothing to report.
    let r = &report.reset;
    if r.used_snapshot {
        out.push_str(&format!(
            "\nsnapshot reset: {} pages dirtied, {} bytes restored, \
             {} store bytes restored, {} meta entries dropped\n",
            r.pages_dirtied, r.bytes_restored, r.store_bytes_restored, r.meta_entries_dropped
        ));
    }
    out
}

/// Prints the standard attribution block for one run, labelled.
pub fn print_profile(label: &str, report: &ProfileReport) {
    println!("\n-- profile: {label} --");
    print!("{}", render_profile(report, 10));
}

/// The shared `--profile` tail of the bench binaries: builds `src`
/// under `config`/`store` with the execution profiler on, runs it, and
/// prints the attribution tables. Each binary profiles a
/// *representative* run of its experiment rather than every cell — the
/// profiled twin is bit-identical in simulated counters (see
/// `levee_vm::VmConfig::profile`), so one attribution per experiment
/// answers "where do the cycles of this table go".
pub fn profile_run(label: &str, name: &str, src: &str, config: BuildConfig, store: StoreKind) {
    let mut session = Session::builder()
        .source(src)
        .name(name)
        .protection(config)
        .store(store)
        .profile(true)
        .build()
        .unwrap_or_else(|e| panic!("{name}: builds for profiling: {e}"));
    let run = session.run(b"");
    // A trapped run still profiles (the RIPE bins profile an attack a
    // CPI check stops — the check-site table shows the detection), so
    // surface the status instead of asserting success.
    let label = if run.success() {
        label.to_string()
    } else {
        format!("{label} ({:?})", run.status)
    };
    print_profile(&label, run.profile.as_ref().expect("profiler on"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use levee_core::{BuildConfig, Session};

    #[test]
    fn rendered_profile_carries_all_three_tables() {
        let mut s = Session::builder()
            .source(
                r#"
                void h(int x) { print_int(x); }
                void (*cb)(int);
                int main() { cb = h; cb(7); return 0; }
                "#,
            )
            .protection(BuildConfig::Cpi)
            .profile(true)
            .build()
            .expect("builds");
        let report = s.run(b"").profile.expect("profile on");
        let text = render_profile(&report, 10);
        assert!(text.contains("per-opcode attribution"));
        assert!(text.contains("top functions"));
        assert!(text.contains("check sites"), "CPI build has check sites");
        assert!(text.contains("main"));
    }
}
