//! Round-trip of the bench binaries' `--json` report path.
//!
//! Every bench binary's machine-readable mode is `RunReport::to_json`
//! rows wrapped by `levee_bench::render_json_rows` — hand-rolled
//! serialization on both ends (the workspace carries no serde). This
//! suite drives adversarial content through the exact same two layers
//! and re-parses the bytes with [`levee_bench::json::Json`], so an
//! escaping bug in either layer (a raw quote in a program name, a
//! control character in program output, an unescaped profile function
//! name) breaks a test here before it breaks a CI artifact consumer.

use levee_bench::json::Json;
use levee_bench::render_json_rows;
use levee_core::{json_f64, BuildConfig, Session};

/// Names chosen to break naive JSON emission: quotes, backslashes
/// (including a trailing one), control characters, and non-ASCII.
const ADVERSARIAL_NAMES: &[&str] = &[
    "quote\" backslash\\ name",
    "tabs\tnewlines\nreturns\r",
    "control \u{1}\u{1f} chars",
    "non-ascii π — 名前",
    "trailing backslash \\",
];

/// A program whose *output* also carries JSON-hostile bytes.
const HOSTILE_SOURCE: &str = r#"
void h(int x) { print_int(x); }
void (*cb)(int);
int main() {
    print_str("say \"hi\"\\\n");
    cb = h;
    cb(42);
    return 0;
}
"#;

#[test]
fn adversarial_names_round_trip_through_the_bin_json_path() {
    let mut rows = Vec::new();
    for name in ADVERSARIAL_NAMES {
        let mut session = Session::builder()
            .source(HOSTILE_SOURCE)
            .name(name)
            .protection(BuildConfig::Cpi)
            .profile(true)
            .build()
            .expect("program builds");
        let report = session.run_ok(b"").expect("program runs");
        rows.push(report.to_json());
    }
    // The exact bytes a bench bin prints under `--json`.
    let text = render_json_rows("adversarial", &rows);
    let parsed = Json::parse(&text).expect("bin-shaped report must stay parseable");
    let arr = parsed
        .get("adversarial")
        .and_then(Json::as_arr)
        .expect("top-level rows array");
    assert_eq!(arr.len(), ADVERSARIAL_NAMES.len());
    for (row, name) in arr.iter().zip(ADVERSARIAL_NAMES) {
        assert_eq!(
            row.get("name").and_then(Json::as_str),
            Some(*name),
            "name must survive the escape/unescape round trip"
        );
        let output = row.get("output").and_then(Json::as_str).expect("output");
        assert!(
            output.contains("say \"hi\"\\"),
            "hostile program output must round-trip, got {output:?}"
        );
        // The profile object rides on the same row: check its shape and
        // that its totals agree with the row's own counters.
        let profile = row.get("profile").expect("profiler was on");
        assert_eq!(
            profile.get("total_cycles").and_then(Json::as_u64),
            row.get("cycles").and_then(Json::as_u64),
            "profile totals must match the run's counters"
        );
        let ops = profile.get("ops").and_then(Json::as_arr).expect("ops");
        let op_cycles: u64 = ops
            .iter()
            .map(|o| o.get("cycles").and_then(Json::as_u64).expect("op cycles"))
            .sum();
        assert_eq!(
            Some(op_cycles),
            profile.get("total_cycles").and_then(Json::as_u64),
            "per-op attribution must partition the run even after a round trip"
        );
        assert!(
            profile
                .get("check_sites")
                .and_then(Json::as_arr)
                .is_some_and(|s| !s.is_empty()),
            "a CPI build carries check sites"
        );
    }
}

#[test]
fn rows_without_profile_round_trip_too() {
    let mut session = Session::builder()
        .source(HOSTILE_SOURCE)
        .name("plain \"row\"")
        .protection(BuildConfig::Vanilla)
        .build()
        .expect("program builds");
    let row = session.run_ok(b"").expect("program runs").to_json();
    let text = render_json_rows("plain", &[row]);
    let parsed = Json::parse(&text).expect("parses");
    let row = &parsed.get("plain").and_then(Json::as_arr).expect("rows")[0];
    assert_eq!(
        row.get("name").and_then(Json::as_str),
        Some("plain \"row\"")
    );
    assert!(
        row.get("profile").is_none(),
        "no profile key when the profiler is off"
    );
}

/// Non-finite floats — the NaN a zero-baseline `overhead_pct` yields,
/// the infinity of a rate over zero elapsed time — must reach the wire
/// as JSON `null`, never as the bare `NaN`/`inf` tokens `{:.2}` would
/// print. This drives them through the same `json_f64` the bench bins
/// use for every computed rate/percentage and re-parses the bytes.
#[test]
fn non_finite_floats_round_trip_as_null() {
    let zero_elapsed = 0.0_f64;
    let zero_elapsed_rps = 64.0 / zero_elapsed; // +inf, rate over no time
    let zero_baseline = 0.0_f64;
    let zero_baseline_overhead = (100.0 - zero_baseline) / zero_baseline * 100.0; // +inf
    let nan_overhead = (zero_baseline - zero_baseline) / zero_baseline * 100.0; // NaN
    let rows = vec![format!(
        "{{\"page\": \"degenerate\", \"snapshot_rps\": {}, \
         \"overhead_pct\": {}, \"speedup\": {}, \"finite\": {}}}",
        json_f64(zero_elapsed_rps, 1),
        json_f64(zero_baseline_overhead, 2),
        json_f64(nan_overhead, 2),
        json_f64(11.06, 2)
    )];
    let text = render_json_rows("degenerate", &rows);
    let parsed = Json::parse(&text).expect("null-bearing report must stay parseable");
    let row = &parsed
        .get("degenerate")
        .and_then(Json::as_arr)
        .expect("rows")[0];
    for key in ["snapshot_rps", "overhead_pct", "speedup"] {
        assert!(
            matches!(row.get(key), Some(Json::Null)),
            "{key}: non-finite must arrive as null, got {:?}",
            row.get(key)
        );
        assert_eq!(
            row.get(key).and_then(Json::as_f64),
            None,
            "{key}: null is not a number to consumers"
        );
    }
    assert_eq!(row.get("finite").and_then(Json::as_f64), Some(11.06));
}
