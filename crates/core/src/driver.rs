//! The Levee driver: source → protected module, one flag per mode.
//!
//! Mirrors §4's user interface: "To use Levee, one just needs to pass
//! additional flags to the compiler to enable CPI (-fcpi), CPS (-fcps),
//! or safe-stack protection (-fstack-protector-safe)."

use levee_ir::prelude::*;
use levee_minic::CompileError;
use levee_vm::{PacMode, VmConfig};

use crate::instrument;
use crate::pac;
use crate::safestack;
use crate::sensitivity::Mode;
use crate::stats::BuildStats;

/// Which protection to build with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuildConfig {
    /// No protection at all (baseline).
    Vanilla,
    /// Safe stack only (`-fstack-protector-safe`).
    SafeStack,
    /// Code-pointer separation (`-fcps`); includes the safe stack.
    Cps,
    /// Code-pointer integrity (`-fcpi`); includes the safe stack.
    Cpi,
    /// Full-memory-safety baseline (SoftBound-style); includes the safe
    /// stack so its numbers are comparable to CPI's.
    SoftBound,
    /// Pointer authentication (`-fpac`): code pointers are sealed in
    /// place with a per-machine MAC (see [`crate::pac`]). No safe
    /// stack — return addresses stay in attackable slots, sealed.
    Pac,
    /// PACTight-style pointer authentication (`-fpac-tight`): like
    /// [`BuildConfig::Pac`] but the MAC also binds the slot address,
    /// closing the substitution-attack gap.
    PacTight,
}

impl BuildConfig {
    /// Parses Levee's compiler flag spelling — the inverse of
    /// [`BuildConfig::flag`]. Total over the documented spellings
    /// (`-fcpi`, `-fcps`, `-fstack-protector-safe`, `-fsoftbound`,
    /// `-fpac`, `-fpac-tight`, and the empty string for an unprotected
    /// build); anything else is `None`.
    pub fn from_flag(flag: &str) -> Option<BuildConfig> {
        Some(match flag {
            "-fcpi" => BuildConfig::Cpi,
            "-fcps" => BuildConfig::Cps,
            "-fstack-protector-safe" => BuildConfig::SafeStack,
            "-fsoftbound" => BuildConfig::SoftBound,
            "-fpac" => BuildConfig::Pac,
            "-fpac-tight" => BuildConfig::PacTight,
            "" => BuildConfig::Vanilla,
            _ => return None,
        })
    }

    /// The compiler flag that selects this configuration (§4's user
    /// interface) — the inverse of [`BuildConfig::from_flag`].
    /// [`BuildConfig::Vanilla`] spells as the empty string: no flag, no
    /// protection.
    pub fn flag(self) -> &'static str {
        match self {
            BuildConfig::Vanilla => "",
            BuildConfig::SafeStack => "-fstack-protector-safe",
            BuildConfig::Cps => "-fcps",
            BuildConfig::Cpi => "-fcpi",
            BuildConfig::SoftBound => "-fsoftbound",
            BuildConfig::Pac => "-fpac",
            BuildConfig::PacTight => "-fpac-tight",
        }
    }

    /// Every configuration: the paper's four, the SoftBound
    /// full-memory-safety baseline, and the two PAC family members
    /// (compare [`BuildConfig::evaluated`]).
    pub fn all() -> &'static [BuildConfig] {
        &[
            BuildConfig::Vanilla,
            BuildConfig::SafeStack,
            BuildConfig::Cps,
            BuildConfig::Cpi,
            BuildConfig::SoftBound,
            BuildConfig::Pac,
            BuildConfig::PacTight,
        ]
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            BuildConfig::Vanilla => "vanilla",
            BuildConfig::SafeStack => "safestack",
            BuildConfig::Cps => "CPS",
            BuildConfig::Cpi => "CPI",
            BuildConfig::SoftBound => "SoftBound",
            BuildConfig::Pac => "PAC",
            BuildConfig::PacTight => "PACTight",
        }
    }

    /// The four protected configurations the paper evaluates everywhere.
    pub fn evaluated() -> &'static [BuildConfig] {
        &[
            BuildConfig::Vanilla,
            BuildConfig::SafeStack,
            BuildConfig::Cps,
            BuildConfig::Cpi,
        ]
    }

    fn mode(self) -> Option<Mode> {
        match self {
            BuildConfig::Vanilla
            | BuildConfig::SafeStack
            | BuildConfig::Pac
            | BuildConfig::PacTight => None,
            BuildConfig::Cps => Some(Mode::Cps),
            BuildConfig::Cpi => Some(Mode::Cpi),
            BuildConfig::SoftBound => Some(Mode::SoftBound),
        }
    }

    /// The PAC mode this build runs under ([`PacMode::Off`] for the
    /// non-PAC family).
    fn pac_mode(self) -> PacMode {
        match self {
            BuildConfig::Pac => PacMode::Plain,
            BuildConfig::PacTight => PacMode::Tight,
            _ => PacMode::Off,
        }
    }

    fn uses_safestack(self) -> bool {
        // The PAC family deliberately keeps the conventional stack:
        // return addresses sit adjacent to locals — attackable — and
        // survive only because they are sealed. That is the
        // configuration the RIPE matrix evaluates PAC under.
        !matches!(
            self,
            BuildConfig::Vanilla | BuildConfig::Pac | BuildConfig::PacTight
        )
    }
}

/// A built (possibly instrumented) module plus its statistics.
///
/// Most embedders never touch this directly: [`crate::Session`] owns
/// the `Built` and the [`VmConfig`] derivation below, and serves runs
/// from a resident machine.
pub struct Built {
    /// The protected module, ready for the VM.
    pub module: Module,
    /// The configuration it was built with.
    pub config: BuildConfig,
    /// Compilation statistics (Table 2 data).
    pub stats: BuildStats,
}

impl Built {
    /// A [`VmConfig`] matching this build: CPI/CPS builds protect
    /// runtime-created code pointers (setjmp buffers) through the safe
    /// store, exactly as Levee's modified runtime does (§4); PAC builds
    /// select the machine's sealing mode instead (return addresses,
    /// setjmp tokens and initializer code pointers seal in place — see
    /// `levee_vm::PacMode`).
    pub fn vm_config(&self, mut base: VmConfig) -> VmConfig {
        base.protect_runtime_code_ptrs = matches!(
            self.config,
            BuildConfig::Cps | BuildConfig::Cpi | BuildConfig::SoftBound
        );
        base.pac = self.config.pac_mode();
        base
    }
}

/// Applies `config`'s passes to an already-lowered module.
pub fn build_module(mut module: Module, config: BuildConfig) -> Built {
    let mut stats = BuildStats {
        funcs: module.funcs.len() as u64,
        ..Default::default()
    };
    // mem2reg-lite runs for every configuration, baseline included, so
    // overhead comparisons model post-optimization code (see promote.rs).
    crate::promote::promote_scalars(&mut module);
    if config.uses_safestack() {
        stats.unsafe_frames = safestack::apply(&mut module) as u64;
    }
    if let Some(mode) = config.mode() {
        let per_func = instrument::apply(&mut module, mode);
        stats.absorb(per_func);
    } else {
        // The PAC family rewrites instead of segregating: sign/auth ops
        // around fn-pointer-typed regular traffic (see `crate::pac`).
        if config.pac_mode() != PacMode::Off {
            let p = pac::apply(&mut module, config.pac_mode() == PacMode::Tight);
            stats.instrumented_mem_ops += p.signs + p.auths;
            stats.protected_ops += p.signs + p.auths;
        }
        // Count memory operations for comparable denominators.
        for f in &module.funcs {
            for inst in f.iter_insts() {
                if inst.is_memory_op() {
                    stats.mem_ops += 1;
                }
            }
        }
    }
    module.compute_address_taken();
    levee_ir::verify::assert_valid(&module);
    Built {
        module,
        config,
        stats,
    }
}

/// Compiles mini-C source and applies `config`'s protection passes.
pub fn build_source(src: &str, name: &str, config: BuildConfig) -> Result<Built, CompileError> {
    let module = levee_minic::compile(src, name)?;
    Ok(build_module(module, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        void handler(int x) { print_int(x); }
        void (*h)(int);
        int main() {
            h = handler;
            char buf[16];
            read_input(buf, 15);
            h(7);
            return 0;
        }
    "#;

    #[test]
    fn flags_parse() {
        assert_eq!(BuildConfig::from_flag("-fcpi"), Some(BuildConfig::Cpi));
        assert_eq!(BuildConfig::from_flag("-fcps"), Some(BuildConfig::Cps));
        assert_eq!(
            BuildConfig::from_flag("-fstack-protector-safe"),
            Some(BuildConfig::SafeStack)
        );
        assert_eq!(
            BuildConfig::from_flag("-fsoftbound"),
            Some(BuildConfig::SoftBound)
        );
        assert_eq!(BuildConfig::from_flag("-fpac"), Some(BuildConfig::Pac));
        assert_eq!(
            BuildConfig::from_flag("-fpac-tight"),
            Some(BuildConfig::PacTight)
        );
        assert_eq!(BuildConfig::from_flag(""), Some(BuildConfig::Vanilla));
        assert_eq!(BuildConfig::from_flag("-fwhatever"), None);
        assert_eq!(BuildConfig::from_flag("-fcpi "), None, "no trimming");
    }

    #[test]
    fn flag_round_trips_for_every_config() {
        // from_flag ∘ flag = id over the full lineup, iterated from
        // all() so a newly added config can never dodge this test.
        assert_eq!(BuildConfig::all().len(), 7);
        for config in BuildConfig::all() {
            assert_eq!(
                BuildConfig::from_flag(config.flag()),
                Some(*config),
                "{} must round-trip through its flag {:?}",
                config.name(),
                config.flag()
            );
        }
        // Spellings and names are distinct (the inverse is
        // well-defined, reports are unambiguous).
        let mut flags: Vec<_> = BuildConfig::all().iter().map(|c| c.flag()).collect();
        flags.sort_unstable();
        flags.dedup();
        assert_eq!(flags.len(), BuildConfig::all().len());
        let mut names: Vec<_> = BuildConfig::all().iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BuildConfig::all().len());
    }

    #[test]
    fn vanilla_build_has_no_instrumentation() {
        let built = build_source(SRC, "t", BuildConfig::Vanilla).unwrap();
        assert_eq!(built.stats.instrumented_mem_ops, 0);
        assert!(built.stats.mem_ops > 0);
        assert!(
            !built
                .vm_config(VmConfig::default())
                .protect_runtime_code_ptrs
        );
    }

    #[test]
    fn cpi_build_instruments_and_counts() {
        let built = build_source(SRC, "t", BuildConfig::Cpi).unwrap();
        assert!(built.stats.instrumented_mem_ops > 0);
        assert!(built.stats.fn_checks >= 1);
        assert!(built.stats.fnustack() > 0.0); // main has the input buffer
        assert!(
            built
                .vm_config(VmConfig::default())
                .protect_runtime_code_ptrs
        );
    }

    #[test]
    fn pac_build_seals_without_safe_store() {
        let built = build_source(SRC, "t", BuildConfig::Pac).unwrap();
        // The pass instrumented the fn-pointer global's store + load…
        assert!(built.stats.instrumented_mem_ops >= 2);
        // …but through in-place sealing, not the safe store: the VM
        // config turns on PAC and leaves runtime-pointer segregation
        // off.
        let vc = built.vm_config(VmConfig::default());
        assert_eq!(vc.pac, PacMode::Plain);
        assert!(!vc.protect_runtime_code_ptrs);
        let tight = build_source(SRC, "t", BuildConfig::PacTight).unwrap();
        assert_eq!(tight.vm_config(VmConfig::default()).pac, PacMode::Tight);
    }

    #[test]
    fn mo_ordering_holds_across_modes() {
        // MOCPS ≤ MOCPI ≤ MOSoftBound, the key premise of Table 2.
        let cps = build_source(SRC, "t", BuildConfig::Cps).unwrap();
        let cpi = build_source(SRC, "t", BuildConfig::Cpi).unwrap();
        let sb = build_source(SRC, "t", BuildConfig::SoftBound).unwrap();
        assert!(cps.stats.mo_fraction() <= cpi.stats.mo_fraction());
        assert!(cpi.stats.mo_fraction() <= sb.stats.mo_fraction());
    }

    #[test]
    fn built_modules_run_and_agree_on_output() {
        let mut outputs = Vec::new();
        for config in BuildConfig::all() {
            let mut session = crate::Session::builder()
                .source(SRC)
                .name("t")
                .protection(*config)
                .build()
                .unwrap();
            let out = session
                .run_ok(b"hello")
                .unwrap_or_else(|e| panic!("{} should run cleanly: {e}", config.name()));
            outputs.push(out.output);
        }
        outputs.dedup();
        assert_eq!(
            outputs.len(),
            1,
            "all configs must produce identical output"
        );
    }
}
