//! The CPI/CPS/SoftBound instrumentation pass (§3.2.2).
//!
//! Rewrites a module so that:
//!
//! * loads/stores of **sensitive values** go through the safe pointer
//!   store (`PtrLoad`/`PtrStore`, with the `universal` flavour for
//!   `void*`/`char*`),
//! * dereferences of **sensitive pointers** are bounds-checked
//!   (`Check`) — CPI and SoftBound only; CPS carries no bounds (§3.3),
//! * indirect calls verify their target is a genuine code pointer
//!   (`FnCheck`),
//! * `memcpy`/`memmove`/`memset` whose operands may cover sensitive
//!   data become safe-store-aware variants (`SafeMemcpy`/`SafeMemset`),
//!   unless argument type recovery proves them harmless,
//! * accesses already proven safe by the safe-stack pass
//!   ([`MemSpace::SafeStack`]) are left untouched — they are protected
//!   by the safe region itself.
//!
//! The pass precedes nothing else: like Levee, it expects to run after
//! the safe-stack transformation and leaves the module verifiable.

use std::collections::HashMap;

use levee_ir::prelude::*;

use crate::sensitivity::{FnFlow, Mode, Sensitivity};
use crate::stats::FuncInstrStats;

/// Instruments every function of `module` for `mode`; returns
/// per-function statistics.
pub fn apply(module: &mut Module, mode: Mode) -> Vec<FuncInstrStats> {
    let policy = match mode {
        Mode::Cpi => Policy::Cpi,
        Mode::Cps => Policy::Cps,
        Mode::SoftBound => Policy::SoftBound,
    };
    let types = module.types.clone();
    let mut stats = Vec::new();
    // Clone the function list for analysis while rewriting in place.
    for fidx in 0..module.funcs.len() {
        let func_snapshot = module.funcs[fidx].clone();
        let mut sens = Sensitivity::new(&types, mode);
        let flow = FnFlow::analyze(module, &func_snapshot, &mut sens);
        let defs = def_map(&func_snapshot);
        let mut st = FuncInstrStats::new(&func_snapshot.name);

        let func = &mut module.funcs[fidx];
        for block in &mut func.blocks {
            let old = std::mem::take(&mut block.insts);
            let mut new = Vec::with_capacity(old.len() + 4);
            for inst in old {
                rewrite(
                    inst,
                    policy,
                    &mut sens,
                    &flow,
                    &defs,
                    &func_snapshot,
                    &mut new,
                    &mut st,
                );
            }
            block.insts = new;
        }
        stats.push(st);
    }
    stats
}

/// Register → defining instruction index map (registers are defined once
/// by lowering, except the boolean merge registers, which are not
/// pointers).
fn def_map(func: &Function) -> HashMap<ValueId, Inst> {
    let mut m = HashMap::new();
    for inst in func.iter_insts() {
        if let Some(d) = inst.dest() {
            m.entry(d).or_insert_with(|| inst.clone());
        }
    }
    m
}

/// The static type of an operand, if it is a register.
fn operand_ty(func: &Function, op: Operand) -> Option<&Ty> {
    match op {
        Operand::Value(v) => Some(func.local_ty(v)),
        Operand::Const(_) => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn rewrite(
    inst: Inst,
    policy: Policy,
    sens: &mut Sensitivity<'_>,
    flow: &FnFlow,
    defs: &HashMap<ValueId, Inst>,
    func: &Function,
    out: &mut Vec<Inst>,
    st: &mut FuncInstrStats,
) {
    match inst {
        Inst::Load {
            dest,
            ptr,
            ty,
            space: MemSpace::Regular,
        } => {
            st.mem_ops += 1;
            let mut instrumented = false;
            if needs_deref_check(sens, flow, func, ptr) {
                out.push(Inst::Cpi(CpiOp::Check {
                    policy,
                    ptr,
                    size: size_of(sens, &ty),
                }));
                st.checks += 1;
                instrumented = true;
            }
            if value_needs_protection(sens, flow, &ty, dest.into()) {
                out.push(Inst::Cpi(CpiOp::PtrLoad {
                    policy,
                    dest,
                    ptr,
                    universal: sens.is_universal(&ty),
                }));
                st.protected_ops += 1;
                instrumented = true;
            } else if flow.cast_sensitive.contains(&dest) && ty == Ty::I64 {
                // Cast dataflow: an integer that becomes a sensitive
                // pointer later — load through the universal path.
                out.push(Inst::Cpi(CpiOp::PtrLoad {
                    policy,
                    dest,
                    ptr,
                    universal: true,
                }));
                st.protected_ops += 1;
                instrumented = true;
            } else {
                out.push(Inst::Load {
                    dest,
                    ptr,
                    ty,
                    space: MemSpace::Regular,
                });
            }
            if instrumented {
                st.instrumented_mem_ops += 1;
            }
        }
        Inst::Store {
            ptr,
            value,
            ty,
            space: MemSpace::Regular,
        } => {
            st.mem_ops += 1;
            let mut instrumented = false;
            if needs_deref_check(sens, flow, func, ptr) {
                out.push(Inst::Cpi(CpiOp::Check {
                    policy,
                    ptr,
                    size: size_of(sens, &ty),
                }));
                st.checks += 1;
                instrumented = true;
            }
            let cast_flagged = matches!(value, Operand::Value(v) if flow.cast_sensitive.contains(&v))
                && ty == Ty::I64;
            if value_needs_protection(sens, flow, &ty, value) || cast_flagged {
                out.push(Inst::Cpi(CpiOp::PtrStore {
                    policy,
                    ptr,
                    value,
                    universal: sens.is_universal(&ty) || cast_flagged,
                }));
                st.protected_ops += 1;
                instrumented = true;
            } else {
                out.push(Inst::Store {
                    ptr,
                    value,
                    ty,
                    space: MemSpace::Regular,
                });
            }
            if instrumented {
                st.instrumented_mem_ops += 1;
            }
        }
        Inst::CallIndirect {
            dest,
            callee,
            sig,
            args,
            cfi,
        } => {
            out.push(Inst::Cpi(CpiOp::FnCheck { policy, callee }));
            st.fn_checks += 1;
            out.push(Inst::CallIndirect {
                dest,
                callee,
                sig,
                args,
                cfi,
            });
        }
        Inst::IntrinsicCall { dest, which, args }
            if which.is_mem_fn() && mem_fn_may_touch_sensitive(sens, flow, defs, func, &args) =>
        {
            st.safe_mem_fns += 1;
            match which {
                Intrinsic::Memcpy | Intrinsic::Memmove => {
                    out.push(Inst::Cpi(CpiOp::SafeMemcpy {
                        policy,
                        dst: args[0],
                        src: args[1],
                        len: args[2],
                        moving: which == Intrinsic::Memmove,
                    }));
                }
                Intrinsic::Memset => {
                    out.push(Inst::Cpi(CpiOp::SafeMemset {
                        policy,
                        dst: args[0],
                        byte: args[1],
                        len: args[2],
                    }));
                }
                _ => unreachable!("is_mem_fn covers exactly these"),
            }
            let _ = dest; // memcpy-family results are unused by lowering
        }
        // Safe-stack accesses and everything else pass through; count
        // memory ops for the MO denominators.
        other => {
            if other.is_memory_op() {
                st.mem_ops += 1;
            }
            out.push(other);
        }
    }
}

fn size_of(sens: &mut Sensitivity<'_>, ty: &Ty) -> u64 {
    let _ = sens;
    match ty {
        Ty::I8 => 1,
        Ty::I16 => 2,
        Ty::I32 => 4,
        _ => 8,
    }
}

/// Does dereferencing through `ptr` require a bounds check?
fn needs_deref_check(
    sens: &mut Sensitivity<'_>,
    flow: &FnFlow,
    func: &Function,
    ptr: Operand,
) -> bool {
    let Some(ptr_ty) = operand_ty(func, ptr) else {
        return false;
    };
    // The string heuristic: a char* that provably holds a C string is
    // not universal, so its dereferences are unchecked.
    if ptr_ty.is_universal_pointer() && flow.is_string(ptr) {
        return false;
    }
    sens.deref_needs_check(&ptr_ty.clone())
}

/// Must a value of type `ty` be stored/loaded through the safe store?
/// `value_op` is the operand carrying (or receiving) the value — used by
/// the string heuristic.
fn value_needs_protection(
    sens: &mut Sensitivity<'_>,
    flow: &FnFlow,
    ty: &Ty,
    value_op: Operand,
) -> bool {
    if ty.is_universal_pointer() && flow.is_string(value_op) {
        return false;
    }
    sens.value_sensitive(ty)
}

/// Conservative type recovery for memcpy/memmove/memset arguments
/// (§3.2.2: "analyzing the real types of the arguments prior to being
/// cast to void*"). Returns false when every pointer argument provably
/// points at insensitive data.
fn mem_fn_may_touch_sensitive(
    sens: &mut Sensitivity<'_>,
    flow: &FnFlow,
    defs: &HashMap<ValueId, Inst>,
    func: &Function,
    args: &[Operand],
) -> bool {
    // args[0] (dst) and, for memcpy, args[1] (src); the length is not a
    // pointer. memset has (dst, byte, len) — only dst matters.
    for arg in &args[..args.len().min(2)] {
        let Operand::Value(v) = arg else { continue };
        // Byte value argument of memset is a register too; skip ints.
        if !func.local_ty(*v).is_pointer() {
            continue;
        }
        if flow.is_string(*arg) {
            continue;
        }
        match recovered_pointee(defs, func, *v) {
            Some(pointee) if !sens.ty_sensitive(&pointee) => continue,
            _ => return true, // unknown or sensitive: be conservative
        }
    }
    false
}

/// Finds the real pointee type of register `v` by unwinding casts to its
/// defining instruction.
fn recovered_pointee(defs: &HashMap<ValueId, Inst>, func: &Function, mut v: ValueId) -> Option<Ty> {
    for _ in 0..8 {
        match defs.get(&v) {
            Some(Inst::Cast {
                kind: CastKind::PtrToPtr,
                value: Operand::Value(src),
                ..
            }) => v = *src,
            Some(Inst::Gep {
                base: Operand::Value(src),
                ..
            }) => v = *src,
            _ => break,
        }
    }
    match func.local_ty(v) {
        Ty::Ptr(inner) => Some((**inner).clone()),
        Ty::VoidPtr => None,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levee_minic::compile;

    fn instrument(src: &str, mode: Mode) -> (Module, Vec<FuncInstrStats>) {
        let mut m = compile(src, "t").unwrap();
        crate::safestack::apply(&mut m);
        let stats = apply(&mut m, mode);
        levee_ir::verify::assert_valid(&m);
        (m, stats)
    }

    fn count_ops(m: &Module, pred: impl Fn(&Inst) -> bool) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| f.iter_insts())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn fnptr_global_store_becomes_ptr_store() {
        let (m, _) = instrument(
            r#"
            void handler(int x) { print_int(x); }
            void (*h)(int);
            int main() { h = handler; h(1); return 0; }
            "#,
            Mode::Cpi,
        );
        assert_eq!(
            count_ops(&m, |i| matches!(i, Inst::Cpi(CpiOp::PtrStore { .. }))),
            1
        );
        assert_eq!(
            count_ops(&m, |i| matches!(i, Inst::Cpi(CpiOp::PtrLoad { .. }))),
            1
        );
        assert_eq!(
            count_ops(&m, |i| matches!(i, Inst::Cpi(CpiOp::FnCheck { .. }))),
            1
        );
    }

    #[test]
    fn int_accesses_stay_plain() {
        let (m, stats) = instrument(
            r#"
            int g;
            int main() { g = 4; print_int(g); return 0; }
            "#,
            Mode::Cpi,
        );
        assert_eq!(count_ops(&m, |i| matches!(i, Inst::Cpi(_))), 0);
        let main = stats.iter().find(|s| s.name == "main").unwrap();
        assert_eq!(main.instrumented_mem_ops, 0);
    }

    #[test]
    fn string_heuristic_suppresses_char_ptr_instrumentation() {
        let (m, _) = instrument(
            r#"
            int main() {
                char buf[32];
                strcpy(buf, "hello");
                print_str(buf);
                return 0;
            }
            "#,
            Mode::Cpi,
        );
        assert_eq!(count_ops(&m, |i| matches!(i, Inst::Cpi(_))), 0);
    }

    #[test]
    fn vtable_pointer_accesses_are_checked_under_cpi_not_cps() {
        let src = r#"
            struct shape;
            struct vt { int (*area)(struct shape*); };
            struct shape { struct vt* v; int w; };
            int sq(struct shape* s) { return s->w * s->w; }
            struct vt the_vt = {sq};
            int main() {
                struct shape s;
                s.v = &the_vt;
                s.w = 5;
                print_int(s.v->area(&s));
                return 0;
            }
        "#;
        let (cpi, _) = instrument(src, Mode::Cpi);
        let (cps, _) = instrument(src, Mode::Cps);
        let cpi_checks = count_ops(&cpi, |i| matches!(i, Inst::Cpi(CpiOp::Check { .. })));
        let cps_checks = count_ops(&cps, |i| matches!(i, Inst::Cpi(CpiOp::Check { .. })));
        assert!(cpi_checks > 0, "CPI bounds-checks sensitive derefs");
        assert_eq!(cps_checks, 0, "CPS carries no bounds metadata");
        // Both protect the code-pointer load itself.
        assert!(count_ops(&cps, |i| matches!(i, Inst::Cpi(CpiOp::PtrLoad { .. }))) > 0);
        // CPS instruments strictly fewer operations than CPI.
        let cpi_total = count_ops(&cpi, |i| matches!(i, Inst::Cpi(_)));
        let cps_total = count_ops(&cps, |i| matches!(i, Inst::Cpi(_)));
        assert!(cps_total < cpi_total, "cps {cps_total} < cpi {cpi_total}");
    }

    #[test]
    fn softbound_instruments_all_pointer_ops() {
        let src = r#"
            int main() {
                int x = 1;
                int* p = &x;
                *p = 2;
                print_int(x);
                return 0;
            }
        "#;
        let (sb, _) = instrument(src, Mode::SoftBound);
        let (cpi, _) = instrument(src, Mode::Cpi);
        let sb_total = count_ops(&sb, |i| matches!(i, Inst::Cpi(_)));
        let cpi_total = count_ops(&cpi, |i| matches!(i, Inst::Cpi(_)));
        assert!(
            sb_total > cpi_total,
            "softbound {sb_total} must exceed cpi {cpi_total}"
        );
    }

    #[test]
    fn memcpy_of_sensitive_struct_uses_safe_variant() {
        let (m, stats) = instrument(
            r#"
            struct cb { void (*f)(int); int pad; };
            void h(int x) { print_int(x); }
            int main() {
                struct cb a;
                struct cb b;
                a.f = h;
                memcpy((void*)&b, (void*)&a, sizeof(struct cb));
                b.f(3);
                return 0;
            }
            "#,
            Mode::Cpi,
        );
        assert_eq!(
            count_ops(&m, |i| matches!(i, Inst::Cpi(CpiOp::SafeMemcpy { .. }))),
            1
        );
        assert_eq!(stats.iter().map(|s| s.safe_mem_fns).sum::<u64>(), 1);
    }

    #[test]
    fn memcpy_of_plain_ints_stays_plain() {
        let (m, _) = instrument(
            r#"
            int main() {
                int a[8];
                int b[8];
                a[0] = 1;
                memcpy((void*)b, (void*)a, 32);
                print_int(b[0]);
                return 0;
            }
            "#,
            Mode::Cpi,
        );
        assert_eq!(
            count_ops(&m, |i| matches!(i, Inst::Cpi(CpiOp::SafeMemcpy { .. }))),
            0
        );
    }

    #[test]
    fn safe_stack_accesses_are_not_instrumented() {
        // A function-pointer *local* lives on the safe stack; its
        // accesses are already safe and need no safe-store traffic.
        let (m, _) = instrument(
            r#"
            void h(int x) { print_int(x); }
            int main() {
                void (*f)(int) = h;
                f(1);
                return 0;
            }
            "#,
            Mode::Cpi,
        );
        // Only the FnCheck remains.
        assert_eq!(
            count_ops(&m, |i| matches!(i, Inst::Cpi(CpiOp::PtrStore { .. }))),
            0
        );
        assert_eq!(
            count_ops(&m, |i| matches!(i, Inst::Cpi(CpiOp::FnCheck { .. }))),
            1
        );
    }
}
