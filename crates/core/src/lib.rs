//! # levee-core — Code-Pointer Integrity, Code-Pointer Separation and
//! the Safe Stack
//!
//! The paper's contribution (Kuznetsov et al., *Code-Pointer Integrity*,
//! OSDI 2014), as compiler passes over [`levee_ir`]:
//!
//! * [`sensitivity`] — the static analysis of §3.2.1: the type-based
//!   criterion of Fig. 7, the `char*` string heuristic, and the
//!   cast dataflow refinement;
//! * [`safestack`] — the safe-stack analysis and transformation of
//!   §3.2.4 (return addresses and proven-safe objects to the safe
//!   stack, the rest to a separate unsafe stack);
//! * [`instrument`] — the instrumentation pass of §3.2.2 (safe-store
//!   redirection, bounds checks, indirect-call checks, safe
//!   memcpy/memset variants);
//! * [`driver`] — the `-fcpi` / `-fcps` / `-fstack-protector-safe`
//!   entry points and build statistics (Table 2's FNUStack / MO);
//! * [`session`] — the embedding front door: [`Session`] builds a
//!   protected program once, keeps a resident machine, and serves
//!   repeated runs from it;
//! * [`pool`] — [`SessionPool`]: the multi-worker counterpart, fanning
//!   batches across N resident machines forked from one shared build
//!   and copy-on-write boot snapshot, bit-identical to serial serving.
//!
//! ## Example: build once, run many times
//!
//! ```
//! use levee_core::{BuildConfig, Session};
//!
//! let src = r#"
//!     void greet(int x) { print_int(x); }
//!     void (*cb)(int);
//!     int main() { cb = greet; cb(42); return 0; }
//! "#;
//! let mut session = Session::builder()
//!     .source(src)
//!     .name("demo")
//!     .protection(BuildConfig::Cpi)
//!     .build()
//!     .expect("valid mini-C");
//! for report in session.run_batch([b"", b""]) {
//!     assert!(report.success());
//!     assert_eq!(report.output, "42");
//! }
//! ```

pub mod driver;
pub mod instrument;
pub mod pac;
pub mod pool;
pub mod promote;
pub mod safestack;
pub mod sensitivity;
pub mod session;
pub mod stats;

pub use driver::{build_module, build_source, BuildConfig, Built};
pub use pool::{SessionPool, SessionPoolBuilder};
pub use sensitivity::{FnFlow, Mode, Sensitivity};
pub use session::{
    json_f64, json_str, LeveeError, RunReport, Session, SessionBuilder, DEFAULT_SEED,
};
pub use stats::{BuildStats, FuncInstrStats};
