//! The pointer-authentication pass (`-fpac` / `-fpac-tight`).
//!
//! Where CPI/CPS ([`crate::instrument`]) *segregate* sensitive pointers
//! into the safe store, PAC seals them **in place**: a code pointer
//! crossing into regular memory is signed (`PacSign` — a MAC tag over
//! its address bits packed into the word's spare high bits) and every
//! code pointer read back out of regular memory is authenticated
//! (`PacAuth` — tag recomputed, compared and stripped). Registers
//! always hold raw pointers; only the memory image changes, so the
//! V-value layout, the safe store and the loader's address space are
//! untouched.
//!
//! The rewrite is type-directed and minimal:
//!
//! * `Store` of an [`Ty::FnPtr`]-typed value to [`MemSpace::Regular`]
//!   memory → sign into a fresh temporary, store the sealed word;
//! * `Load` of an [`Ty::FnPtr`]-typed value from regular memory → load
//!   into a fresh temporary, authenticate into the original dest.
//!
//! Safe-stack slots stay raw (they are spill storage the attacker
//! cannot reach), and universal (`void*`/`char*`) traffic is left
//! unsealed — the known PAC-family compromise: a code pointer laundered
//! through `void*` memory travels unsigned, exactly like the uncovered
//! cases §6 of the paper tabulates for CFI-family defenses.
//!
//! The two modes differ only in the MAC's binding context:
//!
//! * **Plain** (`-fpac`): context 0 — the tag binds the pointer value
//!   under the per-machine key. Any sealed word authenticates at *any*
//!   slot, so an attacker who can read one sealed word and write it
//!   elsewhere mounts a **substitution attack**
//!   (`levee_ripe::template` builds exactly that).
//! * **Tight** (`-fpac-tight`): the context is the address of the slot
//!   being written/read (PACTight-style per-location binding) — a
//!   sealed word replayed at a different slot fails authentication.
//!
//! The machine applies the same discipline to the code pointers *it*
//! writes to regular memory: return addresses in frame slots and
//! setjmp tokens in jmp_bufs (see `push_frame`/`do_return` and the
//! setjmp/longjmp paths in `levee_vm`'s `machine/control.rs`), with
//! identical context rules. Costs are modeled per op
//! (`CostModel::pac_sign`/`pac_auth`) and counted in
//! `ExecStats::pac_signs`/`pac_auths`.
//!
//! The pass runs after promotion, instead of (never alongside) the
//! CPI/CPS instrumentation — see `BuildConfig::build_module` in
//! [`crate::driver`].

use levee_ir::prelude::*;

/// What the PAC rewrite did to a module, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacInstrStats {
    /// `PacSign` ops inserted (code-pointer stores sealed).
    pub signs: u64,
    /// `PacAuth` ops inserted (code-pointer loads authenticated).
    pub auths: u64,
}

/// Rewrites every function of `module` so fn-pointer-typed regular
/// loads/stores authenticate/sign; `tight` selects per-slot context
/// binding (`-fpac-tight`).
pub fn apply(module: &mut Module, tight: bool) -> PacInstrStats {
    let mut stats = PacInstrStats::default();
    for func in &mut module.funcs {
        for bidx in 0..func.blocks.len() {
            let old = std::mem::take(&mut func.blocks[bidx].insts);
            let mut new = Vec::with_capacity(old.len() + 4);
            for inst in old {
                match inst {
                    Inst::Store {
                        ptr,
                        value,
                        ty: ty @ Ty::FnPtr(_),
                        space: MemSpace::Regular,
                    } => {
                        let sealed = func.new_local(ty.clone());
                        new.push(Inst::Cpi(CpiOp::PacSign {
                            dest: sealed,
                            value,
                            ctx: pac_ctx(tight, ptr),
                        }));
                        new.push(Inst::Store {
                            ptr,
                            value: Operand::Value(sealed),
                            ty,
                            space: MemSpace::Regular,
                        });
                        stats.signs += 1;
                    }
                    Inst::Load {
                        dest,
                        ptr,
                        ty: ty @ Ty::FnPtr(_),
                        space: MemSpace::Regular,
                    } => {
                        let raw = func.new_local(ty.clone());
                        new.push(Inst::Load {
                            dest: raw,
                            ptr,
                            ty,
                            space: MemSpace::Regular,
                        });
                        new.push(Inst::Cpi(CpiOp::PacAuth {
                            dest,
                            value: Operand::Value(raw),
                            ctx: pac_ctx(tight, ptr),
                        }));
                        stats.auths += 1;
                    }
                    other => new.push(other),
                }
            }
            func.blocks[bidx].insts = new;
        }
    }
    stats
}

/// The binding-context operand for a slot addressed by `ptr`.
fn pac_ctx(tight: bool, ptr: Operand) -> Operand {
    if tight {
        ptr
    } else {
        Operand::Const(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levee_minic::compile;

    fn pac(src: &str, tight: bool) -> (Module, PacInstrStats) {
        let mut m = compile(src, "t").unwrap();
        crate::promote::promote_scalars(&mut m);
        let stats = apply(&mut m, tight);
        levee_ir::verify::assert_valid(&m);
        (m, stats)
    }

    const FNPTR_GLOBAL: &str = r#"
        void handler(int x) { print_int(x); }
        void (*h)(int);
        int main() { h = handler; h(1); return 0; }
    "#;

    #[test]
    fn fnptr_global_traffic_is_signed_and_authenticated() {
        let (m, stats) = pac(FNPTR_GLOBAL, false);
        assert_eq!(stats.signs, 1);
        assert_eq!(stats.auths, 1);
        let signs = m
            .funcs
            .iter()
            .flat_map(|f| f.iter_insts())
            .filter(|i| matches!(i, Inst::Cpi(CpiOp::PacSign { .. })))
            .count();
        assert_eq!(signs, 1);
    }

    #[test]
    fn plain_binds_to_constant_zero_context() {
        let (m, _) = pac(FNPTR_GLOBAL, false);
        for f in &m.funcs {
            for i in f.iter_insts() {
                if let Inst::Cpi(CpiOp::PacSign { ctx, .. } | CpiOp::PacAuth { ctx, .. }) = i {
                    assert_eq!(*ctx, Operand::Const(0));
                }
            }
        }
    }

    #[test]
    fn tight_binds_to_the_slot_address() {
        let (m, _) = pac(FNPTR_GLOBAL, true);
        for f in &m.funcs {
            for i in f.iter_insts() {
                if let Inst::Cpi(CpiOp::PacSign { ctx, .. } | CpiOp::PacAuth { ctx, .. }) = i {
                    assert!(matches!(ctx, Operand::Value(_)), "ctx must be the slot");
                }
            }
        }
    }

    #[test]
    fn int_programs_are_untouched() {
        let (m, stats) = pac(
            r#"
            int g;
            int main() { g = 4; print_int(g); return 0; }
            "#,
            false,
        );
        assert_eq!(stats, PacInstrStats::default());
        let cpi = m
            .funcs
            .iter()
            .flat_map(|f| f.iter_insts())
            .filter(|i| matches!(i, Inst::Cpi(_)))
            .count();
        assert_eq!(cpi, 0);
    }
}
