//! `SessionPool` — sharded multi-worker serving over one shared build
//! and copy-on-write boot snapshot.
//!
//! CPI's runtime cost is paid per-request, so the honest scaling story
//! for the paper's webserver claim (§5.3) is requests-per-second
//! across cores. Nothing in the simulation is shared between two
//! machines *except* the immutable program image, and PR 7's
//! copy-on-write snapshot pages are already the natural cross-machine
//! substrate: the pool compiles and protects the program **once**
//! (one `Arc`-shared [`crate::driver::Built`]), boots one prototype
//! machine, and forks it into N resident workers whose snapshot pages
//! stay `Arc`-shared until a request dirties them. Each worker
//! recycles per-request via `levee_vm::ResetMode::Snapshot`, paying
//! only for its own dirt — the fork-per-request serving model, without
//! the fork *or* the per-worker boot.
//!
//! Determinism is the point, not an accident: every request is served
//! from a pristine post-boot machine and stamped with its *own*
//! recycle cost ([`Session::run_recycled`]), so a request's
//! [`RunReport`] — status, output, every [`levee_vm::ExecStats`]
//! counter, reset stats — is a pure function of the request. Sharding
//! across 1, 2 or 4 workers, or serving serially with
//! [`Session::run_batch`], produces bit-identical reports in any
//! scheduling interleave (pinned by the `pool` proptest suite).
//!
//! ```
//! use levee_core::{BuildConfig, SessionPool};
//!
//! let mut pool = SessionPool::builder()
//!     .source("int main() { char b[16]; print_int(read_input(b, 15)); return 0; }")
//!     .protection(BuildConfig::Cpi)
//!     .workers(2)
//!     .build()
//!     .expect("valid mini-C");
//! let reports = pool.run_batch([b"ab".as_slice(), b"cdef", b""]);
//! assert_eq!(reports.len(), 3);
//! assert_eq!(reports[1].output, "4");
//! ```

use std::sync::mpsc;
use std::thread::JoinHandle;

use levee_vm::ResetStats;

use crate::session::{LeveeError, RunReport, Session, SessionBuilder};

/// One unit of pool work: the request's position in its batch, the
/// input bytes, and the channel the worker answers on.
type Job = (usize, Vec<u8>, mpsc::Sender<(usize, RunReport)>);

/// One resident worker: a dedicated OS thread owning a forked
/// [`Session`], fed over a private channel (dropping the sender is the
/// shutdown signal).
struct Worker {
    tx: Option<mpsc::Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of resident machines serving batches of requests in
/// parallel over one shared build — the multi-worker counterpart of
/// [`Session::run_batch`].
///
/// Requests are sharded deterministically (request `i` goes to worker
/// `i mod N`) and reports are reassembled in input order, so the
/// result vector is positionally identical to the serial one. See the
/// module docs for the memory model and the determinism contract.
pub struct SessionPool {
    workers: Vec<Worker>,
    name: String,
    /// Per-worker recycle cost of the last request each worker served
    /// (all-zero for a worker that has not served yet).
    last_reset: Vec<ResetStats>,
}

impl SessionPool {
    /// Starts a fluent builder (a [`SessionBuilder`] plus
    /// [`SessionPoolBuilder::workers`]).
    pub fn builder() -> SessionPoolBuilder {
        SessionPoolBuilder {
            inner: Session::builder(),
            workers: 1,
        }
    }

    /// Builds a pool of `workers` resident machines around an
    /// already-built prototype session.
    ///
    /// The prototype is precompiled (so every fork shares the one-time
    /// bytecode-compilation cost), forked `workers - 1` times — each
    /// fork holds a strong reference to the same `Arc`-shared build
    /// and shares the boot snapshot's pages copy-on-write — and the
    /// prototype itself becomes worker 0. `workers` is clamped to at
    /// least 1.
    pub fn with_prototype(mut prototype: Session, workers: usize) -> SessionPool {
        let n = workers.max(1);
        prototype.precompile();
        let name = prototype.name().to_string();
        let mut sessions: Vec<Session> = (1..n).map(|_| prototype.fork()).collect();
        sessions.insert(0, prototype);
        let workers = sessions
            .into_iter()
            .enumerate()
            .map(|(i, mut session)| {
                let (tx, rx) = mpsc::channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("levee-worker-{i}"))
                    .spawn(move || {
                        while let Ok((idx, input, out)) = rx.recv() {
                            let report = session.run_recycled(&input);
                            // A dropped receiver means the batch was
                            // abandoned; keep serving later batches.
                            let _ = out.send((idx, report));
                        }
                    })
                    .expect("spawning a pool worker thread failed");
                Worker {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        SessionPool {
            workers,
            name,
            last_reset: vec![ResetStats::default(); n],
        }
    }

    /// Serves every input and returns the reports in input order —
    /// the parallel counterpart of [`Session::run_batch`], bit-
    /// identical to it report for report (status, output, every
    /// `ExecStats` counter, reset stats) at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread died (a panic inside the VM — a bug,
    /// not a program trap: traps are ordinary [`RunReport`]s).
    pub fn run_batch<I, B>(&mut self, inputs: I) -> Vec<RunReport>
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let n_workers = self.workers.len();
        let (results_tx, results_rx) = mpsc::channel();
        let mut n = 0usize;
        for (i, input) in inputs.into_iter().enumerate() {
            let tx = self.workers[i % n_workers]
                .tx
                .as_ref()
                .expect("pool workers are live until drop");
            tx.send((i, input.as_ref().to_vec(), results_tx.clone()))
                .expect("pool worker thread died");
            n = i + 1;
        }
        drop(results_tx);
        let mut out: Vec<Option<RunReport>> = vec![None; n];
        for _ in 0..n {
            let (i, report) = results_rx
                .recv()
                .expect("pool worker thread died mid-batch");
            // Per-sender channel order makes the final write for each
            // worker its last-served request.
            self.last_reset[i % n_workers] = report.reset;
            out[i] = Some(report);
        }
        out.into_iter()
            .map(|r| r.expect("every request is answered exactly once"))
            .collect()
    }

    /// Number of resident workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The program name (from the builder).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-worker recycle cost of the last request each worker served:
    /// `used_snapshot`, pages dirtied, bytes copied back. All-zero for
    /// workers that have not served a request yet.
    pub fn worker_reset_stats(&self) -> &[ResetStats] {
        &self.last_reset
    }
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        // Closing each job channel ends that worker's receive loop;
        // joining bounds teardown and surfaces worker panics.
        for w in &mut self.workers {
            w.tx.take();
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Fluent constructor for [`SessionPool`]: every program/VM knob of
/// [`SessionBuilder`], plus the worker count.
pub struct SessionPoolBuilder {
    inner: SessionBuilder,
    workers: usize,
}

impl SessionPoolBuilder {
    /// Number of resident worker machines (default 1; clamped to at
    /// least 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// See [`SessionBuilder::source`].
    pub fn source(mut self, src: &str) -> Self {
        self.inner = self.inner.source(src);
        self
    }

    /// See [`SessionBuilder::name`].
    pub fn name(mut self, name: &str) -> Self {
        self.inner = self.inner.name(name);
        self
    }

    /// See [`SessionBuilder::module`].
    pub fn module(mut self, module: levee_ir::Module) -> Self {
        self.inner = self.inner.module(module);
        self
    }

    /// See [`SessionBuilder::protection`].
    pub fn protection(mut self, config: crate::driver::BuildConfig) -> Self {
        self.inner = self.inner.protection(config);
        self
    }

    /// See [`SessionBuilder::store`].
    pub fn store(mut self, store: levee_vm::StoreKind) -> Self {
        self.inner = self.inner.store(store);
        self
    }

    /// See [`SessionBuilder::engine`].
    pub fn engine(mut self, engine: levee_vm::Engine) -> Self {
        self.inner = self.inner.engine(engine);
        self
    }

    /// See [`SessionBuilder::fusion`].
    pub fn fusion(mut self, fusion: bool) -> Self {
        self.inner = self.inner.fusion(fusion);
        self
    }

    /// See [`SessionBuilder::seed`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// See [`SessionBuilder::fuel`].
    pub fn fuel(mut self, max_insts: u64) -> Self {
        self.inner = self.inner.fuel(max_insts);
        self
    }

    /// See [`SessionBuilder::vm_config`].
    pub fn vm_config(mut self, config: levee_vm::VmConfig) -> Self {
        self.inner = self.inner.vm_config(config);
        self
    }

    /// See [`SessionBuilder::configure`].
    pub fn configure(mut self, f: impl FnOnce(&mut levee_vm::VmConfig) + 'static) -> Self {
        self.inner = self.inner.configure(f);
        self
    }

    /// Compiles and protects the program once, then boots the workers
    /// (see [`SessionPool::with_prototype`]).
    pub fn build(self) -> Result<SessionPool, LeveeError> {
        let prototype = self.inner.build()?;
        Ok(SessionPool::with_prototype(prototype, self.workers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BuildConfig;

    const SRC: &str = r#"
        void handler(int x) { print_int(x); }
        void (*h)(int);
        int main() {
            h = handler;
            char buf[16];
            long n = read_input(buf, 15);
            h((int)n);
            return 0;
        }
    "#;

    fn inputs() -> Vec<Vec<u8>> {
        (0..10u8).map(|i| vec![b'x'; i as usize]).collect()
    }

    /// The determinism contract in miniature (the `pool` proptest
    /// generalizes it): pool reports are bit-identical to serial
    /// `run_batch` reports at every worker count, reset stats
    /// included. Also part of the Miri CI subset: full pool lifecycle
    /// — fork, cross-thread serving, teardown — under the aliasing
    /// checker.
    #[test]
    fn pool_reports_match_serial_at_every_worker_count() {
        let build = || {
            Session::builder()
                .source(SRC)
                .protection(BuildConfig::Cpi)
                .build()
                .expect("builds")
        };
        let serial = build().run_batch(inputs());
        for workers in [1, 2, 4] {
            let mut pool = SessionPool::with_prototype(build(), workers);
            let pooled = pool.run_batch(inputs());
            assert_eq!(pooled.len(), serial.len());
            for (s, p) in serial.iter().zip(&pooled) {
                assert_eq!(s.status, p.status);
                assert_eq!(s.output, p.output);
                assert_eq!(s.exec, p.exec);
                assert_eq!(s.reset, p.reset);
            }
        }
    }

    #[test]
    fn sharding_is_round_robin_and_reports_keep_input_order() {
        let mut pool = SessionPool::builder()
            .source(SRC)
            .workers(3)
            .build()
            .expect("builds");
        assert_eq!(pool.workers(), 3);
        let reports = pool.run_batch(inputs());
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.output, format!("{i}"), "report {i} out of order");
        }
        // Every worker served ≥ 3 of the 10 requests and recorded the
        // recycle cost of its last one.
        for stats in pool.worker_reset_stats() {
            assert!(stats.used_snapshot);
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let mut pool = SessionPool::builder()
            .source(SRC)
            .workers(0)
            .build()
            .expect("builds");
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run_batch([b"ab"]).len(), 1);
    }

    #[test]
    fn empty_batches_and_sequential_batches_work() {
        let mut pool = SessionPool::builder()
            .source(SRC)
            .workers(2)
            .build()
            .expect("builds");
        assert!(pool.run_batch(Vec::<Vec<u8>>::new()).is_empty());
        let a = pool.run_batch([b"abc".as_slice()]);
        let b = pool.run_batch([b"abc".as_slice()]);
        assert_eq!(a[0].exec, b[0].exec, "pool reuse is bit-identical");
    }
}
