//! Scalar promotion (mem2reg-lite).
//!
//! Levee's analyses run on LLVM IR *after* mem2reg: scalar locals whose
//! address never escapes live in SSA registers, not memory. Our
//! frontend lowers clang -O0 style (every local gets a stack slot), so
//! without this pass the baseline would be inflated with loads/stores
//! no real compiler emits — diluting every instrumentation-overhead
//! measurement and polluting the MO fractions of Table 2.
//!
//! The transformation is sound in this non-SSA register IR because
//! registers are mutable cells: a promoted alloca simply becomes a
//! dedicated register, stores become register copies, loads become
//! copies out. Word-wide copies use `Add cell, 0`, which the VM's
//! based-on propagation rule treats as pointer arithmetic — so
//! provenance metadata survives promotion exactly like it survives in
//! real registers. Stores to narrow slots (`char`, `short`, `int`)
//! instead use a truncating `IntToInt` cast, reproducing the width
//! truncation the memory store performed.
//!
//! Promotion runs for *every* build configuration, including the
//! vanilla baseline, so comparisons stay fair.

use std::collections::{HashMap, HashSet};

use levee_ir::prelude::*;

/// Promotes eligible scalar allocas in every function of `module`;
/// returns the number of allocas promoted.
pub fn promote_scalars(module: &mut Module) -> usize {
    let mut total = 0;
    for func in &mut module.funcs {
        total += promote_in_function(func);
    }
    total
}

fn promote_in_function(func: &mut Function) -> usize {
    // Candidates: single-element scalar allocas.
    let mut candidates: HashMap<ValueId, Ty> = HashMap::new();
    for inst in func.iter_insts() {
        if let Inst::Alloca {
            dest, ty, count: 1, ..
        } = inst
        {
            if ty.is_scalar() {
                candidates.insert(*dest, ty.clone());
            }
        }
    }
    // Disqualify any candidate whose register is used as anything other
    // than the direct address of a load/store (escape analysis, same
    // shape as the safe-stack criterion but stricter).
    let mut escaped: HashSet<ValueId> = HashSet::new();
    for inst in func.iter_insts() {
        match inst {
            Inst::Alloca { .. } => {}
            Inst::Load { ptr, .. } => {
                let _ = ptr; // address use is fine
            }
            Inst::Store { value, .. } => {
                if let Operand::Value(v) = value {
                    if candidates.contains_key(v) {
                        escaped.insert(*v);
                    }
                }
            }
            other => {
                for op in other.operands() {
                    if let Operand::Value(v) = op {
                        if candidates.contains_key(&v) {
                            escaped.insert(v);
                        }
                    }
                }
            }
        }
    }
    for (_, block) in func.iter_blocks() {
        if let Terminator::Ret(Some(Operand::Value(v))) = &block.term {
            escaped.insert(*v);
        }
    }
    for v in &escaped {
        candidates.remove(v);
    }
    if candidates.is_empty() {
        return 0;
    }

    // One mutable register cell per promoted slot.
    let cells: HashMap<ValueId, ValueId> = candidates
        .iter()
        .map(|(slot, ty)| (*slot, func.new_local(ty.clone())))
        .collect();

    for block in &mut func.blocks {
        let old = std::mem::take(&mut block.insts);
        let mut new = Vec::with_capacity(old.len());
        for inst in old {
            match inst {
                Inst::Alloca { dest, .. } if cells.contains_key(&dest) => {
                    // The slot no longer exists; drop the alloca.
                }
                Inst::Store {
                    ptr: Operand::Value(slot),
                    value,
                    ..
                } if cells.contains_key(&slot) => {
                    // A memory store truncates to the slot's width; the
                    // register cell must reproduce that, or `char c =
                    // 300` would keep all 64 bits after promotion. Only
                    // narrow integers need it — for word-wide scalars
                    // (longs, pointers) the copy is an `Add 0`, which
                    // the VM's based-on rule treats as pointer
                    // arithmetic, so provenance metadata survives.
                    let ty = &candidates[&slot];
                    if matches!(ty, Ty::I8 | Ty::I16 | Ty::I32) {
                        new.push(Inst::Cast {
                            dest: cells[&slot],
                            kind: CastKind::IntToInt,
                            value,
                            to: ty.clone(),
                        });
                    } else {
                        new.push(Inst::Bin {
                            dest: cells[&slot],
                            op: BinOp::Add,
                            lhs: value,
                            rhs: Operand::Const(0),
                        });
                    }
                }
                Inst::Load {
                    dest,
                    ptr: Operand::Value(slot),
                    ..
                } if cells.contains_key(&slot) => {
                    new.push(Inst::Bin {
                        dest,
                        op: BinOp::Add,
                        lhs: Operand::Value(cells[&slot]),
                        rhs: Operand::Const(0),
                    });
                }
                other => new.push(other),
            }
        }
        block.insts = new;
    }
    candidates.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use levee_minic::compile;

    fn mem_ops(m: &Module) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| f.iter_insts())
            .filter(|i| i.is_memory_op())
            .count()
    }

    #[test]
    fn promotes_loop_counters_away() {
        let src = r#"
            int main() {
                long acc = 0;
                long i;
                for (i = 0; i < 100; i = i + 1) { acc = acc + i; }
                print_int(acc);
                return 0;
            }
        "#;
        let mut m = compile(src, "t").unwrap();
        let before = mem_ops(&m);
        let promoted = promote_scalars(&mut m);
        levee_ir::verify::assert_valid(&m);
        assert!(promoted >= 2, "acc and i should promote");
        assert!(mem_ops(&m) < before);
        let mut session = crate::Session::builder().module(m).build().expect("builds");
        let out = session.run_ok(b"").expect("runs cleanly");
        assert_eq!(out.output, "4950");
    }

    #[test]
    fn address_taken_locals_are_not_promoted() {
        let src = r#"
            void bump(long* p) { *p = *p + 1; }
            int main() {
                long x = 41;
                bump(&x);
                print_int(x);
                return 0;
            }
        "#;
        let mut m = compile(src, "t").unwrap();
        promote_scalars(&mut m);
        // x's alloca must survive in main (its address escapes).
        let main = m.func(m.func_by_name("main").unwrap());
        assert!(main.iter_insts().any(|i| matches!(i, Inst::Alloca { .. })));
        let mut session = crate::Session::builder().module(m).build().expect("builds");
        assert_eq!(session.run(b"").output, "42");
    }

    #[test]
    fn pointer_provenance_survives_promotion() {
        // A function pointer stored in a promoted local must still pass
        // FnCheck under CPI (metadata rides in the register cell).
        let src = r#"
            void h(int x) { print_int(x); }
            int main() {
                void (*f)(int) = h;
                f(9);
                return 0;
            }
        "#;
        let mut session = crate::Session::builder()
            .source(src)
            .name("t")
            .protection(crate::BuildConfig::Cpi)
            .build()
            .unwrap();
        let out = session.run_ok(b"").expect("runs cleanly under CPI");
        assert_eq!(out.output, "9");
    }

    #[test]
    fn narrow_promoted_locals_still_truncate_at_stores() {
        // `char c = 300` must print 44 whether c lives in memory (store
        // truncates to the slot width) or in a promoted register cell
        // (the cast reproduces it). Caught by the Session port of the
        // end-to-end suite, which routed these programs through the
        // build pipeline for the first time.
        let src = r#"
            int main() {
                char c = 300;
                print_int(c);
                int i = 4294967298;
                print_int(i == 2);
                return 0;
            }
        "#;
        let mut m = compile(src, "t").unwrap();
        let promoted = promote_scalars(&mut m);
        levee_ir::verify::assert_valid(&m);
        assert!(promoted >= 2, "c and i should promote");
        let mut session = crate::Session::builder().module(m).build().expect("builds");
        let out = session.run_ok(b"").expect("runs");
        assert_eq!(out.output, "44\n1");
    }

    #[test]
    fn arrays_and_structs_stay_in_memory() {
        let src = r#"
            int main() {
                int a[4];
                a[0] = 5;
                print_int(a[0]);
                return 0;
            }
        "#;
        let mut m = compile(src, "t").unwrap();
        let promoted = promote_in_function(&mut m.funcs[0]);
        assert_eq!(promoted, 0);
    }
}
