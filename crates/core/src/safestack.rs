//! The safe-stack analysis and transformation (§3.2.4).
//!
//! Per function, every stack object (alloca) is classified:
//!
//! * **safe** — provably accessed only via direct, statically-in-bounds
//!   loads and stores through the alloca's own register (scalars,
//!   spilled temporaries). These move to the safe stack in the safe
//!   region, together with the return address, and their accesses are
//!   retagged [`MemSpace::SafeStack`] — no runtime checks, attacker
//!   unreachable.
//! * **unsafe** — address escapes (passed to calls, stored, cast,
//!   involved in pointer arithmetic) or the object is an array indexed
//!   dynamically. These move to the separate unsafe stack in regular
//!   memory.
//!
//! The fraction of functions that end up needing an unsafe stack frame
//! is the paper's FNUStack statistic (Table 2, <25% on SPEC).

use std::collections::HashSet;

use levee_ir::prelude::*;

/// Result of analyzing one function.
#[derive(Debug, Clone, Default)]
pub struct StackAnalysis {
    /// Registers of allocas proven safe.
    pub safe_allocas: HashSet<ValueId>,
    /// Registers of allocas that need the unsafe stack.
    pub unsafe_allocas: HashSet<ValueId>,
}

impl StackAnalysis {
    /// True if the function needs an unsafe stack frame.
    pub fn needs_unsafe_frame(&self) -> bool {
        !self.unsafe_allocas.is_empty()
    }
}

/// Classifies every alloca in `func`.
pub fn analyze(func: &Function) -> StackAnalysis {
    let mut allocas: HashSet<ValueId> = HashSet::new();
    for inst in func.iter_insts() {
        if let Inst::Alloca { dest, .. } = inst {
            allocas.insert(*dest);
        }
    }
    let mut unsafe_set: HashSet<ValueId> = HashSet::new();
    for inst in func.iter_insts() {
        match inst {
            Inst::Alloca { .. } => {}
            // Direct load through the slot register: safe use.
            Inst::Load { ptr, .. } => {
                // The *address* use is safe; nothing to do.
                let _ = ptr;
            }
            // Direct store: address use safe, but storing the alloca's
            // address *as a value* escapes it.
            Inst::Store { value, .. } => {
                if let Operand::Value(v) = value {
                    if allocas.contains(v) {
                        unsafe_set.insert(*v);
                    }
                }
            }
            // Any other use (gep, casts, calls, arithmetic, cpi ops,
            // intrinsics) makes the object unsafe.
            other => {
                for op in other.operands() {
                    if let Operand::Value(v) = op {
                        if allocas.contains(&v) {
                            unsafe_set.insert(v);
                        }
                    }
                }
            }
        }
    }
    // Return values escape too.
    for (_, block) in func.iter_blocks() {
        if let Terminator::Ret(Some(Operand::Value(v))) = &block.term {
            if allocas.contains(v) {
                unsafe_set.insert(*v);
            }
        }
    }
    StackAnalysis {
        safe_allocas: allocas.difference(&unsafe_set).copied().collect(),
        unsafe_allocas: unsafe_set,
    }
}

/// Applies the safe-stack transformation to every function in `module`:
/// tags allocas with their stack, retags accesses to safe slots as
/// [`MemSpace::SafeStack`], and sets `protection.safestack`.
///
/// Returns the number of functions that needed an unsafe frame.
pub fn apply(module: &mut Module) -> usize {
    let mut unsafe_frames = 0;
    for func in &mut module.funcs {
        let analysis = analyze(func);
        if analysis.needs_unsafe_frame() {
            unsafe_frames += 1;
        }
        func.protection.safestack = true;
        for block in &mut func.blocks {
            for inst in &mut block.insts {
                match inst {
                    Inst::Alloca { dest, stack, .. } => {
                        *stack = if analysis.safe_allocas.contains(dest) {
                            StackKind::Safe
                        } else {
                            StackKind::Unsafe
                        };
                    }
                    Inst::Load {
                        ptr: Operand::Value(v),
                        space,
                        ..
                    }
                    | Inst::Store {
                        ptr: Operand::Value(v),
                        space,
                        ..
                    } if analysis.safe_allocas.contains(v) => {
                        *space = MemSpace::SafeStack;
                    }
                    _ => {}
                }
            }
        }
    }
    unsafe_frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use levee_ir::builder::FuncBuilder;

    /// int f(int x) { int y = x; char buf[16]; read_input(buf, 16); return y; }
    fn sample() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![Ty::I32], Ty::I32));
        let y = b.alloca(Ty::I32, 1);
        let p = b.param(0);
        b.store(y, p, Ty::I32);
        let buf = b.alloca(Ty::Array(Box::new(Ty::I8), 16), 1);
        b.intrinsic(Intrinsic::ReadInput, vec![buf.into(), 16.into()], Ty::I64);
        let v = b.load(y, Ty::I32);
        b.ret(Some(v.into()));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn scalar_local_is_safe_buffer_is_unsafe() {
        let m = sample();
        let f = m.func(m.func_by_name("main").unwrap());
        let a = analyze(f);
        assert_eq!(a.safe_allocas.len(), 1);
        assert_eq!(a.unsafe_allocas.len(), 1);
        assert!(a.needs_unsafe_frame());
    }

    #[test]
    fn apply_retags_allocas_and_accesses() {
        let mut m = sample();
        let unsafe_frames = apply(&mut m);
        assert_eq!(unsafe_frames, 1);
        let f = m.func(m.func_by_name("main").unwrap());
        assert!(f.protection.safestack);
        let mut safe_allocas = 0;
        let mut unsafe_allocas = 0;
        let mut safestack_accesses = 0;
        for inst in f.iter_insts() {
            match inst {
                Inst::Alloca {
                    stack: StackKind::Safe,
                    ..
                } => safe_allocas += 1,
                Inst::Alloca {
                    stack: StackKind::Unsafe,
                    ..
                } => unsafe_allocas += 1,
                Inst::Load {
                    space: MemSpace::SafeStack,
                    ..
                }
                | Inst::Store {
                    space: MemSpace::SafeStack,
                    ..
                } => safestack_accesses += 1,
                _ => {}
            }
        }
        assert_eq!(safe_allocas, 1);
        assert_eq!(unsafe_allocas, 1);
        assert_eq!(safestack_accesses, 2); // store y, load y
    }

    #[test]
    fn escaping_via_store_is_unsafe() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let x = b.alloca(Ty::I32, 1);
        let slot = b.alloca(Ty::I32.ptr_to(), 1);
        // &x stored to memory: x escapes.
        b.store(slot, x, Ty::I32.ptr_to());
        b.ret(Some(0.into()));
        m.add_func(b.finish());
        let f = m.func(m.func_by_name("main").unwrap());
        let a = analyze(f);
        assert!(a.unsafe_allocas.contains(&x));
        // `slot` itself is only accessed directly: safe.
        assert!(a.safe_allocas.contains(&slot));
    }

    #[test]
    fn gep_makes_array_unsafe() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let arr = b.alloca(Ty::Array(Box::new(Ty::I64), 8), 1);
        let p = b.gep(arr, 3, Ty::I64, 0);
        b.store(p, 1, Ty::I64);
        b.ret(Some(0.into()));
        m.add_func(b.finish());
        let f = m.func(m.func_by_name("main").unwrap());
        let a = analyze(f);
        assert!(a.unsafe_allocas.contains(&arr));
    }

    #[test]
    fn function_with_only_scalars_needs_no_unsafe_frame() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let x = b.alloca(Ty::I64, 1);
        b.store(x, 5, Ty::I64);
        let v = b.load(x, Ty::I64);
        b.ret(Some(v.into()));
        m.add_func(b.finish());
        let f = m.func(m.func_by_name("main").unwrap());
        assert!(!analyze(f).needs_unsafe_frame());
    }
}
