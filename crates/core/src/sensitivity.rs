//! The CPI sensitivity analysis (§3.2.1).
//!
//! *Type-based criterion* (Fig. 7 of the paper):
//!
//! ```text
//! sensitive int   = false
//! sensitive void* = true            (universal pointers)
//! sensitive f     = true            (code pointers)
//! sensitive p*    = sensitive p
//! sensitive s     = ∨ fields of s   (least fixpoint for recursive s)
//! ```
//!
//! plus `char*` as universal, programmer-annotated `__sensitive` structs,
//! and two refinements implemented in [`FnFlow`]:
//!
//! * the **string heuristic**: `char*` values that demonstrably hold C
//!   strings (assigned string constants, or passed to libc string
//!   functions) are not treated as universal pointers,
//! * the **cast dataflow**: values cast to a sensitive pointer type
//!   within a function are sensitive wherever they are stored or loaded,
//!   even while typed as integers.

use std::collections::{HashMap, HashSet};

use levee_ir::prelude::*;

/// Which enforcement policy drives classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full CPI: code pointers + everything that can reach them.
    Cpi,
    /// CPS: code pointers only (§3.3).
    Cps,
    /// SoftBound baseline: every pointer type is sensitive
    /// (the `sensitive ≡ true` instantiation noted in Appendix A).
    SoftBound,
}

/// Memoizing classifier over a module's type table.
pub struct Sensitivity<'t> {
    types: &'t TypeTable,
    mode: Mode,
    struct_cache: HashMap<StructId, bool>,
}

impl<'t> Sensitivity<'t> {
    /// Creates a classifier for the given mode.
    pub fn new(types: &'t TypeTable, mode: Mode) -> Self {
        Sensitivity {
            types,
            mode,
            struct_cache: HashMap::new(),
        }
    }

    /// The analysis mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Is a *value* of type `ty` sensitive (must its loads/stores go
    /// through the safe pointer store)?
    pub fn value_sensitive(&mut self, ty: &Ty) -> bool {
        match self.mode {
            Mode::SoftBound => ty.is_pointer(),
            Mode::Cps => match ty {
                Ty::FnPtr(_) => true,
                // Universal pointers may hold code pointers at runtime;
                // CPS handles them with runtime-dispatched universal ops.
                t if t.is_universal_pointer() => true,
                _ => false,
            },
            Mode::Cpi => self.ty_sensitive(ty),
        }
    }

    /// Is a *pointer register* of type `ty` sensitive — i.e. must its
    /// dereferences be bounds-checked? (`ty` is the pointer's own type.)
    pub fn deref_needs_check(&mut self, ptr_ty: &Ty) -> bool {
        match self.mode {
            // CPS drops all bounds metadata and checks (§3.3).
            Mode::Cps => false,
            // SoftBound checks every dereference.
            Mode::SoftBound => ptr_ty.is_pointer(),
            Mode::Cpi => match ptr_ty {
                // Dereferencing p accesses *p; the access must be safe
                // whenever the *pointer itself* is sensitive.
                Ty::Ptr(_) | Ty::VoidPtr => self.ty_sensitive(ptr_ty),
                _ => false,
            },
        }
    }

    /// The pure Fig. 7 predicate.
    pub fn ty_sensitive(&mut self, ty: &Ty) -> bool {
        match ty {
            Ty::Void | Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64 => false,
            Ty::FnPtr(_) => true,
            Ty::VoidPtr => true,
            t if t.is_char_ptr() => true, // universal unless the string heuristic applies
            Ty::Ptr(inner) => self.ty_sensitive(inner),
            Ty::Array(elem, _) => self.ty_sensitive(elem),
            Ty::Struct(id) => self.struct_sensitive(*id),
        }
    }

    /// Struct sensitivity: any sensitive field, or annotation. Recursive
    /// structs take the least fixpoint (in-progress structs read false),
    /// so `struct node { int v; struct node* next; }` is insensitive.
    pub fn struct_sensitive(&mut self, id: StructId) -> bool {
        if let Some(v) = self.struct_cache.get(&id) {
            return *v;
        }
        // Least fixpoint: seed with false.
        self.struct_cache.insert(id, false);
        let def = self.types.struct_def(id);
        let result =
            def.annotated_sensitive || def.fields.clone().iter().any(|f| self.ty_sensitive(&f.ty));
        self.struct_cache.insert(id, result);
        result
    }

    /// Is this type a universal pointer whose sensitivity is only known
    /// at runtime (needs the dual-store universal operations)?
    pub fn is_universal(&self, ty: &Ty) -> bool {
        ty.is_universal_pointer()
    }
}

/// Per-function dataflow refinements: string-ness and cast-sensitivity,
/// computed flow-insensitively over the function body.
pub struct FnFlow {
    /// Registers holding provable C strings (string heuristic).
    pub stringy: HashSet<ValueId>,
    /// Registers that are cast to a sensitive pointer type somewhere in
    /// the function (the unsafe-cast dataflow of §3.2.1).
    pub cast_sensitive: HashSet<ValueId>,
}

impl FnFlow {
    /// Analyzes `func` under `sens`.
    pub fn analyze(module: &Module, func: &Function, sens: &mut Sensitivity<'_>) -> FnFlow {
        let mut stringy: HashSet<ValueId> = HashSet::new();
        let mut cast_sensitive: HashSet<ValueId> = HashSet::new();

        // Two rounds make simple chains (copy via cast, then use)
        // converge; the analysis is intentionally flow-insensitive.
        for _ in 0..2 {
            for inst in func.iter_insts() {
                match inst {
                    // String constants are strings.
                    Inst::GlobalAddr { dest, global } => {
                        let g = module.global(*global);
                        if g.read_only && matches!(g.ty, Ty::Array(ref e, _) if **e == Ty::I8) {
                            stringy.insert(*dest);
                        }
                    }
                    // Stack byte buffers are strings, not pointer stores.
                    Inst::Alloca { dest, ty, .. }
                        if (matches!(ty, Ty::Array(e, _) if **e == Ty::I8) || *ty == Ty::I8) =>
                    {
                        stringy.insert(*dest);
                    }
                    // Arguments to / results of libc string functions.
                    Inst::IntrinsicCall { dest, which, args } if which.is_string_fn() => {
                        for a in args {
                            if let Operand::Value(v) = a {
                                stringy.insert(*v);
                            }
                        }
                        if let Some(d) = dest {
                            stringy.insert(*d);
                        }
                    }
                    // String-ness propagates through pointer arithmetic
                    // and pointer-to-pointer casts.
                    Inst::Gep {
                        dest,
                        base: Operand::Value(b),
                        ..
                    } if stringy.contains(b) => {
                        stringy.insert(*dest);
                    }
                    Inst::Cast {
                        dest,
                        kind: CastKind::PtrToPtr,
                        value: Operand::Value(v),
                        to,
                    } => {
                        if stringy.contains(v) {
                            stringy.insert(*dest);
                        }
                        // Cast dataflow: source of a cast *to* a
                        // sensitive type becomes sensitive.
                        if sens.value_sensitive(to) {
                            cast_sensitive.insert(*v);
                        }
                    }
                    Inst::Cast {
                        dest: _,
                        kind: CastKind::IntToPtr,
                        value: Operand::Value(v),
                        to,
                    } if sens.value_sensitive(to) => {
                        cast_sensitive.insert(*v);
                    }
                    _ => {}
                }
            }
        }
        FnFlow {
            stringy,
            cast_sensitive,
        }
    }

    /// Does the string heuristic exempt this `char*`-typed operand?
    pub fn is_string(&self, op: Operand) -> bool {
        matches!(op, Operand::Value(v) if self.stringy.contains(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(f: impl FnOnce(&mut TypeTable)) -> TypeTable {
        let mut t = TypeTable::new();
        f(&mut t);
        t
    }

    fn fnptr() -> Ty {
        Ty::fn_ptr(FnSig::new(vec![Ty::I32], Ty::Void))
    }

    #[test]
    fn fig7_base_cases() {
        let t = TypeTable::new();
        let mut s = Sensitivity::new(&t, Mode::Cpi);
        assert!(!s.ty_sensitive(&Ty::I32));
        assert!(s.ty_sensitive(&Ty::VoidPtr));
        assert!(s.ty_sensitive(&fnptr()));
        assert!(s.ty_sensitive(&Ty::I8.ptr_to())); // char* is universal
        assert!(!s.ty_sensitive(&Ty::I32.ptr_to()));
        assert!(!s.ty_sensitive(&Ty::I32.ptr_to().ptr_to()));
    }

    #[test]
    fn pointer_rule_is_recursive() {
        let t = TypeTable::new();
        let mut s = Sensitivity::new(&t, Mode::Cpi);
        // fnptr* and fnptr** are sensitive (they reach code pointers).
        assert!(s.ty_sensitive(&fnptr().ptr_to()));
        assert!(s.ty_sensitive(&fnptr().ptr_to().ptr_to()));
    }

    #[test]
    fn struct_with_fnptr_field_is_sensitive() {
        let t = table_with(|t| {
            t.define_struct("ops", vec![("x".into(), Ty::I32), ("h".into(), fnptr())]);
            t.define_struct("plain", vec![("x".into(), Ty::I32)]);
        });
        let ops = t.struct_by_name("ops").unwrap();
        let plain = t.struct_by_name("plain").unwrap();
        let mut s = Sensitivity::new(&t, Mode::Cpi);
        assert!(s.struct_sensitive(ops));
        assert!(!s.struct_sensitive(plain));
        // Pointers to sensitive structs are sensitive (vtable idiom).
        assert!(s.ty_sensitive(&Ty::Struct(ops).ptr_to()));
        assert!(!s.ty_sensitive(&Ty::Struct(plain).ptr_to()));
    }

    #[test]
    fn recursive_struct_takes_least_fixpoint() {
        let mut t = TypeTable::new();
        let node = t.define_struct("node", vec![("v".into(), Ty::I64)]);
        t.redefine_struct(
            node,
            vec![
                ("v".into(), Ty::I64),
                ("next".into(), Ty::Struct(node).ptr_to()),
            ],
        );
        let mut s = Sensitivity::new(&t, Mode::Cpi);
        assert!(!s.struct_sensitive(node));
    }

    #[test]
    fn recursive_struct_with_code_pointer_is_sensitive() {
        let mut t = TypeTable::new();
        let node = t.define_struct("cbnode", vec![]);
        t.redefine_struct(
            node,
            vec![
                ("cb".into(), fnptr()),
                ("next".into(), Ty::Struct(node).ptr_to()),
            ],
        );
        let mut s = Sensitivity::new(&t, Mode::Cpi);
        assert!(s.struct_sensitive(node));
    }

    #[test]
    fn annotated_struct_is_sensitive_without_code_pointers() {
        let mut t = TypeTable::new();
        t.define_struct_ext(
            "ucred",
            vec![("uid".into(), Ty::I32), ("gid".into(), Ty::I32)],
            true,
        );
        let id = t.struct_by_name("ucred").unwrap();
        let mut s = Sensitivity::new(&t, Mode::Cpi);
        assert!(s.struct_sensitive(id));
    }

    #[test]
    fn cps_mode_only_covers_code_pointers() {
        let t = table_with(|t| {
            t.define_struct("ops", vec![("h".into(), fnptr())]);
        });
        let ops = t.struct_by_name("ops").unwrap();
        let mut s = Sensitivity::new(&t, Mode::Cps);
        assert!(s.value_sensitive(&fnptr()));
        assert!(s.value_sensitive(&Ty::VoidPtr)); // universal, runtime-decided
                                                  // Pointers to code pointers are NOT protected under CPS.
        assert!(!s.value_sensitive(&fnptr().ptr_to()));
        assert!(!s.value_sensitive(&Ty::Struct(ops).ptr_to()));
        // And CPS never bounds-checks.
        assert!(!s.deref_needs_check(&fnptr().ptr_to()));
    }

    #[test]
    fn softbound_mode_covers_all_pointers() {
        let t = TypeTable::new();
        let mut s = Sensitivity::new(&t, Mode::SoftBound);
        assert!(s.value_sensitive(&Ty::I32.ptr_to()));
        assert!(s.deref_needs_check(&Ty::I32.ptr_to()));
        assert!(!s.value_sensitive(&Ty::I64));
    }

    #[test]
    fn deref_check_rules_cpi() {
        let t = TypeTable::new();
        let mut s = Sensitivity::new(&t, Mode::Cpi);
        assert!(s.deref_needs_check(&fnptr().ptr_to()));
        assert!(s.deref_needs_check(&Ty::VoidPtr));
        assert!(!s.deref_needs_check(&Ty::I32.ptr_to()));
        assert!(!s.deref_needs_check(&Ty::I64));
    }

    #[test]
    fn string_heuristic_flags_literals_and_str_args() {
        use levee_ir::builder::FuncBuilder;
        let mut m = Module::new("t");
        m.add_string("lit", "hello");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let lit = m.global_by_name("lit").unwrap();
        let sptr = b.global_addr(lit, Ty::I8.ptr_to());
        let buf = b.alloca(Ty::Array(Box::new(Ty::I8), 16), 1);
        b.intrinsic(
            Intrinsic::Strcpy,
            vec![buf.into(), sptr.into()],
            Ty::I8.ptr_to(),
        );
        let other = b.alloca(Ty::I64, 1); // not a string
        b.ret(Some(0.into()));
        let f = b.finish();
        m.add_func(f);
        let func = m.func(m.func_by_name("main").unwrap());
        let mut sens = Sensitivity::new(&m.types, Mode::Cpi);
        let flow = FnFlow::analyze(&m, func, &mut sens);
        assert!(flow.is_string(sptr.into()));
        assert!(flow.is_string(buf.into()));
        assert!(!flow.is_string(other.into()));
    }

    #[test]
    fn cast_dataflow_marks_sources() {
        use levee_ir::builder::FuncBuilder;
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let raw = b.alloca(Ty::I64, 1);
        let as_int = b.cast(CastKind::PtrToInt, raw, Ty::I64);
        let _fn = b.cast(CastKind::IntToPtr, as_int, fnptr());
        b.ret(Some(0.into()));
        m.add_func(b.finish());
        let func = m.func(m.func_by_name("main").unwrap());
        let mut sens = Sensitivity::new(&m.types, Mode::Cpi);
        let flow = FnFlow::analyze(&m, func, &mut sens);
        assert!(flow.cast_sensitive.contains(&as_int));
    }
}
