//! `Session` — the embedding front door: build a protected program once,
//! keep a resident machine, run it many times.
//!
//! The paper pitches CPI as a *drop-in* pipeline: "one just needs to
//! pass additional flags to the compiler" (§4). This module is that
//! pitch as an API. A [`Session`] owns the whole source → [`Built`]
//! module → [`VmConfig`] derivation → resident [`Machine`] chain that
//! every consumer used to re-wire by hand, and serves repeated runs
//! from the same machine via [`Machine::reset`] — proven bit-identical
//! to a fresh build by the `session` proptest suite.
//!
//! ```
//! use levee_core::{BuildConfig, Session};
//!
//! let mut session = Session::builder()
//!     .source("int main() { print_int(42); return 0; }")
//!     .protection(BuildConfig::Cpi)
//!     .build()
//!     .expect("valid mini-C");
//! let report = session.run(b"");
//! assert!(report.status.is_success());
//! assert_eq!(report.output, "42");
//! ```
//!
//! Configuration knobs mirror the driver's compiler flags
//! ([`BuildConfig`], see `driver.rs`) on the build side and the VM's
//! [`VmConfig`] (see `levee_vm::config`) on the execution side; the
//! session derives the latter from the former exactly as
//! [`Built::vm_config`] does, so CPI/CPS builds automatically protect
//! runtime-created code pointers.

use std::fmt;
use std::sync::Arc;

use levee_ir::{Intrinsic, Module};
use levee_minic::CompileError;
use levee_vm::{
    AttackerError, Engine, ExecStats, ExitStatus, GoalKind, GuessOutcome, Machine, ProfileReport,
    ResetStats, StoreKind, TouchRecord, VmConfig,
};

use crate::driver::{build_source, BuildConfig, Built};
use crate::stats::BuildStats;

/// The default deterministic seed of every session (layout
/// randomization, stack cookies, safe-region base). Historically the
/// workloads harness hard-coded this value; it is now the documented
/// API-wide default, overridden with [`SessionBuilder::seed`] or
/// wholesale via [`SessionBuilder::vm_config`].
pub const DEFAULT_SEED: u64 = 0xBEEF;

/// Everything that can go wrong while building or running a session.
///
/// The embedding API never panics on malformed input: compile errors,
/// builder misuse and required-success runs that trapped all surface
/// here.
#[derive(Debug)]
pub enum LeveeError {
    /// The mini-C source failed to compile.
    Compile {
        /// The program name given to the builder.
        name: String,
        /// The frontend's error.
        error: CompileError,
    },
    /// The builder was finished without a program (neither
    /// [`SessionBuilder::source`] nor [`SessionBuilder::module`]).
    NoProgram,
    /// A run that was required to exit cleanly (via
    /// [`Session::run_ok`]) trapped or exited nonzero.
    Run {
        /// The program name.
        name: String,
        /// How the run actually ended.
        status: ExitStatus,
        /// The output produced up to that point.
        output: String,
    },
}

impl fmt::Display for LeveeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeveeError::Compile { name, error } => {
                write!(f, "{name}: compile error: {error}")
            }
            LeveeError::NoProgram => {
                write!(
                    f,
                    "session builder needs a program: call .source() or .module()"
                )
            }
            LeveeError::Run {
                name,
                status,
                output,
            } => {
                write!(f, "{name}: run did not exit cleanly: {status:?}")?;
                if !output.is_empty() {
                    write!(f, " (output: {output:?})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LeveeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LeveeError::Compile { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// The unified result of one [`Session::run`]: exit status, program
/// output, runtime statistics and the build statistics of the module
/// that produced them, plus the configuration axes every report table
/// keys on — one serializable struct where consumers used to pass
/// `(ExitStatus, String, ExecStats, BuildStats)` tuples around.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name (from [`SessionBuilder::name`]).
    pub name: String,
    /// Protection configuration the module was built with.
    pub config: BuildConfig,
    /// Execution engine that served the run.
    pub engine: Engine,
    /// Safe-pointer-store organization.
    pub store: StoreKind,
    /// Whether superinstruction fusion was enabled.
    pub fusion: bool,
    /// The deterministic seed the run used.
    pub seed: u64,
    /// How the run ended.
    pub status: ExitStatus,
    /// Everything the program printed.
    pub output: String,
    /// Runtime counters (cycles are the "time" axis of every table).
    pub exec: ExecStats,
    /// Compile-time statistics (Table 2's FNUStack / MO data).
    pub build: BuildStats,
    /// Execution profile of the run — per-opcode, per-function and
    /// per-check-site attribution (see [`ProfileReport`]). `None`
    /// unless the session was built with [`SessionBuilder::profile`]
    /// or [`Session::enable_profile`] was called. Profiling is a
    /// host-side observation: the run's simulated cycles, instruction
    /// counts, traps and touch sequences are bit-identical with the
    /// profiler on or off.
    pub profile: Option<ProfileReport>,
    /// What recycling the resident machine cost
    /// ([`Machine::last_reset_stats`]). For [`Session::run`] this is
    /// the lazy pre-run re-arm — pages dirtied by the *previous* run,
    /// all-zero for a session's first run. For [`Session::run_batch`]
    /// and [`crate::pool::SessionPool`] the machine is recycled
    /// eagerly after each run instead, so this is the post-run recycle
    /// cost of *this* request — a pure per-request value, independent
    /// of scheduling, which is what makes pool reports bit-identical
    /// to serial ones. `used_snapshot == false` whenever the loader
    /// path served the reset. Kept outside [`ExecStats`] so recycled
    /// runs stay bit-identical to fresh ones in every simulated
    /// counter.
    pub reset: ResetStats,
}

impl RunReport {
    /// True for a clean `exit(0)`.
    pub fn success(&self) -> bool {
        self.status.is_success()
    }

    /// The exit code, if the program exited (rather than trapped).
    pub fn exit_code(&self) -> Option<i64> {
        match self.status {
            ExitStatus::Exited(c) => Some(c),
            ExitStatus::Trapped(_) => None,
        }
    }

    /// Runtime overhead relative to `baseline`, in percent (simulated
    /// cycles — the "time" axis of every overhead table).
    pub fn overhead_pct(&self, baseline: &RunReport) -> f64 {
        self.exec.overhead_pct(&baseline.exec)
    }

    /// Memory overhead relative to `baseline`, in percent.
    pub fn memory_overhead_pct(&self, baseline: &RunReport) -> f64 {
        self.exec.memory_overhead_pct(&baseline.exec)
    }

    /// Safe-pointer-store memory as % of baseline residency (§5.2).
    pub fn store_overhead_pct(&self, baseline: &RunReport) -> f64 {
        self.exec.store_overhead_pct(&baseline.exec)
    }

    /// Renders the report as one JSON object — the shared machine-
    /// readable row every bench binary's `--json` mode emits.
    pub fn to_json(&self) -> String {
        let status = match &self.status {
            ExitStatus::Exited(c) => format!("{{\"exited\": {c}}}"),
            ExitStatus::Trapped(t) => format!("{{\"trapped\": {}}}", json_str(&format!("{t:?}"))),
        };
        let mut out = format!(
            "{{\"name\": {}, \"config\": {}, \"engine\": {}, \"store\": {}, \
             \"fusion\": {}, \"seed\": {}, \"status\": {status}, \"output\": {}, \
             \"cycles\": {}, \"insts\": {}, \"mem_ops\": {}, \"cpi_mem_ops\": {}, \
             \"checks\": {}, \"calls\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"pac_signs\": {}, \"pac_auths\": {}, \
             \"store_bytes\": {}, \"regular_bytes\": {}, \"build\": {{\
             \"funcs\": {}, \"unsafe_frames\": {}, \"mem_ops\": {}, \
             \"instrumented_mem_ops\": {}, \"checks\": {}, \"fn_checks\": {}, \
             \"fnustack\": {}, \"mo_fraction\": {}}}}}",
            json_str(&self.name),
            json_str(self.config.name()),
            json_str(self.engine.name()),
            json_str(self.store.name()),
            self.fusion,
            self.seed,
            json_str(&self.output),
            self.exec.cycles,
            self.exec.insts,
            self.exec.mem_ops,
            self.exec.cpi_mem_ops,
            self.exec.checks,
            self.exec.calls,
            self.exec.cache_hits,
            self.exec.cache_misses,
            self.exec.pac_signs,
            self.exec.pac_auths,
            self.exec.store_bytes,
            self.exec.regular_bytes,
            self.build.funcs,
            self.build.unsafe_frames,
            self.build.mem_ops,
            self.build.instrumented_mem_ops,
            self.build.checks,
            self.build.fn_checks,
            json_f64(self.build.fnustack(), 4),
            json_f64(self.build.mo_fraction(), 4),
        );
        // Splice the reset-cost object in before the closing brace so
        // the row stays one JSON object (the drift gate keys on these
        // counters in the webserver baseline).
        out.truncate(out.len() - 1);
        out.push_str(&format!(
            ", \"reset\": {{\"used_snapshot\": {}, \"pages_dirtied\": {}, \
             \"bytes_restored\": {}, \"store_bytes_restored\": {}, \
             \"meta_entries_dropped\": {}}}}}",
            self.reset.used_snapshot,
            self.reset.pages_dirtied,
            self.reset.bytes_restored,
            self.reset.store_bytes_restored,
            self.reset.meta_entries_dropped,
        ));
        if let Some(profile) = &self.profile {
            // Same splice for the profile object.
            out.truncate(out.len() - 1);
            out.push_str(", \"profile\": ");
            out.push_str(&profile.to_json());
            out.push('}');
        }
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included) — the
/// escaper behind [`RunReport::to_json`], public so bench binaries
/// embedding free-form text (trap names, `Debug` renderings) in their
/// `--json` rows stay well-formed.
/// Formats a float as a JSON value with `decimals` fixed decimals,
/// mapping non-finite values to `null`: `NaN` (zero-baseline overhead
/// percentages, 0-function builds) and `±inf` (zero-elapsed rates)
/// would otherwise be emitted as the bare tokens `NaN`/`inf`, which
/// are not valid JSON. Public for the same reason as [`json_str`]:
/// bench binaries embedding computed floats in their `--json` rows
/// must stay well-formed on degenerate inputs.
pub fn json_f64(x: f64, decimals: usize) -> String {
    if x.is_finite() {
        format!("{x:.decimals$}")
    } else {
        "null".to_string()
    }
}

pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A deferred configuration adjustment (see [`SessionBuilder::configure`]).
type ConfigTweak = Box<dyn FnOnce(&mut VmConfig)>;

/// Fluent constructor for [`Session`]; obtained from
/// [`Session::builder`].
///
/// The VM configuration starts from [`VmConfig::default`] with the
/// documented [`DEFAULT_SEED`]; individual knobs ([`store`], [`engine`],
/// [`fusion`], [`seed`], [`fuel`]) override single fields, while
/// [`vm_config`] replaces the whole base — *including the seed* — for
/// callers that already carry a configuration.
///
/// [`store`]: SessionBuilder::store
/// [`engine`]: SessionBuilder::engine
/// [`fusion`]: SessionBuilder::fusion
/// [`seed`]: SessionBuilder::seed
/// [`fuel`]: SessionBuilder::fuel
/// [`vm_config`]: SessionBuilder::vm_config
pub struct SessionBuilder {
    name: String,
    source: Option<String>,
    module: Option<Module>,
    protection: BuildConfig,
    vm: VmConfig,
    tweak: Option<ConfigTweak>,
}

impl SessionBuilder {
    fn new() -> Self {
        SessionBuilder {
            name: "program".to_string(),
            source: None,
            module: None,
            protection: BuildConfig::Vanilla,
            vm: VmConfig::default().with_seed(DEFAULT_SEED),
            tweak: None,
        }
    }

    /// Mini-C source to compile and protect. The usual entry point.
    pub fn source(mut self, src: &str) -> Self {
        self.source = Some(src.to_string());
        self
    }

    /// Program name used in reports and error messages.
    pub fn name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// A pre-lowered (and possibly externally instrumented) module,
    /// taken verbatim: the driver's protection passes do **not** run
    /// and the VM configuration is used exactly as given rather than
    /// derived — this is the escape hatch for baseline-defense
    /// deployments (`levee_defenses::Deployment::apply`) and hand-built
    /// IR. Takes precedence over [`SessionBuilder::source`].
    pub fn module(mut self, module: Module) -> Self {
        self.module = Some(module);
        self
    }

    /// Protection configuration (the compiler flag: `-fcpi`, `-fcps`,
    /// `-fstack-protector-safe`, `-fsoftbound` or none). Defaults to
    /// [`BuildConfig::Vanilla`] — like the real compiler, protection is
    /// opt-in.
    pub fn protection(mut self, config: BuildConfig) -> Self {
        self.protection = config;
        self
    }

    /// Safe-pointer-store organization.
    pub fn store(mut self, store: StoreKind) -> Self {
        self.vm.store_kind = store;
        self
    }

    /// Execution engine (bytecode tier by default).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.vm.engine = engine;
        self
    }

    /// Superinstruction fusion in the bytecode tier (default on).
    pub fn fusion(mut self, fusion: bool) -> Self {
        self.vm.fusion = fusion;
        self
    }

    /// Deterministic seed (layout randomization, cookies, safe-region
    /// base). Defaults to [`DEFAULT_SEED`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.vm.seed = seed;
        self
    }

    /// Fuel: maximum instructions before `Trap::OutOfFuel`.
    pub fn fuel(mut self, max_insts: u64) -> Self {
        self.vm.max_insts = max_insts;
        self
    }

    /// Execution profiling (default off). When on, every
    /// [`RunReport`] carries a [`ProfileReport`] with per-opcode,
    /// per-function and per-check-site attribution. Profiling never
    /// perturbs the simulation: cycles, instruction counts, traps and
    /// touch sequences are bit-identical with the profiler on or off.
    pub fn profile(mut self, profile: bool) -> Self {
        self.vm.profile = profile;
        self
    }

    /// Replaces the whole base [`VmConfig`] (seed included). For
    /// source-built sessions the build still derives its
    /// runtime-protection settings over this base, exactly as
    /// [`Built::vm_config`] does; for [`SessionBuilder::module`]
    /// sessions it is used verbatim.
    pub fn vm_config(mut self, config: VmConfig) -> Self {
        self.vm = config;
        self
    }

    /// Arbitrary last-word adjustment of the final [`VmConfig`],
    /// applied *after* the build derivation — for knobs without a
    /// dedicated builder method (isolation model, hardware model,
    /// ASLR). Calling it repeatedly composes: every registered closure
    /// runs, in registration order.
    pub fn configure(mut self, f: impl FnOnce(&mut VmConfig) + 'static) -> Self {
        self.tweak = Some(match self.tweak.take() {
            Some(prev) => Box::new(move |cfg| {
                prev(cfg);
                f(cfg);
            }),
            None => Box::new(f),
        });
        self
    }

    /// Compiles, protects and loads the program into a resident
    /// machine. Malformed source returns [`LeveeError::Compile`];
    /// a builder without a program returns [`LeveeError::NoProgram`].
    pub fn build(self) -> Result<Session, LeveeError> {
        let (built, mut cfg) = match (self.module, self.source) {
            (Some(module), _) => {
                // Verbatim module: no passes, no config derivation.
                let built = Built {
                    module,
                    config: self.protection,
                    stats: BuildStats::default(),
                };
                (built, self.vm)
            }
            (None, Some(src)) => {
                let built = build_source(&src, &self.name, self.protection).map_err(|error| {
                    LeveeError::Compile {
                        name: self.name.clone(),
                        error,
                    }
                })?;
                let cfg = built.vm_config(self.vm);
                (built, cfg)
            }
            (None, None) => return Err(LeveeError::NoProgram),
        };
        if let Some(tweak) = self.tweak {
            tweak(&mut cfg);
        }
        Ok(Session::from_parts(self.name, built, cfg))
    }
}

/// A built program with a resident machine: the system's front door for
/// "run a protected program".
///
/// The session owns the [`Built`] module and one loaded [`Machine`].
/// Every [`run`] serves a fresh program execution from that resident
/// machine — the first run uses it as loaded, later runs re-arm it
/// with [`Machine::reset`], which is bit-identical to a fresh machine
/// (store and provenance-table lifetimes stay coherent across the
/// reset; the compiled bytecode and attack goals survive). That makes
/// [`run_batch`] the cheap way to serve many inputs: one compile, one
/// module load, N executions.
///
/// [`run`]: Session::run
/// [`run_batch`]: Session::run_batch
pub struct Session {
    // SAFETY: the machine borrows the `Built` inside `built`, an
    // `Arc` allocation this session holds a strong reference to — the
    // owner-follows-borrower layout. The allocation's address is
    // stable (moving the `Session` moves only the `Arc` pointer, never
    // the pointee, and no retag of the allocation happens on a move),
    // and its contents are never uniquely borrowed: no `&mut Built`
    // exists anywhere (`Arc::get_mut`/`make_mut` are never called), so
    // the machine's promoted `'static` shared borrow stays valid for
    // as long as this session's strong reference — i.e. the machine's
    // whole life. `Drop` tears the machine down strictly before the
    // `Arc` field releases that reference (hence the `ManuallyDrop`).
    //
    // The `Arc` (rather than a raw `Box::into_raw` pointer, the
    // previous layout) is what makes the session honestly `Send` and
    // lets `SessionPool` workers share one immutable build: every
    // fork holds its own strong reference to the same allocation.
    machine: std::mem::ManuallyDrop<Machine<'static>>,
    built: Arc<Built>,
    name: String,
    cfg: VmConfig,
    ran: bool,
}

/// Sessions migrate whole into `SessionPool` worker threads; pin the
/// `Send` guarantee at compile time (it follows from
/// `Machine<'static>: Send` plus `Built` being plain shareable data).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
};

impl Drop for Session {
    fn drop(&mut self) {
        // SAFETY: drop the borrower first; the `Arc` field then
        // releases this session's reference to the allocation the
        // machine was borrowing. `self.machine` is never touched again
        // (we are in drop).
        unsafe { std::mem::ManuallyDrop::drop(&mut self.machine) };
    }
}

impl Session {
    /// Starts a fluent builder.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    fn from_parts(name: String, built: Built, cfg: VmConfig) -> Session {
        let built = Arc::new(built);
        let module = Self::module_ref(&built);
        let machine = std::mem::ManuallyDrop::new(Machine::new(module, cfg));
        Session {
            machine,
            built,
            name,
            cfg,
            ran: false,
        }
    }

    /// Promotes a borrow of the shared build's module to `'static`.
    ///
    /// SAFETY (of the promotion): the reference points into the `Arc`
    /// allocation, whose address is stable and whose contents are
    /// never uniquely borrowed; every caller stores the resulting
    /// machine in a session that also holds a strong reference to
    /// `built`, and drops the machine before releasing it (see the
    /// struct-level comment).
    fn module_ref(built: &Arc<Built>) -> &'static Module {
        let module: &Module = &built.module;
        unsafe { &*(module as *const Module) }
    }

    /// The owned `Built` (live for the session's whole life, never
    /// mutated — see the `SAFETY` notes on the struct).
    fn built_ref(&self) -> &Built {
        &self.built
    }

    /// Forks this session for another worker: the build stays shared
    /// (one more strong reference to the same `Arc<Built>`), the
    /// machine is forked with [`Machine::fork`] — copy-on-write
    /// snapshot pages shared, all mutable state private — and compiled
    /// bytecode carries over, so forks of a precompiled session never
    /// recompile. The fork is fully independent: it can run on another
    /// thread and never observes the original's writes.
    pub fn fork(&self) -> Session {
        Session {
            machine: std::mem::ManuallyDrop::new(self.machine.fork()),
            built: Arc::clone(&self.built),
            name: self.name.clone(),
            cfg: self.cfg,
            ran: self.ran,
        }
    }

    /// Runs the program to completion on the attacker-controlled input
    /// `payload`, serving the run from the resident machine (re-armed
    /// with [`Machine::reset`] on every run after the first).
    pub fn run(&mut self, input: &[u8]) -> RunReport {
        if self.ran {
            self.machine.reset();
        }
        self.ran = true;
        let reset = self.machine.last_reset_stats();
        let out = self.machine.run(input);
        let profile = self.machine.profile_report();
        RunReport {
            name: self.name.clone(),
            config: self.built_ref().config,
            engine: self.cfg.engine,
            store: self.cfg.store_kind,
            fusion: self.cfg.fusion,
            seed: self.cfg.seed,
            status: out.status,
            output: out.output,
            exec: out.stats,
            build: self.built_ref().stats.clone(),
            profile,
            reset,
        }
    }

    /// Like [`Session::run`], but requires a clean `exit(0)`: anything
    /// else becomes [`LeveeError::Run`] instead of a report the caller
    /// must remember to check.
    pub fn run_ok(&mut self, input: &[u8]) -> Result<RunReport, LeveeError> {
        let report = self.run(input);
        if report.success() {
            Ok(report)
        } else {
            Err(LeveeError::Run {
                name: report.name,
                status: report.status,
                output: report.output,
            })
        }
    }

    /// Runs every input through the resident machine — one compile, one
    /// module load, N executions, each bit-identical to a fresh
    /// session's run (the reuse claim the `session` proptest pins
    /// down).
    ///
    /// After each item the machine is recycled by [`Machine::reset`],
    /// which by default restores from the copy-on-write post-load
    /// snapshot captured at build time (`levee_vm::ResetMode::Snapshot`;
    /// the dirty-page tracking lives in `levee_vm::mem::Memory`): each
    /// recycle copies back only the pages, store entries and heap state
    /// the request dirtied — the fork-per-request serving model,
    /// without the fork. Each item's [`RunReport::reset`] reports its
    /// *own* recycle cost (see [`Session::run_recycled`]), so batch
    /// reports are a pure function of the request — bit-identical
    /// whether the batch is served serially or sharded across a
    /// [`crate::pool::SessionPool`].
    pub fn run_batch<I, B>(&mut self, inputs: I) -> Vec<RunReport>
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        inputs
            .into_iter()
            .map(|input| self.run_recycled(input.as_ref()))
            .collect()
    }

    /// Runs one input and eagerly recycles the machine, stamping the
    /// report's [`RunReport::reset`] with the recycle cost of *this*
    /// request (rather than [`Session::run`]'s lazy pre-run re-arm,
    /// whose cost reflects the previous request). This is the serving
    /// step `run_batch` and the pool share: because every request is
    /// served from a pristine machine and reports its own dirt, the
    /// report is independent of what ran before it or on which worker.
    pub fn run_recycled(&mut self, input: &[u8]) -> RunReport {
        let mut report = self.run(input);
        self.machine.reset();
        self.ran = false;
        report.reset = self.machine.last_reset_stats();
        report
    }

    /// Rebuilds the resident machine under an adjusted configuration
    /// (same built module). The next [`Session::run`] starts from the
    /// freshly-loaded state; attack goals and the memory-trace setting
    /// do **not** carry over (they belong to the torn-down machine).
    pub fn reconfigure(&mut self, f: impl FnOnce(&mut VmConfig)) {
        f(&mut self.cfg);
        // The replacement machine borrows the same shared build; the
        // old machine is dropped by the assignment. (Under the old raw-
        // pointer layout this rebuild re-derived a `&'static` from the
        // raw allocation while the outgoing machine's borrow was still
        // live — the aliasing hazard the `Arc` layout retires.)
        let module = Self::module_ref(&self.built);
        *self.machine = Machine::new(module, self.cfg);
        self.ran = false;
    }

    /// Re-arms the resident machine to its freshly-loaded state without
    /// running — for callers that time [`Session::run`] and want the
    /// reset cost outside the measured window.
    pub fn reset(&mut self) {
        self.machine.reset();
        self.ran = false;
    }

    /// Compiles (and fuses, if enabled) the bytecode ahead of the first
    /// run, so one-time compilation stays out of timed windows.
    pub fn precompile(&mut self) {
        self.machine.precompile();
    }

    // ---- introspection pass-throughs ----------------------------------

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The built module and its statistics.
    pub fn built(&self) -> &Built {
        self.built_ref()
    }

    /// Compile-time statistics of the build.
    pub fn build_stats(&self) -> &BuildStats {
        &self.built_ref().stats
    }

    /// The machine's effective configuration.
    pub fn vm_config(&self) -> VmConfig {
        self.cfg
    }

    /// Registers an attack goal: reaching `addr` by an indirect
    /// transfer ends a run with `Trap::Hijacked`. Goals survive the
    /// between-run reset (but not [`Session::reconfigure`]).
    pub fn add_goal(&mut self, addr: u64, kind: GoalKind) {
        self.machine.add_goal(addr, kind);
    }

    /// Code entry address of the named function, if it exists.
    pub fn func_entry(&self, name: &str) -> Option<u64> {
        self.machine.func_entry(name)
    }

    /// Data address of the named global, if it exists.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        self.machine.global_addr(name)
    }

    /// Pseudo entry address of a libc intrinsic (ret2libc targets).
    pub fn intrinsic_entry(&self, which: Intrinsic) -> u64 {
        self.machine.intrinsic_entry(which)
    }

    /// Every valid return-site address, in layout order.
    pub fn ret_site_addrs(&self) -> Vec<u64> {
        self.machine.ret_site_addrs()
    }

    /// The machine's memory layout (region bases, stack tops).
    pub fn layout(&self) -> levee_vm::layout::Layout {
        self.machine.layout()
    }

    /// Models one direct attacker write to an arbitrary address —
    /// the isolation-ablation probe (§3.2.3).
    pub fn attacker_write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), AttackerError> {
        self.machine.attacker_write(addr, bytes)
    }

    /// Models one attacker probe at the hidden safe region (§3.2.3).
    pub fn attacker_guess(&self, addr: u64) -> GuessOutcome {
        self.machine.attacker_guess(addr)
    }

    /// Number of equally likely safe-region bases under info-hiding.
    pub fn guess_space(&self) -> u64 {
        self.machine.guess_space()
    }

    /// Starts recording the memory touch log (see
    /// `Machine::enable_mem_trace`). Call again after
    /// [`Session::reconfigure`]; the setting survives between-run
    /// resets.
    pub fn enable_mem_trace(&mut self) {
        self.machine.enable_mem_trace();
    }

    /// The recorded memory touch log of the last run: tagged
    /// read/write records in access order.
    pub fn mem_trace(&self) -> &[TouchRecord] {
        self.machine.mem_trace()
    }

    /// The touch log's address sequence alone, tags stripped — the
    /// projection the cross-engine sequence-diff tests compare.
    pub fn mem_trace_addrs(&self) -> Vec<u64> {
        self.machine.mem_trace_addrs()
    }

    /// Turns on execution profiling for subsequent runs (see
    /// [`SessionBuilder::profile`]). Unlike the mem-trace knob the
    /// setting rides in the [`VmConfig`], so it *does* survive
    /// [`Session::reconfigure`] as well as between-run resets.
    pub fn enable_profile(&mut self) {
        self.cfg.profile = true;
        self.machine.enable_profile();
    }

    /// Superinstruction-fusion statistics of the compiled bytecode, if
    /// the bytecode tier has compiled it (after [`Session::precompile`]
    /// or the first bytecode-engine run).
    pub fn fuse_stats(&self) -> Option<levee_vm::FuseStats> {
        self.machine.fuse_stats()
    }

    /// What the most recent between-run [`Machine::reset`] cost
    /// (all-zero before the first reset). The same value rides on
    /// [`RunReport::reset`].
    pub fn last_reset_stats(&self) -> ResetStats {
        self.machine.last_reset_stats()
    }

    /// Pages held by the machine's post-load snapshot (0 under
    /// `levee_vm::ResetMode::Loader`). Snapshot pages are shared
    /// copy-on-write with the live image, so this is *not* extra
    /// residency — see [`Session::snapshot_private_bytes`].
    pub fn snapshot_pages(&self) -> usize {
        self.machine.snapshot_pages()
    }

    /// Bytes the snapshot holds privately (pre-write copies of pages
    /// the current run dirtied) — the snapshot's true incremental
    /// memory footprint, reported by the `memory_overhead` bench.
    pub fn snapshot_private_bytes(&self) -> u64 {
        self.machine.snapshot_private_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        void handler(int x) { print_int(x); }
        void (*h)(int);
        int main() {
            h = handler;
            char buf[16];
            long n = read_input(buf, 15);
            h((int)n);
            return 0;
        }
    "#;

    #[test]
    fn builder_without_program_errors() {
        match Session::builder().build() {
            Err(LeveeError::NoProgram) => {}
            other => panic!("expected NoProgram, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn malformed_source_is_a_typed_error_not_a_panic() {
        let err = Session::builder()
            .source("int main() { return undefined; }")
            .name("broken")
            .build()
            .err()
            .expect("must not compile");
        match &err {
            LeveeError::Compile { name, .. } => assert_eq!(name, "broken"),
            other => panic!("expected Compile, got {other:?}"),
        }
        // Display is usable in a bench binary's error path.
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn run_reports_carry_the_whole_configuration() {
        let mut s = Session::builder()
            .source(SRC)
            .name("demo")
            .protection(BuildConfig::Cpi)
            .store(StoreKind::Hash)
            .engine(Engine::Bytecode)
            .fusion(true)
            .seed(7)
            .build()
            .expect("builds");
        let r = s.run(b"xx");
        assert!(r.success());
        assert_eq!(r.output, "2");
        assert_eq!(r.name, "demo");
        assert_eq!(r.config, BuildConfig::Cpi);
        assert_eq!(r.store, StoreKind::Hash);
        assert_eq!(r.engine, Engine::Bytecode);
        assert!(r.fusion);
        assert_eq!(r.seed, 7);
        assert!(
            r.build.instrumented_mem_ops > 0,
            "CPI build is instrumented"
        );
        assert!(r.exec.insts > 0);
    }

    #[test]
    fn default_seed_is_documented_and_applied() {
        let s = Session::builder().source(SRC).build().expect("builds");
        assert_eq!(s.vm_config().seed, DEFAULT_SEED);
        let s = Session::builder()
            .source(SRC)
            .vm_config(VmConfig::default())
            .build()
            .expect("builds");
        assert_eq!(s.vm_config().seed, 0, "vm_config replaces the seed too");
    }

    #[test]
    fn batch_runs_are_bit_identical_to_fresh_sessions() {
        let inputs: [&[u8]; 4] = [b"", b"a", b"hello", b"0123456789abcd"];
        let mut resident = Session::builder()
            .source(SRC)
            .protection(BuildConfig::Cpi)
            .build()
            .expect("builds");
        let batch = resident.run_batch(inputs);
        for (input, batched) in inputs.iter().zip(&batch) {
            let fresh = Session::builder()
                .source(SRC)
                .protection(BuildConfig::Cpi)
                .build()
                .expect("builds")
                .run(input);
            assert_eq!(batched.status, fresh.status);
            assert_eq!(batched.output, fresh.output);
            assert_eq!(batched.exec.cycles, fresh.exec.cycles);
            assert_eq!(batched.exec.insts, fresh.exec.insts);
            assert_eq!(batched.exec.checks, fresh.exec.checks);
        }
    }

    #[test]
    fn reconfigure_switches_engines_on_the_same_build() {
        let mut s = Session::builder()
            .source(SRC)
            .protection(BuildConfig::Cpi)
            .build()
            .expect("builds");
        let bc = s.run(b"ab");
        s.reconfigure(|cfg| cfg.engine = Engine::Walk);
        let walk = s.run(b"ab");
        assert_eq!(walk.engine, Engine::Walk);
        assert_eq!(bc.output, walk.output);
        assert_eq!(bc.exec.cycles, walk.exec.cycles);
    }

    #[test]
    fn configure_composes_in_registration_order() {
        use levee_vm::Isolation;
        let s = Session::builder()
            .source(SRC)
            .configure(|cfg| {
                cfg.isolation = Isolation::Sfi;
                cfg.aslr = true;
            })
            .configure(|cfg| cfg.aslr = false)
            .build()
            .expect("builds");
        let cfg = s.vm_config();
        assert_eq!(cfg.isolation, Isolation::Sfi, "first tweak survives");
        assert!(!cfg.aslr, "later tweak wins on the contested field");
    }

    #[test]
    fn run_ok_surfaces_traps_as_errors() {
        let mut s = Session::builder()
            .source("int main() { long a = 1; long b = 0; print_int((int)(a / b)); return 0; }")
            .name("divzero")
            .build()
            .expect("builds");
        match s.run_ok(b"") {
            Err(LeveeError::Run { name, status, .. }) => {
                assert_eq!(name, "divzero");
                assert!(matches!(status, ExitStatus::Trapped(_)));
            }
            other => panic!("expected Run error, got {other:?}"),
        }
    }

    #[test]
    fn report_json_is_well_formed_enough_to_round_trip_keys() {
        let mut s = Session::builder()
            .source(SRC)
            .name("json \"quoted\"\nname")
            .protection(BuildConfig::Cps)
            .build()
            .expect("builds");
        let j = s.run(b"x").to_json();
        for key in [
            "\"name\"",
            "\"config\"",
            "\"engine\"",
            "\"store\"",
            "\"fusion\"",
            "\"seed\"",
            "\"status\"",
            "\"output\"",
            "\"cycles\"",
            "\"insts\"",
            "\"checks\"",
            "\"pac_signs\"",
            "\"pac_auths\"",
            "\"build\"",
            "\"fnustack\"",
            "\"mo_fraction\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.contains("json \\\"quoted\\\"\\nname"), "escaping: {j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    /// Aliasing-soundness lifecycle (the Miri CI gate runs these unit
    /// tests): a session keeps serving after being moved — the
    /// machine's promoted borrow points into the `Arc` allocation,
    /// which never moves with the session value.
    #[test]
    fn moved_sessions_keep_serving() {
        let s = Session::builder().source(SRC).build().expect("builds");
        let mut boxed = Box::new(s);
        let first = boxed.run(b"ab");
        assert!(first.success());
        let mut unboxed = *boxed;
        let second = unboxed.run(b"ab");
        assert_eq!(first.output, second.output);
        assert_eq!(first.exec, second.exec);
    }

    /// Forks serve on worker threads (`Session: Send`), bit-identical
    /// to the original and to each other, and tear down cleanly while
    /// the original lives on.
    #[test]
    fn forked_sessions_serve_on_worker_threads() {
        let mut s = Session::builder()
            .source(SRC)
            .protection(BuildConfig::Cpi)
            .build()
            .expect("builds");
        s.precompile();
        let forks: Vec<Session> = (0..2).map(|_| s.fork()).collect();
        let serial = s.run(b"xyz");
        for fork in forks {
            let mut fork = fork;
            let report = std::thread::spawn(move || fork.run(b"xyz"))
                .join()
                .expect("worker panicked");
            assert_eq!(report.output, serial.output);
            assert_eq!(report.status, serial.status);
            assert_eq!(report.exec, serial.exec);
        }
        // The original still serves after every fork is gone.
        assert_eq!(s.run(b"xyz").exec, serial.exec);
    }

    /// Non-finite floats must surface as JSON `null`, not as the bare
    /// tokens `NaN`/`inf` — the contract every bench binary's `--json`
    /// row relies on for computed rates and overhead percentages.
    #[test]
    fn json_f64_maps_non_finite_to_null() {
        assert_eq!(json_f64(f64::NAN, 4), "null");
        assert_eq!(json_f64(f64::INFINITY, 1), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY, 2), "null");
        assert_eq!(json_f64(1.25, 1), "1.2");
        assert_eq!(json_f64(0.0, 4), "0.0000");
    }

    #[test]
    fn goals_survive_reset_between_runs() {
        use levee_vm::Trap;
        // Overflowable global buffer sitting right below a function
        // pointer — the quickstart's vulnerable server in miniature.
        let mut s = Session::builder()
            .source(
                r#"
                void handle(int code) { print_str("ok"); }
                char reqbuf[64];
                void (*cb)(int);
                int main() {
                    cb = handle;
                    read_input(reqbuf, -1);
                    cb(200);
                    return 0;
                }
            "#,
            )
            .build()
            .expect("builds");
        let system = s.intrinsic_entry(Intrinsic::System);
        s.add_goal(system, GoalKind::Ret2Libc);
        // First run: benign input, no hijack.
        assert!(s.run(b"hi").success());
        // Second run (machine reset in between): overflow into the
        // function pointer redirects dispatch to system().
        let mut payload = vec![b'A'; 64];
        payload.extend_from_slice(&system.to_le_bytes());
        let out = s.run(&payload);
        assert!(
            matches!(out.status, ExitStatus::Trapped(Trap::Hijacked { .. })),
            "vanilla build must be hijackable after a reset too, got {:?}",
            out.status
        );
    }
}
