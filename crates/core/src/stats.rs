//! Compilation statistics — the raw data behind Table 2 of the paper
//! (FNUStack, MOCPS, MOCPI).

/// Instrumentation statistics for one function.
#[derive(Debug, Clone)]
pub struct FuncInstrStats {
    /// Function name.
    pub name: String,
    /// Memory operations (loads + stores) seen by the pass.
    pub mem_ops: u64,
    /// Memory operations that received any instrumentation (a check
    /// and/or safe-store redirection) — the MO numerator.
    pub instrumented_mem_ops: u64,
    /// Loads/stores redirected through the safe pointer store.
    pub protected_ops: u64,
    /// Bounds checks inserted.
    pub checks: u64,
    /// Indirect-call code-pointer checks inserted.
    pub fn_checks: u64,
    /// memcpy/memmove/memset calls replaced by safe variants.
    pub safe_mem_fns: u64,
}

impl FuncInstrStats {
    /// Fresh, zeroed statistics for `name`.
    pub fn new(name: &str) -> Self {
        FuncInstrStats {
            name: name.to_string(),
            mem_ops: 0,
            instrumented_mem_ops: 0,
            protected_ops: 0,
            checks: 0,
            fn_checks: 0,
            safe_mem_fns: 0,
        }
    }
}

/// Whole-module build statistics.
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Total functions.
    pub funcs: u64,
    /// Functions needing an unsafe stack frame (FNUStack numerator).
    pub unsafe_frames: u64,
    /// Aggregate memory operations.
    pub mem_ops: u64,
    /// Aggregate instrumented memory operations (MO numerator).
    pub instrumented_mem_ops: u64,
    /// Aggregate safe-store redirections.
    pub protected_ops: u64,
    /// Aggregate bounds checks.
    pub checks: u64,
    /// Aggregate indirect-call checks.
    pub fn_checks: u64,
    /// Aggregate safe memory-function replacements.
    pub safe_mem_fns: u64,
    /// Per-function detail.
    pub per_func: Vec<FuncInstrStats>,
}

impl BuildStats {
    /// Folds per-function stats into the aggregate.
    pub fn absorb(&mut self, per_func: Vec<FuncInstrStats>) {
        for f in &per_func {
            self.mem_ops += f.mem_ops;
            self.instrumented_mem_ops += f.instrumented_mem_ops;
            self.protected_ops += f.protected_ops;
            self.checks += f.checks;
            self.fn_checks += f.fn_checks;
            self.safe_mem_fns += f.safe_mem_fns;
        }
        self.per_func = per_func;
    }

    /// FNUStack: fraction of functions needing an unsafe stack frame
    /// (first column of Table 2).
    pub fn fnustack(&self) -> f64 {
        if self.funcs == 0 {
            0.0
        } else {
            self.unsafe_frames as f64 / self.funcs as f64
        }
    }

    /// MO: fraction of memory operations instrumented (the MOCPS /
    /// MOCPI columns of Table 2, depending on the mode built).
    pub fn mo_fraction(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            self.instrumented_mem_ops as f64 / self.mem_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let mut s = BuildStats {
            funcs: 20,
            unsafe_frames: 5,
            ..Default::default()
        };
        s.absorb(vec![
            {
                let mut f = FuncInstrStats::new("a");
                f.mem_ops = 90;
                f.instrumented_mem_ops = 9;
                f
            },
            {
                let mut f = FuncInstrStats::new("b");
                f.mem_ops = 10;
                f.instrumented_mem_ops = 4;
                f
            },
        ]);
        assert!((s.fnustack() - 0.25).abs() < 1e-12);
        assert!((s.mo_fraction() - 0.13).abs() < 1e-12);
        assert_eq!(s.per_func.len(), 2);
    }

    #[test]
    fn empty_module_yields_zeroes() {
        let s = BuildStats::default();
        assert_eq!(s.fnustack(), 0.0);
        assert_eq!(s.mo_fraction(), 0.0);
    }
}
