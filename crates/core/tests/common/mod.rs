//! Shared fixtures for the session and pool property suites: the
//! generated program family and the bit-identity assertion both suites
//! gate on.

use levee_core::RunReport;

/// A small program family: input-dependent control flow, array and
/// heap traffic, and function-pointer dispatch (so CPI instrumentation
/// and the safe store are genuinely exercised between resets).
pub fn program(iters: u64, stride: u64, mix: u64) -> String {
    format!(
        r#"
        long acc;
        void op_add(int v) {{ acc = acc + v; }}
        void op_mul(int v) {{ acc = acc * 3 + v; }}
        void op_xor(int v) {{ acc = acc ^ v; }}
        void (*ops[3])(int) = {{op_add, op_mul, op_xor}};
        long table[32];
        char input[64];

        int main() {{
            long n = read_input(input, 63);
            acc = n;
            long i;
            for (i = 0; i < 32; i = i + 1) {{ table[i] = i * {stride}; }}
            long* heap = (long*)malloc(128);
            for (i = 0; i < {iters}; i = i + 1) {{
                long op = (i + {mix}) % 3;
                ops[op]((int)(table[(i * {stride}) % 32] & 255));
                heap[i % 16] = acc;
                if (n > 0) {{ acc = acc + (long)input[i % n]; }}
            }}
            print_int(acc);
            print_int(heap[7]);
            free((void*)heap);
            return 0;
        }}
    "#
    )
}

/// Every observable the ISSUE names, asserted bit-identical.
pub fn assert_identical(batch: &RunReport, fresh: &RunReport, ctx: &str) {
    assert_eq!(batch.status, fresh.status, "{ctx}: status diverged");
    assert_eq!(batch.output, fresh.output, "{ctx}: output diverged");
    assert_eq!(
        batch.exec.insts, fresh.exec.insts,
        "{ctx}: instruction counts diverged"
    );
    assert_eq!(
        batch.exec.cycles, fresh.exec.cycles,
        "{ctx}: cycles diverged"
    );
    assert_eq!(
        batch.exec.checks, fresh.exec.checks,
        "{ctx}: check counts diverged"
    );
    // Beyond the ISSUE's five: the rest of the counter set, which
    // costs nothing extra and pins the reset completely.
    assert_eq!(
        (batch.exec.mem_ops, batch.exec.cpi_mem_ops, batch.exec.calls),
        (fresh.exec.mem_ops, fresh.exec.cpi_mem_ops, fresh.exec.calls),
        "{ctx}: memory/call counters diverged"
    );
    assert_eq!(
        (batch.exec.cache_hits, batch.exec.cache_misses),
        (fresh.exec.cache_hits, fresh.exec.cache_misses),
        "{ctx}: cache behaviour diverged"
    );
    assert_eq!(
        (batch.exec.pac_signs, batch.exec.pac_auths),
        (fresh.exec.pac_signs, fresh.exec.pac_auths),
        "{ctx}: PAC sign/auth counts diverged"
    );
}
