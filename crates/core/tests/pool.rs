//! Pool determinism property suite: `SessionPool::run_batch` over N
//! generated inputs must be **bit-identical** to serial
//! `Session::run_batch` — per request, in input order, for every
//! counter (status, output, instructions, cycles, checks) *and* the
//! per-request reset cost — at worker counts 1, 2 and 4, regardless of
//! how the OS interleaves the worker threads.
//!
//! This is the gate on the sharding design: because every request is
//! served from a pristine machine (eager post-run recycling) and the
//! workers are forked from one shared copy-on-write boot snapshot,
//! scheduling must be invisible in the reports. Programs and input
//! payloads are proptest-generated (same family as the session suite),
//! so the state each worker must isolate — heap churn, safe-store
//! entries, output buffers — varies case to case.

mod common;

use common::{assert_identical, program};
use levee_core::{BuildConfig, Session, SessionPool};
use proptest::prelude::*;

const CASES: u32 = if cfg!(debug_assertions) { 8 } else { 24 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// SessionPool(workers ∈ {1, 2, 4}) ≡ serial run_batch, including
    /// reset stats, with reports in input order.
    #[test]
    fn pooled_batches_are_bit_identical_to_serial(
        iters in 1u64..40,
        stride in 1u64..7,
        mix in 0u64..3,
        inputs in proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..24),
            1..9,
        ),
    ) {
        let src = program(iters, stride, mix);
        let serial_reports = Session::builder()
            .source(&src)
            .name("pool-serial")
            .protection(BuildConfig::Cpi)
            .build()
            .expect("template builds")
            .run_batch(inputs.iter());
        for workers in [1usize, 2, 4] {
            let mut pool = SessionPool::builder()
                .source(&src)
                .name("pool")
                .protection(BuildConfig::Cpi)
                .workers(workers)
                .build()
                .expect("template builds");
            let pooled = pool.run_batch(inputs.iter());
            prop_assert_eq!(pooled.len(), serial_reports.len());
            for (i, (p, s)) in pooled.iter().zip(&serial_reports).enumerate() {
                let ctx = format!("workers {workers} input #{i}");
                assert_identical(p, s, &ctx);
                // The recycle cost is part of the contract too: a pooled
                // request must dirty — and restore — exactly what the
                // same request dirties on a serial resident machine.
                assert_eq!(p.reset, s.reset, "{ctx}: per-request reset cost diverged");
            }
        }
    }

    /// A pool survives across batches: the same pool serving two
    /// batches back to back stays bit-identical to serial serving of
    /// the concatenation (workers recycle between batches, nothing
    /// leaks from one batch into the next).
    #[test]
    fn sequential_batches_reuse_workers_without_leaks(
        iters in 1u64..24,
        inputs in proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..16),
            2..7,
        ),
    ) {
        let src = program(iters, 3, 1);
        let serial_reports = Session::builder()
            .source(&src)
            .name("pool-serial")
            .protection(BuildConfig::Cpi)
            .build()
            .expect("template builds")
            .run_batch(inputs.iter().chain(inputs.iter()));
        let mut pool = SessionPool::builder()
            .source(&src)
            .name("pool")
            .protection(BuildConfig::Cpi)
            .workers(2)
            .build()
            .expect("template builds");
        let first = pool.run_batch(inputs.iter());
        let second = pool.run_batch(inputs.iter());
        for (i, (p, s)) in first.iter().chain(&second).zip(&serial_reports).enumerate() {
            let ctx = format!("request #{i} of two pooled batches");
            assert_identical(p, s, &ctx);
            assert_eq!(p.reset, s.reset, "{ctx}: per-request reset cost diverged");
        }
    }
}

/// Sharding must be invisible to the PAC family too: pooled serving of
/// a PAC build — sign/auth counters, per-request reset costs and PAC
/// trap verdicts (an `X` input clobbers the sealed callback word and
/// dies authenticating) — is bit-identical to serial serving at every
/// worker count. The MAC key is seed-derived, so every forked worker
/// must seal to exactly the same words.
#[test]
fn pac_pools_are_bit_identical_to_serial() {
    use levee_vm::{ExitStatus, Trap};
    let src = r#"
        long acc;
        void op_add(int v) { acc = acc + v; }
        void (*cb)(int);
        char input[64];
        int main() {
            cb = op_add;
            long n = read_input(input, 63);
            if (n > 0) {
                if (input[0] == 88) {
                    long* p = (long*)&cb;
                    p[0] = p[0] ^ 255;
                }
            }
            cb(7);
            print_int(acc);
            return 0;
        }
    "#;
    let inputs: [&[u8]; 5] = [b"", b"X", b"ab", b"Xyz", b"tail"];
    for config in [BuildConfig::Pac, BuildConfig::PacTight] {
        let serial_reports = Session::builder()
            .source(src)
            .name("pac-pool-serial")
            .protection(config)
            .build()
            .expect("template builds")
            .run_batch(inputs)
            .into_iter()
            .collect::<Vec<_>>();
        // The mixed batch must really contain both verdicts.
        assert!(serial_reports
            .iter()
            .any(|r| matches!(r.status, ExitStatus::Trapped(Trap::Pac { .. }))));
        assert!(serial_reports
            .iter()
            .any(|r| r.success() && r.exec.pac_auths > 0));
        for workers in [1usize, 2, 4] {
            let mut pool = SessionPool::builder()
                .source(src)
                .name("pac-pool")
                .protection(config)
                .workers(workers)
                .build()
                .expect("template builds");
            let pooled = pool.run_batch(inputs);
            assert_eq!(pooled.len(), serial_reports.len());
            for (i, (p, s)) in pooled.iter().zip(&serial_reports).enumerate() {
                let ctx = format!("{} workers {workers} input #{i}", config.name());
                assert_identical(p, s, &ctx);
                assert_eq!(p.status, s.status, "{ctx}: verdict diverged");
                assert_eq!(p.reset, s.reset, "{ctx}: per-request reset cost diverged");
            }
        }
    }
}
