//! Session-reuse property suite: `Session::run_batch` over N generated
//! inputs must be **bit-identical** to N freshly built sessions — for
//! every counter (status, output, instructions, cycles, checks), across
//! both execution engines, all four safe-pointer-store organizations,
//! and both machine-recycling paths (copy-on-write snapshot restore —
//! the default — and the full loader rebuild).
//!
//! This is the gate on the API redesign's central claim: serving many
//! runs from one resident machine (`Machine::reset` between runs) is
//! observationally indistinguishable from the old
//! build-per-run wiring, so consumers can adopt the cheap path without
//! auditing for state leaks. Programs are generated from a template
//! with proptest-drawn knobs (loop trip counts, array strides, dispatch
//! mix) plus proptest-drawn input payloads, so the machine state the
//! reset must tear down — register files, heap churn, safe-store
//! entries, provenance handles, output buffers — varies case to case.

mod common;

use common::{assert_identical, program};
use levee_core::{BuildConfig, Session};
use levee_vm::{Engine, ResetMode, StoreKind};
use proptest::prelude::*;

const CASES: u32 = if cfg!(debug_assertions) { 12 } else { 48 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// run_batch(N inputs) ≡ N fresh sessions, engine × store matrix.
    #[test]
    fn run_batch_is_bit_identical_to_fresh_sessions(
        iters in 1u64..40,
        stride in 1u64..7,
        mix in 0u64..3,
        inputs in proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..24),
            1..4,
        ),
    ) {
        let src = program(iters, stride, mix);
        for engine in Engine::all() {
            for store in StoreKind::all() {
                let build = || {
                    Session::builder()
                        .source(&src)
                        .name("reuse")
                        .protection(BuildConfig::Cpi)
                        .engine(*engine)
                        .store(*store)
                        .build()
                        .expect("template builds")
                };
                // The default batch recycles through copy-on-write
                // snapshot resets; a loader-reset twin batch replays
                // the same inputs through the full rebuild path. Both
                // must be bit-identical to fresh sessions — and hence
                // to each other — pinning the snapshot restore as a
                // perfect stand-in for a re-load.
                let batch = build().run_batch(inputs.iter());
                let mut loader = build();
                loader.reconfigure(|c| c.reset_mode = ResetMode::Loader);
                let loader_batch = loader.run_batch(inputs.iter());
                for (i, (input, batched)) in inputs.iter().zip(&batch).enumerate() {
                    let fresh = build().run(input);
                    let ctx = format!(
                        "engine {} store {} input {input:?}",
                        engine.name(),
                        store.name()
                    );
                    assert_identical(batched, &fresh, &ctx);
                    assert_identical(&loader_batch[i], &fresh, &format!("{ctx} [loader-reset]"));
                    // run_batch recycles eagerly after each request, so
                    // every report — the first included — carries the
                    // post-run recycle cost and names the path taken.
                    assert!(
                        batched.reset.used_snapshot,
                        "{ctx}: recycled run must report a snapshot reset"
                    );
                    assert!(
                        !loader_batch[i].reset.used_snapshot,
                        "{ctx}: loader-mode run must not report a snapshot reset"
                    );
                }
            }
        }
    }

    /// The same property under the vanilla build: reuse must also be
    /// invisible when no instrumentation or safe store is involved.
    #[test]
    fn vanilla_run_batch_matches_fresh_sessions(
        iters in 1u64..40,
        inputs in proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..24),
            1..4,
        ),
    ) {
        let src = program(iters, 3, 1);
        let build = || {
            Session::builder()
                .source(&src)
                .name("reuse")
                .build()
                .expect("template builds")
        };
        let batch = build().run_batch(inputs.iter());
        for (input, batched) in inputs.iter().zip(&batch) {
            let fresh = build().run(input);
            assert_identical(batched, &fresh, &format!("vanilla input {input:?}"));
        }
    }
}

/// A program whose verdict is input-controlled under PAC: an `X` first
/// byte makes it clobber its sealed callback word through an integer
/// alias, so the next dispatch dies as a PAC authentication failure;
/// any other input runs clean (seal → auth round trip). The per-machine
/// MAC key is derived from the seed, so sealed words — and therefore
/// both verdicts — must be exactly reproducible across every recycling
/// path.
const PAC_VERDICT_SRC: &str = r#"
    long acc;
    void op_add(int v) { acc = acc + v; }
    void (*cb)(int);
    char input[64];
    int main() {
        cb = op_add;
        long n = read_input(input, 63);
        if (n > 0) {
            if (input[0] == 88) {
                long* p = (long*)&cb;
                p[0] = p[0] ^ 255;
            }
        }
        cb(7);
        print_int(acc);
        return 0;
    }
"#;

/// PAC sessions recycle and fork bit-identically: sign/auth counters
/// and PAC trap verdicts replay exactly through copy-on-write snapshot
/// resets, full loader re-boots, and `Session::fork` — for both PAC
/// modes and both engines, on clean and trapping inputs alike.
#[test]
fn pac_verdicts_and_counters_survive_recycling_and_forks() {
    use levee_vm::{ExitStatus, Trap};
    let inputs: [&[u8]; 4] = [b"", b"X", b"hello", b"Xyz"];
    for config in [BuildConfig::Pac, BuildConfig::PacTight] {
        for engine in Engine::all() {
            let build = || {
                Session::builder()
                    .source(PAC_VERDICT_SRC)
                    .name("pac-reuse")
                    .protection(config)
                    .engine(*engine)
                    .build()
                    .expect("template builds")
            };
            let batch = build().run_batch(inputs);
            let mut loader = build();
            loader.reconfigure(|c| c.reset_mode = ResetMode::Loader);
            let loader_batch = loader.run_batch(inputs);
            let mut forker = build();
            forker.precompile();
            for (i, (input, batched)) in inputs.iter().zip(&batch).enumerate() {
                let fresh = build().run(input);
                let ctx = format!("{} engine {} input {input:?}", config.name(), engine.name());
                assert_identical(batched, &fresh, &ctx);
                assert_identical(&loader_batch[i], &fresh, &format!("{ctx} [loader-reset]"));
                let forked = forker.fork().run(input);
                assert_identical(&forked, &fresh, &format!("{ctx} [fork]"));
                // The verdict itself is input-controlled: clobbered
                // sealed words must die as PAC detections, clean runs
                // must seal and authenticate (nonzero counters).
                if input.first() == Some(&b'X') {
                    assert!(
                        matches!(fresh.status, ExitStatus::Trapped(Trap::Pac { .. })),
                        "{ctx}: clobbered callback must fail authentication, got {:?}",
                        fresh.status
                    );
                } else {
                    assert!(fresh.success(), "{ctx}: clean input must exit 0");
                    assert!(
                        fresh.exec.pac_signs > 0 && fresh.exec.pac_auths > 0,
                        "{ctx}: PAC build must sign and authenticate \
                         (signs {}, auths {})",
                        fresh.exec.pac_signs,
                        fresh.exec.pac_auths
                    );
                }
            }
        }
    }
}
