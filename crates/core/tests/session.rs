//! Session-reuse property suite: `Session::run_batch` over N generated
//! inputs must be **bit-identical** to N freshly built sessions — for
//! every counter (status, output, instructions, cycles, checks), across
//! both execution engines, all four safe-pointer-store organizations,
//! and both machine-recycling paths (copy-on-write snapshot restore —
//! the default — and the full loader rebuild).
//!
//! This is the gate on the API redesign's central claim: serving many
//! runs from one resident machine (`Machine::reset` between runs) is
//! observationally indistinguishable from the old
//! build-per-run wiring, so consumers can adopt the cheap path without
//! auditing for state leaks. Programs are generated from a template
//! with proptest-drawn knobs (loop trip counts, array strides, dispatch
//! mix) plus proptest-drawn input payloads, so the machine state the
//! reset must tear down — register files, heap churn, safe-store
//! entries, provenance handles, output buffers — varies case to case.

use levee_core::{BuildConfig, RunReport, Session};
use levee_vm::{Engine, ResetMode, StoreKind};
use proptest::prelude::*;

/// A small program family: input-dependent control flow, array and
/// heap traffic, and function-pointer dispatch (so CPI instrumentation
/// and the safe store are genuinely exercised between resets).
fn program(iters: u64, stride: u64, mix: u64) -> String {
    format!(
        r#"
        long acc;
        void op_add(int v) {{ acc = acc + v; }}
        void op_mul(int v) {{ acc = acc * 3 + v; }}
        void op_xor(int v) {{ acc = acc ^ v; }}
        void (*ops[3])(int) = {{op_add, op_mul, op_xor}};
        long table[32];
        char input[64];

        int main() {{
            long n = read_input(input, 63);
            acc = n;
            long i;
            for (i = 0; i < 32; i = i + 1) {{ table[i] = i * {stride}; }}
            long* heap = (long*)malloc(128);
            for (i = 0; i < {iters}; i = i + 1) {{
                long op = (i + {mix}) % 3;
                ops[op]((int)(table[(i * {stride}) % 32] & 255));
                heap[i % 16] = acc;
                if (n > 0) {{ acc = acc + (long)input[i % n]; }}
            }}
            print_int(acc);
            print_int(heap[7]);
            free((void*)heap);
            return 0;
        }}
    "#
    )
}

/// Every observable the ISSUE names, asserted bit-identical.
fn assert_identical(batch: &RunReport, fresh: &RunReport, ctx: &str) {
    assert_eq!(batch.status, fresh.status, "{ctx}: status diverged");
    assert_eq!(batch.output, fresh.output, "{ctx}: output diverged");
    assert_eq!(
        batch.exec.insts, fresh.exec.insts,
        "{ctx}: instruction counts diverged"
    );
    assert_eq!(
        batch.exec.cycles, fresh.exec.cycles,
        "{ctx}: cycles diverged"
    );
    assert_eq!(
        batch.exec.checks, fresh.exec.checks,
        "{ctx}: check counts diverged"
    );
    // Beyond the ISSUE's five: the rest of the counter set, which
    // costs nothing extra and pins the reset completely.
    assert_eq!(
        (batch.exec.mem_ops, batch.exec.cpi_mem_ops, batch.exec.calls),
        (fresh.exec.mem_ops, fresh.exec.cpi_mem_ops, fresh.exec.calls),
        "{ctx}: memory/call counters diverged"
    );
    assert_eq!(
        (batch.exec.cache_hits, batch.exec.cache_misses),
        (fresh.exec.cache_hits, fresh.exec.cache_misses),
        "{ctx}: cache behaviour diverged"
    );
}

const CASES: u32 = if cfg!(debug_assertions) { 12 } else { 48 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// run_batch(N inputs) ≡ N fresh sessions, engine × store matrix.
    #[test]
    fn run_batch_is_bit_identical_to_fresh_sessions(
        iters in 1u64..40,
        stride in 1u64..7,
        mix in 0u64..3,
        inputs in proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..24),
            1..4,
        ),
    ) {
        let src = program(iters, stride, mix);
        for engine in Engine::all() {
            for store in StoreKind::all() {
                let build = || {
                    Session::builder()
                        .source(&src)
                        .name("reuse")
                        .protection(BuildConfig::Cpi)
                        .engine(*engine)
                        .store(*store)
                        .build()
                        .expect("template builds")
                };
                // The default batch recycles through copy-on-write
                // snapshot resets; a loader-reset twin batch replays
                // the same inputs through the full rebuild path. Both
                // must be bit-identical to fresh sessions — and hence
                // to each other — pinning the snapshot restore as a
                // perfect stand-in for a re-load.
                let batch = build().run_batch(inputs.iter());
                let mut loader = build();
                loader.reconfigure(|c| c.reset_mode = ResetMode::Loader);
                let loader_batch = loader.run_batch(inputs.iter());
                for (i, (input, batched)) in inputs.iter().zip(&batch).enumerate() {
                    let fresh = build().run(input);
                    let ctx = format!(
                        "engine {} store {} input {input:?}",
                        engine.name(),
                        store.name()
                    );
                    assert_identical(batched, &fresh, &ctx);
                    assert_identical(&loader_batch[i], &fresh, &format!("{ctx} [loader-reset]"));
                    // Every run after the first was served off a reset;
                    // the reset-cost report must name the path taken.
                    if i > 0 {
                        assert!(
                            batched.reset.used_snapshot,
                            "{ctx}: recycled run must report a snapshot reset"
                        );
                        assert!(
                            !loader_batch[i].reset.used_snapshot,
                            "{ctx}: loader-mode run must not report a snapshot reset"
                        );
                    }
                }
            }
        }
    }

    /// The same property under the vanilla build: reuse must also be
    /// invisible when no instrumentation or safe store is involved.
    #[test]
    fn vanilla_run_batch_matches_fresh_sessions(
        iters in 1u64..40,
        inputs in proptest::collection::vec(
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..24),
            1..4,
        ),
    ) {
        let src = program(iters, 3, 1);
        let build = || {
            Session::builder()
                .source(&src)
                .name("reuse")
                .build()
                .expect("template builds")
        };
        let batch = build().run_batch(inputs.iter());
        for (input, batched) in inputs.iter().zip(&batch) {
            let fresh = build().run(input);
            assert_identical(batched, &fresh, &format!("vanilla input {input:?}"));
        }
    }
}
