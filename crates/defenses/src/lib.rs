//! # levee-defenses — the baseline defense mechanisms
//!
//! The deployed and academic defenses the paper compares against
//! (Fig. 5, §5.1, §6), implemented as passes over the same IR and
//! executed by the same VM, so security and overhead comparisons are
//! apples-to-apples:
//!
//! * **stack cookies** (StackGuard) — probabilistic return protection,
//!   defeated by non-contiguous writes;
//! * **shadow stack** — precise return protection only;
//! * **CFI** in three granularities ([`levee_ir::CfiPolicy`]) — static
//!   over-approximate target sets, bypassable by redirecting within the
//!   valid set;
//! * **DEP/NX** and **ASLR** — VM-level toggles, packaged here as
//!   [`Deployment`] profiles (e.g. the "modern deployed baseline" of
//!   §5.1's RIPE rows).

use levee_ir::prelude::*;
use levee_vm::VmConfig;

pub mod passes {
    //! The IR-rewriting passes.

    use super::*;

    /// StackGuard-style cookies: every function checks a random canary
    /// between its locals and its return address.
    pub fn stack_cookies(module: &mut Module) {
        for f in &mut module.funcs {
            f.protection.stack_cookie = true;
        }
    }

    /// A shadow stack: return addresses are duplicated out of the
    /// attacker's reach and compared on return.
    pub fn shadow_stack(module: &mut Module) {
        for f in &mut module.funcs {
            f.protection.shadow_stack = true;
        }
    }

    /// Forward-edge CFI: every indirect call checks its target against
    /// the static valid set of `policy`. `ret_check` adds the coarse
    /// backward-edge policy (returns must target some return site).
    pub fn cfi(module: &mut Module, policy: CfiPolicy, ret_check: bool) {
        for f in &mut module.funcs {
            f.protection.ret_cfi = ret_check;
            for block in &mut f.blocks {
                for inst in &mut block.insts {
                    if let Inst::CallIndirect { cfi, .. } = inst {
                        *cfi = Some(policy);
                    }
                }
            }
        }
        module.compute_address_taken();
    }
}

/// A named, reproducible deployment: which passes run and which VM
/// switches are set. One row of the Fig. 5 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deployment {
    /// Nothing at all (pre-2004 legacy: the "vanilla Ubuntu 6.06" RIPE
    /// row).
    Legacy,
    /// DEP/NX only.
    Dep,
    /// The modern deployed baseline: DEP + ASLR + stack cookies
    /// (the "all protections enabled" RIPE row).
    Deployed,
    /// Stack cookies only.
    Cookies,
    /// Shadow stack (plus DEP).
    ShadowStack,
    /// Coarse CFI: any function is a valid indirect target; returns may
    /// target any return site (binCFI/CCFIR-class). Plus DEP.
    CoarseCfi,
    /// Fine-grained static CFI: address-taken functions with matching
    /// type signatures (IFCC/MCFI-class). Plus DEP.
    TypeCfi,
}

impl Deployment {
    /// All deployments, in report order.
    pub fn all() -> &'static [Deployment] {
        &[
            Deployment::Legacy,
            Deployment::Dep,
            Deployment::Cookies,
            Deployment::Deployed,
            Deployment::ShadowStack,
            Deployment::CoarseCfi,
            Deployment::TypeCfi,
        ]
    }

    /// Human-readable name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Deployment::Legacy => "none (legacy)",
            Deployment::Dep => "DEP",
            Deployment::Cookies => "stack cookies",
            Deployment::Deployed => "DEP+ASLR+cookies",
            Deployment::ShadowStack => "shadow stack",
            Deployment::CoarseCfi => "CFI (coarse)",
            Deployment::TypeCfi => "CFI (type-based)",
        }
    }

    /// Applies this deployment's compile-time passes.
    pub fn apply(self, module: &mut Module) {
        match self {
            Deployment::Legacy | Deployment::Dep => {}
            Deployment::Cookies | Deployment::Deployed => passes::stack_cookies(module),
            Deployment::ShadowStack => passes::shadow_stack(module),
            Deployment::CoarseCfi => passes::cfi(module, CfiPolicy::AnyFunction, true),
            Deployment::TypeCfi => passes::cfi(module, CfiPolicy::TypeSignature, true),
        }
    }

    /// This deployment's VM switches on top of `base`.
    pub fn vm_config(self, mut base: VmConfig) -> VmConfig {
        match self {
            Deployment::Legacy => {
                base.nx = false;
                base.aslr = false;
            }
            Deployment::Dep
            | Deployment::Cookies
            | Deployment::ShadowStack
            | Deployment::CoarseCfi
            | Deployment::TypeCfi => {
                base.nx = true;
                base.aslr = false;
            }
            Deployment::Deployed => {
                base.nx = true;
                base.aslr = true;
            }
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levee_minic::compile;

    const SRC: &str = r#"
        void h(int x) { print_int(x); }
        void (*cb)(int);
        int main() { cb = h; cb(1); return 0; }
    "#;

    #[test]
    fn cookie_pass_sets_flags() {
        let mut m = compile(SRC, "t").unwrap();
        passes::stack_cookies(&mut m);
        assert!(m.funcs.iter().all(|f| f.protection.stack_cookie));
    }

    #[test]
    fn cfi_pass_annotates_indirect_calls() {
        let mut m = compile(SRC, "t").unwrap();
        passes::cfi(&mut m, CfiPolicy::TypeSignature, true);
        let mut found = 0;
        for f in &m.funcs {
            assert!(f.protection.ret_cfi);
            for inst in f.iter_insts() {
                if let Inst::CallIndirect { cfi, .. } = inst {
                    assert_eq!(cfi, &Some(CfiPolicy::TypeSignature));
                    found += 1;
                }
            }
        }
        assert_eq!(found, 1);
    }

    #[test]
    fn deployments_run_programs_unchanged() {
        for d in Deployment::all() {
            let mut m = compile(SRC, "t").unwrap();
            d.apply(&mut m);
            let mut session = levee_core::Session::builder()
                .module(m)
                .name("t")
                .vm_config(d.vm_config(VmConfig::default()))
                .build()
                .expect("deployment session builds");
            let out = session
                .run_ok(b"")
                .unwrap_or_else(|e| panic!("{} must not break benign programs: {e}", d.name()));
            assert_eq!(out.output, "1");
        }
    }

    #[test]
    fn deployment_vm_switches() {
        let legacy = Deployment::Legacy.vm_config(VmConfig::default());
        assert!(!legacy.nx && !legacy.aslr);
        let deployed = Deployment::Deployed.vm_config(VmConfig::default());
        assert!(deployed.nx && deployed.aslr);
    }
}
