//! # levee-formal — the Appendix A model, executable
//!
//! A direct transcription of the paper's formal model of CPI: the C
//! subset of Fig. 6, the `sensitive` criterion of Fig. 7, the split
//! environment `E = (S, Mu, Ms)` with the memory operations of Table 5,
//! and the operational-semantics rules of Appendix A — plus the §2
//! adversary (arbitrary regular-memory writes) as a first-class
//! operation.
//!
//! The property the appendix proves on paper is checked here by
//! property-based testing (see `tests/cpi_property.rs`): for arbitrary
//! command sequences interleaved with arbitrary regular-memory
//! corruption, **every indirect call either aborts or transfers to a
//! legitimate control-flow destination** — the CPI property of §3.1.
//!
//! ## Example
//!
//! ```
//! use levee_formal::syntax::{ATy, Cmd, Lhs, Rhs};
//! use levee_formal::semantics::{Env, Outcome};
//! use std::collections::BTreeMap;
//!
//! let mut env = Env::new(
//!     BTreeMap::new(),
//!     &[("g", ATy::fn_ptr())],
//!     &["handler"],
//! );
//! // g = &handler; (*g)();
//! assert_eq!(
//!     env.exec(&Cmd::Assign(Lhs::Var("g".into()), Rhs::AddrFn("handler".into()))),
//!     Outcome::Ok
//! );
//! // The adversary scribbles over g's regular-memory copy…
//! let g_addr = env.vars["g"].1;
//! env.corrupt_regular(g_addr, 0xdeadbeef);
//! // …and the indirect call still reaches the authentic handler.
//! assert_eq!(env.exec(&Cmd::CallIndirect(Lhs::Var("g".into()))), Outcome::Ok);
//! assert!(env.cpi_invariant_holds());
//! ```

pub mod semantics;
pub mod syntax;

pub use semantics::{Env, Loc, Outcome, SafeVal, Val};
pub use syntax::{sensitive_aty, sensitive_pty, ATy, Cmd, Lhs, PTy, Rhs, StructDef};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn env() -> Env {
        let mut structs = BTreeMap::new();
        structs.insert(
            "cb".into(),
            StructDef::new(&[("x", ATy::Int), ("f", ATy::fn_ptr())]),
        );
        Env::new(
            structs,
            &[
                ("x", ATy::Int),
                ("g", ATy::fn_ptr()),
                ("h", ATy::fn_ptr()),
                ("u", ATy::void_ptr()),
                ("ip", ATy::int_ptr()),
                ("cp", ATy::struct_ptr("cb")),
            ],
            &["f0", "f1"],
        )
    }

    #[test]
    fn int_assignment_uses_regular_memory() {
        let mut e = env();
        assert_eq!(
            e.exec(&Cmd::Assign(Lhs::Var("x".into()), Rhs::Int(7))),
            Outcome::Ok
        );
        let addr = e.vars["x"].1;
        assert_eq!(e.readu(addr), 7);
        assert_eq!(e.reads(addr), Some(None)); // Ms untouched
    }

    #[test]
    fn code_pointer_lives_in_safe_memory() {
        let mut e = env();
        e.exec(&Cmd::Assign(Lhs::Var("g".into()), Rhs::AddrFn("f0".into())));
        let addr = e.vars["g"].1;
        let sv = e.reads(addr).unwrap().unwrap();
        assert_eq!(sv.b, sv.e);
        assert_eq!(sv.v, sv.b);
        assert_eq!(e.readu(addr), 0); // regular copy unused
    }

    #[test]
    fn forged_code_pointer_aborts() {
        let mut e = env();
        // u = (void*)1234; g = (f*)u — the cast chain strips safety,
        // so the indirect call aborts.
        e.exec(&Cmd::Assign(Lhs::Var("u".into()), Rhs::Int(1234)));
        e.exec(&Cmd::Assign(
            Lhs::Var("g".into()),
            Rhs::Cast(ATy::fn_ptr(), Box::new(Rhs::Read(Lhs::Var("u".into())))),
        ));
        assert_eq!(
            e.exec(&Cmd::CallIndirect(Lhs::Var("g".into()))),
            Outcome::Abort
        );
        assert!(e.cpi_invariant_holds());
    }

    #[test]
    fn void_star_holds_both_worlds() {
        let mut e = env();
        // u = &f0 → safe value in Ms.
        e.exec(&Cmd::Assign(Lhs::Var("u".into()), Rhs::AddrFn("f0".into())));
        let ua = e.vars["u"].1;
        assert!(e.reads(ua).unwrap().is_some());
        // u = 42 → regular value, none marker in Ms.
        e.exec(&Cmd::Assign(Lhs::Var("u".into()), Rhs::Int(42)));
        assert_eq!(e.reads(ua), Some(None));
        assert_eq!(e.readu(ua), 42);
    }

    #[test]
    fn sensitive_heap_pointer_is_bounds_checked() {
        let mut e = env();
        // ip (int*, insensitive): unchecked writes — memory safety is
        // selective, exactly the point of CPI.
        e.exec(&Cmd::Assign(
            Lhs::Var("ip".into()),
            Rhs::Malloc(Box::new(Rhs::Int(2))),
        ));
        let write = Cmd::Assign(Lhs::Deref(Box::new(Lhs::Var("ip".into()))), Rhs::Int(5));
        assert_eq!(e.exec(&write), Outcome::Ok);

        // cp (struct-with-code-pointer*, sensitive): dereference past
        // the allocation aborts.
        e.exec(&Cmd::Assign(
            Lhs::Var("cp".into()),
            Rhs::Malloc(Box::new(Rhs::Int(2))),
        ));
        e.exec(&Cmd::Assign(
            Lhs::Var("cp".into()),
            Rhs::Add(
                Box::new(Rhs::Read(Lhs::Var("cp".into()))),
                Box::new(Rhs::Int(5)),
            ),
        ));
        let deref = Cmd::Assign(
            Lhs::Arrow(Box::new(Lhs::Var("cp".into())), "x".into()),
            Rhs::Int(1),
        );
        assert_eq!(e.exec(&deref), Outcome::Abort);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut e = env();
        let mut last = Outcome::Ok;
        for _ in 0..200 {
            last = e.exec(&Cmd::Assign(
                Lhs::Var("ip".into()),
                Rhs::Malloc(Box::new(Rhs::Int(60))),
            ));
            if last != Outcome::Ok {
                break;
            }
        }
        assert_eq!(last, Outcome::OutOfMem);
    }

    #[test]
    fn struct_field_sensitivity_is_per_field() {
        let mut e = env();
        e.exec(&Cmd::Assign(
            Lhs::Var("cp".into()),
            Rhs::Malloc(Box::new(Rhs::Int(2))),
        ));
        assert_eq!(
            e.exec(&Cmd::Assign(
                Lhs::Arrow(Box::new(Lhs::Var("cp".into())), "x".into()),
                Rhs::Int(3),
            )),
            Outcome::Ok
        );
        assert_eq!(
            e.exec(&Cmd::Assign(
                Lhs::Arrow(Box::new(Lhs::Var("cp".into())), "f".into()),
                Rhs::AddrFn("f1".into()),
            )),
            Outcome::Ok
        );
        assert_eq!(
            e.exec(&Cmd::CallIndirect(Lhs::Arrow(
                Box::new(Lhs::Var("cp".into())),
                "f".into()
            ))),
            Outcome::Ok
        );
        assert!(e.cpi_invariant_holds());
        assert_eq!(e.called.len(), 1);
    }

    #[test]
    fn adversary_cannot_divert_indirect_calls() {
        let mut e = env();
        e.exec(&Cmd::Assign(Lhs::Var("g".into()), Rhs::AddrFn("f0".into())));
        let ga = e.vars["g"].1;
        // Arbitrary corruption of every regular word the adversary can
        // name, including g's own (unused) regular copy.
        for addr in 0..0x2000u64 {
            e.corrupt_regular(addr, 0xbad);
        }
        e.corrupt_regular(ga, 0xdead);
        assert_eq!(
            e.exec(&Cmd::CallIndirect(Lhs::Var("g".into()))),
            Outcome::Ok
        );
        let f0 = e.funcs["f0"];
        assert_eq!(e.called, vec![f0]);
        assert!(e.cpi_invariant_holds());
    }
}
