//! The operational semantics of Appendix A, executable.
//!
//! The runtime environment is the triple `E = (S, Mu, Ms)`: a variable
//! map, the regular memory `Mu` (addresses → regular values), and the
//! safe memory `Ms` (addresses → safe values with bounds, or the `none`
//! marker). Memory operations follow Table 5; evaluation follows the
//! rules of the appendix:
//!
//! * safe locations of sensitive type read/write `Ms` with bounds
//!   checks — out-of-bounds dereferences `Abort`;
//! * sensitive accesses through *regular* locations `Abort`;
//! * `void*` locations may hold regular values at runtime (the
//!   `none`-marker fallback rules);
//! * indirect calls require a safe code-pointer value, else `Abort`;
//! * regular memory is entirely unchecked — and the adversary may
//!   rewrite it arbitrarily between commands (`corrupt_regular`),
//!   modelling the §2 threat model.

use std::collections::{BTreeMap, BTreeSet};

use crate::syntax::{sensitive_aty, ATy, Cmd, Lhs, PTy, Rhs, StructDef};

/// A safe value: a word with bounds `(b, e)` (Fig. 2's metadata, minus
/// the temporal id — the appendix focuses on spatial safety).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafeVal {
    pub v: u64,
    pub b: u64,
    pub e: u64,
}

/// An evaluated value: safe (with bounds) or regular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    Safe(SafeVal),
    Regular(u64),
}

/// An evaluated location, tagged safe/regular, with the type of the
/// object it designates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loc {
    pub addr: u64,
    pub safe: bool,
    pub ty: ATy,
}

/// Results `r` of the appendix (plus a rule-violation debugging case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Ok,
    Abort,
    OutOfMem,
}

/// The runtime environment `E = (S, Mu, Ms)` plus the code "segment".
pub struct Env {
    pub structs: BTreeMap<String, StructDef>,
    /// `S`: variable → (type, address).
    pub vars: BTreeMap<String, (ATy, u64)>,
    /// `Mu`: regular memory (word-granular).
    pub mu: BTreeMap<u64, u64>,
    /// `Ms`: safe memory; key present ⟺ allocated; `None` = `none`.
    pub ms: BTreeMap<u64, Option<SafeVal>>,
    /// Function name → code address.
    pub funcs: BTreeMap<String, u64>,
    /// The set of legitimate control-flow destinations.
    pub func_addrs: BTreeSet<u64>,
    /// Trace of addresses actually "called" by indirect calls.
    pub called: Vec<u64>,
    next_addr: u64,
    heap_limit: u64,
}

const FUNC_BASE: u64 = 0x100_000;
const VAR_BASE: u64 = 0x1000;
const HEAP_BASE: u64 = 0x10_000;

impl Env {
    /// Builds an environment with the given structs, variables and
    /// function names. Every variable's storage is allocated in *both*
    /// memories (Fig. 2: one of the two copies stays unused).
    pub fn new(
        structs: BTreeMap<String, StructDef>,
        var_decls: &[(&str, ATy)],
        func_names: &[&str],
    ) -> Env {
        let mut vars = BTreeMap::new();
        let mut mu = BTreeMap::new();
        let mut ms = BTreeMap::new();
        let mut addr = VAR_BASE;
        for (name, ty) in var_decls {
            let size = match ty {
                ATy::Ptr(PTy::Struct(s)) => {
                    let _ = s;
                    1
                }
                _ => 1,
            };
            vars.insert(name.to_string(), (ty.clone(), addr));
            for off in 0..size {
                mu.insert(addr + off, 0);
                ms.insert(addr + off, None);
            }
            addr += size;
        }
        let mut funcs = BTreeMap::new();
        let mut func_addrs = BTreeSet::new();
        for (i, f) in func_names.iter().enumerate() {
            let fa = FUNC_BASE + i as u64;
            funcs.insert(f.to_string(), fa);
            func_addrs.insert(fa);
        }
        Env {
            structs,
            vars,
            mu,
            ms,
            funcs,
            func_addrs,
            called: Vec::new(),
            next_addr: HEAP_BASE,
            heap_limit: HEAP_BASE + 4096,
        }
    }

    // ---- Table 5: memory operations ---------------------------------------

    /// `readu Mu l` — unchecked regular read (unallocated reads 0, like
    /// zero pages; the model has no segfaults, only safety violations).
    pub fn readu(&self, l: u64) -> u64 {
        self.mu.get(&l).copied().unwrap_or(0)
    }

    /// `writeu Mu l v`.
    pub fn writeu(&mut self, l: u64, v: u64) {
        self.mu.insert(l, v);
    }

    /// `reads Ms l` — `Some(Some(v))` if allocated and holding a safe
    /// value, `Some(None)` for the `none` marker, `None` if unallocated.
    pub fn reads(&self, l: u64) -> Option<Option<SafeVal>> {
        self.ms.get(&l).copied()
    }

    /// `writes Ms l v(b,e)` — only if allocated (per Table 5).
    pub fn writes(&mut self, l: u64, v: Option<SafeVal>) {
        if let Some(slot) = self.ms.get_mut(&l) {
            *slot = v;
        }
    }

    /// `malloc E i` — allocates in both memories at the same address.
    pub fn malloc(&mut self, words: u64) -> Option<u64> {
        let l = self.next_addr;
        if l + words.max(1) > self.heap_limit {
            return None;
        }
        for off in 0..words.max(1) {
            self.mu.insert(l + off, 0);
            self.ms.insert(l + off, None);
        }
        self.next_addr += words.max(1);
        Some(l)
    }

    /// THE ADVERSARY: arbitrary writes to regular memory only (§2's
    /// threat model; `Ms` is unreachable by construction).
    pub fn corrupt_regular(&mut self, l: u64, v: u64) {
        self.mu.insert(l, v);
    }

    fn sensitive(&self, a: &ATy) -> bool {
        sensitive_aty(a, &self.structs)
    }

    // ---- lhs evaluation ----------------------------------------------------

    /// Evaluates an lhs to a location (`⇒l`), or `Err` with the abort
    /// outcome.
    pub fn eval_lhs(&mut self, lhs: &Lhs) -> Result<Loc, Outcome> {
        match lhs {
            Lhs::Var(x) => {
                let (ty, addr) = self.vars.get(x).cloned().ok_or(Outcome::Abort)?;
                let safe = self.sensitive(&ty);
                Ok(Loc { addr, safe, ty })
            }
            Lhs::Deref(inner) => {
                let loc = self.eval_lhs(inner)?;
                let ATy::Ptr(pointee) = loc.ty.clone() else {
                    return Err(Outcome::Abort);
                };
                let target_ty = match &pointee {
                    PTy::Atomic(a) => (**a).clone(),
                    // Dereferencing a struct pointer designates the
                    // struct; fields are then selected by offset. We
                    // type the bare deref as its first field's type.
                    PTy::Struct(_) => ATy::Int,
                    PTy::Fn | PTy::Void => return Err(Outcome::Abort),
                };
                self.deref_loc(&loc, &pointee, target_ty)
            }
            Lhs::Field(inner, field) | Lhs::Arrow(inner, field) => {
                let base = match lhs {
                    Lhs::Field(..) => self.eval_lhs(inner)?,
                    _ => {
                        // lhs->id ≡ (*lhs).id
                        self.eval_lhs(&Lhs::Deref(inner.clone()))?
                    }
                };
                // The base designates a struct object; find it.
                let sname = match (&base.ty, lhs) {
                    (ATy::Ptr(PTy::Struct(s)), Lhs::Field(..)) => s.clone(),
                    _ => {
                        // For Arrow the inner pointer type named the
                        // struct; recover from the inner lhs type.
                        let inner_loc_ty = self.lhs_static_ty(inner)?;
                        match inner_loc_ty {
                            ATy::Ptr(PTy::Struct(s)) => s,
                            _ => return Err(Outcome::Abort),
                        }
                    }
                };
                let def = self.structs.get(&sname).ok_or(Outcome::Abort)?;
                let (off, fty) = def.fields.get(field).cloned().ok_or(Outcome::Abort)?;
                let safe = self.sensitive(&fty);
                Ok(Loc {
                    addr: base.addr + off,
                    safe,
                    ty: fty,
                })
            }
        }
    }

    /// Static type of an lhs (used to resolve `->` through structs).
    fn lhs_static_ty(&self, lhs: &Lhs) -> Result<ATy, Outcome> {
        match lhs {
            Lhs::Var(x) => self
                .vars
                .get(x)
                .map(|(t, _)| t.clone())
                .ok_or(Outcome::Abort),
            Lhs::Deref(inner) => match self.lhs_static_ty(inner)? {
                ATy::Ptr(PTy::Atomic(a)) => Ok(*a),
                _ => Err(Outcome::Abort),
            },
            Lhs::Field(inner, f) | Lhs::Arrow(inner, f) => {
                let sname = match self.lhs_static_ty(inner)? {
                    ATy::Ptr(PTy::Struct(s)) => s,
                    _ => return Err(Outcome::Abort),
                };
                self.structs
                    .get(&sname)
                    .and_then(|d| d.fields.get(f).map(|(_, t)| t.clone()))
                    .ok_or(Outcome::Abort)
            }
        }
    }

    /// The dereference rules: reading the pointer stored at `loc` and
    /// turning it into the location it designates.
    fn deref_loc(&mut self, loc: &Loc, pointee: &PTy, target_ty: ATy) -> Result<Loc, Outcome> {
        let pointee_sensitive = crate::syntax::sensitive_pty(pointee, &self.structs);
        let width = 1u64; // word-granular model
        if pointee_sensitive || self.sensitive(&loc.ty) {
            // Sensitive pointer: it must live in a safe location.
            if !loc.safe {
                return Err(Outcome::Abort);
            }
            match self.reads(loc.addr) {
                Some(Some(sv)) => {
                    // Bounds check: l' ∈ [b, e - sizeof(a)].
                    if sv.v >= sv.b && sv.v + width <= sv.e {
                        Ok(Loc {
                            addr: sv.v,
                            safe: self.sensitive(&target_ty),
                            ty: target_ty,
                        })
                    } else {
                        Err(Outcome::Abort)
                    }
                }
                // `none` marker: the (universal) pointer currently holds
                // a regular value — read it from Mu; the resulting
                // location is regular.
                Some(None) => {
                    let l2 = self.readu(loc.addr);
                    Ok(Loc {
                        addr: l2,
                        safe: false,
                        ty: target_ty,
                    })
                }
                None => Err(Outcome::Abort),
            }
        } else {
            // Regular pointer: unchecked regular read.
            let l2 = self.readu(loc.addr);
            Ok(Loc {
                addr: l2,
                safe: false,
                ty: target_ty,
            })
        }
    }

    // ---- rhs evaluation ----------------------------------------------------

    /// Evaluates an rhs to a value (`⇒r`).
    pub fn eval_rhs(&mut self, rhs: &Rhs) -> Result<Val, Outcome> {
        match rhs {
            Rhs::Int(i) => Ok(Val::Regular(*i as u64)),
            Rhs::AddrFn(f) => {
                let l = *self.funcs.get(f).ok_or(Outcome::Abort)?;
                // (E, &f) ⇒r (l(l,l), E): exact code destination.
                Ok(Val::Safe(SafeVal { v: l, b: l, e: l }))
            }
            Rhs::Sizeof(p) => {
                let size = match p {
                    PTy::Struct(s) => self.structs.get(s).map(|d| d.size).unwrap_or(0),
                    _ => 1,
                };
                Ok(Val::Regular(size))
            }
            Rhs::Malloc(n) => {
                let (Val::Regular(words) | Val::Safe(SafeVal { v: words, .. })) =
                    self.eval_rhs(n)?;
                match self.malloc(words.min(64)) {
                    Some(l) => Ok(Val::Safe(SafeVal {
                        v: l,
                        b: l,
                        e: l + words.clamp(1, 64),
                    })),
                    None => Err(Outcome::OutOfMem),
                }
            }
            Rhs::Addr(lhs) => {
                let loc = self.eval_lhs(lhs)?;
                // Taking an address yields exact bounds regardless of
                // the location's sensitivity.
                Ok(Val::Safe(SafeVal {
                    v: loc.addr,
                    b: loc.addr,
                    e: loc.addr + 1,
                }))
            }
            Rhs::Add(a, b) => {
                let va = self.eval_rhs(a)?;
                let vb = self.eval_rhs(b)?;
                // Based-on propagation: pointer ± int keeps bounds
                // (case (iv) of the based-on definition).
                Ok(match (va, vb) {
                    (Val::Safe(s), Val::Regular(i)) | (Val::Regular(i), Val::Safe(s)) => {
                        Val::Safe(SafeVal {
                            v: s.v.wrapping_add(i),
                            ..s
                        })
                    }
                    (Val::Regular(x), Val::Regular(y)) => Val::Regular(x.wrapping_add(y)),
                    (Val::Safe(x), Val::Safe(y)) => Val::Regular(x.v.wrapping_add(y.v)),
                })
            }
            Rhs::Cast(a, inner) => {
                let v = self.eval_rhs(inner)?;
                // Casting to a sensitive type keeps safety; casting to a
                // regular type strips it (the appendix's three rules).
                Ok(match (self.sensitive(a), v) {
                    (true, Val::Safe(s)) => Val::Safe(s),
                    (false, Val::Safe(s)) => Val::Regular(s.v),
                    (_, Val::Regular(x)) => Val::Regular(x),
                })
            }
            Rhs::Read(lhs) => {
                let loc = self.eval_lhs(lhs)?;
                if self.sensitive(&loc.ty) {
                    if !loc.safe {
                        return Err(Outcome::Abort);
                    }
                    match self.reads(loc.addr) {
                        Some(Some(sv)) => Ok(Val::Safe(sv)),
                        Some(None) => Ok(Val::Regular(self.readu(loc.addr))),
                        None => Err(Outcome::Abort),
                    }
                } else {
                    Ok(Val::Regular(self.readu(loc.addr)))
                }
            }
        }
    }

    // ---- commands ------------------------------------------------------------

    /// Executes a command (`⇒c`).
    pub fn exec(&mut self, cmd: &Cmd) -> Outcome {
        match cmd {
            Cmd::Seq(a, b) => match self.exec(a) {
                Outcome::Ok => self.exec(b),
                other => other,
            },
            Cmd::Assign(lhs, rhs) => {
                let loc = match self.eval_lhs(lhs) {
                    Ok(l) => l,
                    Err(o) => return o,
                };
                let val = match self.eval_rhs(rhs) {
                    Ok(v) => v,
                    Err(o) => return o,
                };
                if self.sensitive(&loc.ty) {
                    if !loc.safe {
                        // Sensitive store through a regular location.
                        return Outcome::Abort;
                    }
                    match val {
                        Val::Safe(sv) => self.writes(loc.addr, Some(sv)),
                        Val::Regular(v) => {
                            // void*-holding-regular: write Mu, mark none.
                            self.writeu(loc.addr, v);
                            self.writes(loc.addr, None);
                        }
                    }
                } else {
                    let raw = match val {
                        Val::Safe(s) => s.v,
                        Val::Regular(v) => v,
                    };
                    self.writeu(loc.addr, raw);
                }
                Outcome::Ok
            }
            Cmd::CallDirect(f) => {
                if let Some(addr) = self.funcs.get(f) {
                    self.called.push(*addr);
                    Outcome::Ok
                } else {
                    Outcome::Abort
                }
            }
            Cmd::CallIndirect(lhs) => {
                // (E,lhs) ⇒r ls : f* → call; lu : f* → Abort.
                match self.eval_rhs(&Rhs::Read(lhs.clone())) {
                    Ok(Val::Safe(sv)) => {
                        // A safe code pointer must be exact (b = e = v
                        // at creation; arithmetic may have moved v).
                        if self.func_addrs.contains(&sv.v) {
                            self.called.push(sv.v);
                            Outcome::Ok
                        } else {
                            Outcome::Abort
                        }
                    }
                    Ok(Val::Regular(_)) => Outcome::Abort,
                    Err(o) => o,
                }
            }
        }
    }

    /// THE CPI INVARIANT (what the appendix proves): every executed
    /// indirect call targeted a legitimate control-flow destination.
    pub fn cpi_invariant_holds(&self) -> bool {
        self.called.iter().all(|a| self.func_addrs.contains(a))
    }
}
