//! The C subset of Appendix A, Fig. 6, as abstract syntax.
//!
//! ```text
//! Atomic Types    a   ::= int | p*
//! Pointer Types   p   ::= a | s | f | void
//! Struct Types    s   ::= struct { ...; a_i : id_i; ... }
//! LHS Expressions lhs ::= x | *lhs | lhs.id | lhs->id
//! RHS Expressions rhs ::= i | &f | rhs + rhs | lhs | &lhs
//!                       | (a) rhs | sizeof(p) | malloc(rhs)
//! Commands        c   ::= c;c | lhs = rhs | f() | (*lhs)()
//! ```

use std::collections::BTreeMap;

/// Pointee types `p`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PTy {
    /// An atomic type used as a pointee.
    Atomic(Box<ATy>),
    /// A named struct type.
    Struct(String),
    /// A function (code) type.
    Fn,
    /// `void`.
    Void,
}

/// Atomic types `a` — the types of variables and struct fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ATy {
    /// `int`.
    Int,
    /// `p*`.
    Ptr(PTy),
}

impl ATy {
    /// `int*`.
    pub fn int_ptr() -> ATy {
        ATy::Ptr(PTy::Atomic(Box::new(ATy::Int)))
    }

    /// A pointer to a function: `f*`.
    pub fn fn_ptr() -> ATy {
        ATy::Ptr(PTy::Fn)
    }

    /// `void*`.
    pub fn void_ptr() -> ATy {
        ATy::Ptr(PTy::Void)
    }

    /// A pointer to a named struct.
    pub fn struct_ptr(name: &str) -> ATy {
        ATy::Ptr(PTy::Struct(name.to_string()))
    }
}

/// A struct definition: ordered fields of atomic type.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StructDef {
    /// Field name → (offset in words, type). BTreeMap keeps field order
    /// deterministic for layout.
    pub fields: BTreeMap<String, (u64, ATy)>,
    /// Size in words.
    pub size: u64,
}

impl StructDef {
    /// Builds a struct from ordered `(name, type)` pairs; every field
    /// occupies one word (the model is word-granular).
    pub fn new(fields: &[(&str, ATy)]) -> StructDef {
        let mut map = BTreeMap::new();
        for (i, (name, ty)) in fields.iter().enumerate() {
            map.insert(name.to_string(), (i as u64, ty.clone()));
        }
        StructDef {
            size: fields.len() as u64,
            fields: map,
        }
    }
}

/// LHS expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lhs {
    /// A named variable.
    Var(String),
    /// `*lhs`.
    Deref(Box<Lhs>),
    /// `lhs.id` — field of a struct variable (the model folds `.` and
    /// `->` into field-of-location plus deref).
    Field(Box<Lhs>, String),
    /// `lhs->id`.
    Arrow(Box<Lhs>, String),
}

/// RHS expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rhs {
    /// An integer literal.
    Int(i64),
    /// `&f` — taking a function's address (code-pointer birth).
    AddrFn(String),
    /// `rhs + rhs`.
    Add(Box<Rhs>, Box<Rhs>),
    /// Reading an lhs.
    Read(Lhs),
    /// `&lhs`.
    Addr(Lhs),
    /// `(a) rhs` — type cast.
    Cast(ATy, Box<Rhs>),
    /// `sizeof(p)` (in words).
    Sizeof(PTy),
    /// `malloc(rhs)`.
    Malloc(Box<Rhs>),
}

/// Commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// `c ; c`.
    Seq(Box<Cmd>, Box<Cmd>),
    /// `lhs = rhs`.
    Assign(Lhs, Rhs),
    /// Direct call `f()` (a no-op in the model: calls don't transfer
    /// data; what matters is which addresses *may* be called).
    CallDirect(String),
    /// Indirect call `(*lhs)()` — the control transfer CPI protects.
    CallIndirect(Lhs),
}

/// The `sensitive` criterion of Fig. 7.
pub fn sensitive_pty(p: &PTy, structs: &BTreeMap<String, StructDef>) -> bool {
    match p {
        PTy::Void => true,
        PTy::Fn => true,
        PTy::Atomic(a) => sensitive_aty(a, structs),
        PTy::Struct(name) => structs
            .get(name)
            .map(|def| def.fields.values().any(|(_, a)| sensitive_aty(a, structs)))
            .unwrap_or(false),
    }
}

/// `sensitive a`: `sensitive int = false`, `sensitive p* = sensitive p`.
pub fn sensitive_aty(a: &ATy, structs: &BTreeMap<String, StructDef>) -> bool {
    match a {
        ATy::Int => false,
        ATy::Ptr(p) => sensitive_pty(p, structs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_structs() -> BTreeMap<String, StructDef> {
        BTreeMap::new()
    }

    #[test]
    fn fig7_base_cases() {
        let s = no_structs();
        assert!(!sensitive_aty(&ATy::Int, &s));
        assert!(sensitive_aty(&ATy::fn_ptr(), &s));
        assert!(sensitive_aty(&ATy::void_ptr(), &s));
        assert!(!sensitive_aty(&ATy::int_ptr(), &s));
        // f** is sensitive: sensitive p* = sensitive p.
        let fpp = ATy::Ptr(PTy::Atomic(Box::new(ATy::fn_ptr())));
        assert!(sensitive_aty(&fpp, &s));
    }

    #[test]
    fn struct_sensitivity_is_field_disjunction() {
        let mut structs = no_structs();
        structs.insert(
            "cb".into(),
            StructDef::new(&[("x", ATy::Int), ("f", ATy::fn_ptr())]),
        );
        structs.insert("plain".into(), StructDef::new(&[("x", ATy::Int)]));
        assert!(sensitive_pty(&PTy::Struct("cb".into()), &structs));
        assert!(!sensitive_pty(&PTy::Struct("plain".into()), &structs));
        assert!(sensitive_aty(&ATy::struct_ptr("cb"), &structs));
    }

    #[test]
    fn struct_layout_is_word_granular() {
        let def = StructDef::new(&[("a", ATy::Int), ("b", ATy::fn_ptr())]);
        assert_eq!(def.size, 2);
        assert_eq!(def.fields["a"].0, 0);
        assert_eq!(def.fields["b"].0, 1);
    }
}
