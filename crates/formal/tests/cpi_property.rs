//! The CPI property of §3.1 / Appendix A, checked by property-based
//! testing: for arbitrary programs of the modelled C subset, executed
//! with an adversary who may rewrite arbitrary regular memory between
//! any two commands, every indirect call either aborts or transfers
//! control to a legitimate control-flow destination.

use std::collections::BTreeMap;

use levee_formal::{ATy, Cmd, Env, Lhs, Outcome, Rhs, StructDef};
use proptest::prelude::*;

const FN_VARS: [&str; 2] = ["g", "h"];
const FUNCS: [&str; 3] = ["f0", "f1", "f2"];

fn make_env() -> Env {
    let mut structs = BTreeMap::new();
    structs.insert(
        "cb".into(),
        StructDef::new(&[("x", ATy::Int), ("f", ATy::fn_ptr())]),
    );
    Env::new(
        structs,
        &[
            ("x", ATy::Int),
            ("y", ATy::Int),
            ("g", ATy::fn_ptr()),
            ("h", ATy::fn_ptr()),
            ("u", ATy::void_ptr()),
            ("ip", ATy::int_ptr()),
            ("cp", ATy::struct_ptr("cb")),
        ],
        &FUNCS,
    )
}

/// One step of the adversarial game: either a program command or an
/// adversary write to regular memory.
#[derive(Debug, Clone)]
enum Step {
    Program(Cmd),
    Corrupt { addr: u64, val: u64 },
}

fn fn_var() -> impl Strategy<Value = Lhs> {
    prop_oneof![
        proptest::sample::select(FN_VARS.to_vec()).prop_map(|v| Lhs::Var(v.to_string())),
        Just(Lhs::Arrow(Box::new(Lhs::Var("cp".into())), "f".into())),
    ]
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    let func = proptest::sample::select(FUNCS.to_vec());
    prop_oneof![
        // Legitimate code-pointer assignments: g = &f_i, h = g, …
        (fn_var(), func.clone()).prop_map(|(l, f)| Cmd::Assign(l, Rhs::AddrFn(f.to_string()))),
        (fn_var(), fn_var()).prop_map(|(l, r)| Cmd::Assign(l, Rhs::Read(r))),
        // Laundering attempts through integers and void*:
        (fn_var(), any::<u32>()).prop_map(|(l, v)| Cmd::Assign(
            l,
            Rhs::Cast(ATy::fn_ptr(), Box::new(Rhs::Int(v as i64)))
        )),
        (fn_var(),).prop_map(|(l,)| Cmd::Assign(
            l,
            Rhs::Cast(ATy::fn_ptr(), Box::new(Rhs::Read(Lhs::Var("u".into()))))
        )),
        func.clone()
            .prop_map(|f| Cmd::Assign(Lhs::Var("u".into()), Rhs::AddrFn(f.to_string()))),
        any::<u32>().prop_map(|v| Cmd::Assign(Lhs::Var("u".into()), Rhs::Int(v as i64))),
        // Plain data traffic.
        any::<u16>().prop_map(|v| Cmd::Assign(Lhs::Var("x".into()), Rhs::Int(v as i64))),
        (1u64..8).prop_map(|n| Cmd::Assign(
            Lhs::Var("cp".into()),
            Rhs::Malloc(Box::new(Rhs::Int(n as i64)))
        )),
        (1u64..8).prop_map(|n| Cmd::Assign(
            Lhs::Var("ip".into()),
            Rhs::Malloc(Box::new(Rhs::Int(n as i64)))
        )),
        // Pointer arithmetic on the sensitive struct pointer.
        (0i64..16).prop_map(|d| Cmd::Assign(
            Lhs::Var("cp".into()),
            Rhs::Add(
                Box::new(Rhs::Read(Lhs::Var("cp".into()))),
                Box::new(Rhs::Int(d))
            )
        )),
        // Struct field writes (possibly out of bounds → abort is fine).
        func.prop_map(|f| Cmd::Assign(
            Lhs::Arrow(Box::new(Lhs::Var("cp".into())), "f".into()),
            Rhs::AddrFn(f.to_string())
        )),
        // The control transfers under test.
        fn_var().prop_map(Cmd::CallIndirect),
        Just(Cmd::CallDirect("f0".into())),
    ]
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => cmd_strategy().prop_map(Step::Program),
        // The adversary may write anywhere in the regular address space
        // the program uses (variables + heap).
        1 => (0x0u64..0x11_000, any::<u64>())
            .prop_map(|(addr, val)| Step::Corrupt { addr, val }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The headline property: no interleaving of program commands and
    /// regular-memory corruption ever makes an indirect call land on a
    /// non-function address.
    #[test]
    fn cpi_property_holds_under_adversarial_interleaving(
        steps in proptest::collection::vec(step_strategy(), 1..60)
    ) {
        let mut env = make_env();
        for step in &steps {
            match step {
                Step::Program(cmd) => {
                    // Commands may Abort or run out of memory; the model
                    // continues with the next command either way (each
                    // command is one "request" against a fresh trap).
                    let _ = env.exec(cmd);
                }
                Step::Corrupt { addr, val } => env.corrupt_regular(*addr, *val),
            }
            prop_assert!(
                env.cpi_invariant_holds(),
                "indirect call reached a forged destination: {:?}",
                env.called
            );
        }
    }

    /// Corruption-free executions of forging-free programs never abort
    /// on indirect calls through legitimately assigned pointers.
    #[test]
    fn benign_assign_then_call_never_aborts(
        f in proptest::sample::select(FUNCS.to_vec()),
        via in proptest::sample::select(FN_VARS.to_vec()),
    ) {
        let mut env = make_env();
        let assign = Cmd::Assign(Lhs::Var(via.to_string()), Rhs::AddrFn(f.to_string()));
        let call = Cmd::CallIndirect(Lhs::Var(via.to_string()));
        prop_assert_eq!(env.exec(&assign), Outcome::Ok);
        prop_assert_eq!(env.exec(&call), Outcome::Ok);
        prop_assert_eq!(env.called.len(), 1);
        prop_assert_eq!(env.called[0], env.funcs[f]);
    }

    /// Safe-memory isolation: no sequence of adversary writes changes
    /// any safe value (Ms is unreachable from the regular region).
    #[test]
    fn adversary_never_perturbs_safe_memory(
        writes in proptest::collection::vec((0x0u64..0x11_000, any::<u64>()), 1..100)
    ) {
        let mut env = make_env();
        env.exec(&Cmd::Assign(Lhs::Var("g".into()), Rhs::AddrFn("f1".into())));
        let ga = env.vars["g"].1;
        let before = env.reads(ga);
        for (addr, val) in &writes {
            env.corrupt_regular(*addr, *val);
        }
        prop_assert_eq!(env.reads(ga), before);
        prop_assert_eq!(env.exec(&Cmd::CallIndirect(Lhs::Var("g".into()))), Outcome::Ok);
        prop_assert_eq!(*env.called.last().unwrap(), env.funcs["f1"]);
    }
}
