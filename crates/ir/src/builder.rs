//! A convenience builder for constructing functions instruction by
//! instruction, used by the frontend lowering and by tests that
//! hand-assemble IR.

use crate::func::Function;
use crate::inst::{
    BinOp, BlockId, CastKind, CfiPolicy, CmpOp, FuncId, GlobalId, Inst, Intrinsic, MemSpace,
    Operand, StackKind, Terminator, ValueId,
};
use crate::types::{FnSig, StructId, Ty};

/// Builds one [`Function`], tracking a current insertion block.
pub struct FuncBuilder {
    func: Function,
    cur: BlockId,
    sealed: Vec<bool>,
}

impl FuncBuilder {
    /// Starts building a function with the given name and signature.
    /// The insertion point is the entry block.
    pub fn new(name: &str, sig: FnSig) -> Self {
        let func = Function::new(name, sig);
        FuncBuilder {
            func,
            cur: BlockId(0),
            sealed: vec![false],
        }
    }

    /// The parameter register for parameter `i`.
    pub fn param(&self, i: usize) -> ValueId {
        assert!(i < self.func.param_count(), "parameter index out of range");
        ValueId(i as u32)
    }

    /// Creates a new block (does not move the insertion point).
    pub fn new_block(&mut self) -> BlockId {
        self.sealed.push(false);
        self.func.new_block()
    }

    /// Moves the insertion point to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has already been sealed with a terminator.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(!self.sealed[b.0 as usize], "block {b:?} already sealed");
        self.cur = b;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// True if the current block has been sealed with a terminator.
    pub fn current_sealed(&self) -> bool {
        self.sealed[self.cur.0 as usize]
    }

    fn push(&mut self, inst: Inst) {
        assert!(
            !self.sealed[self.cur.0 as usize],
            "appending to sealed block"
        );
        self.func.block_mut(self.cur).insts.push(inst);
    }

    fn fresh(&mut self, ty: Ty) -> ValueId {
        self.func.new_local(ty)
    }

    /// Appends a raw instruction — the escape hatch used by
    /// instrumentation passes and tests that assemble [`Inst::Cpi`] ops
    /// directly.
    pub fn func_mut_push(&mut self, inst: Inst) {
        self.push(inst);
    }

    /// Allocates a fresh virtual register without emitting anything
    /// (paired with [`func_mut_push`](Self::func_mut_push)).
    pub fn fresh_local(&mut self, ty: Ty) -> ValueId {
        self.fresh(ty)
    }

    /// `alloca ty[count]` on the conventional stack.
    pub fn alloca(&mut self, ty: Ty, count: u64) -> ValueId {
        let ptr_ty = match &ty {
            Ty::Array(elem, _) => (**elem).clone().ptr_to(),
            other => other.clone().ptr_to(),
        };
        let dest = self.fresh(ptr_ty);
        self.push(Inst::Alloca {
            dest,
            ty,
            count,
            stack: StackKind::Conventional,
        });
        dest
    }

    /// Typed load.
    pub fn load(&mut self, ptr: impl Into<Operand>, ty: Ty) -> ValueId {
        let dest = self.fresh(ty.clone());
        self.push(Inst::Load {
            dest,
            ptr: ptr.into(),
            ty,
            space: MemSpace::Regular,
        });
        dest
    }

    /// Typed store.
    pub fn store(&mut self, ptr: impl Into<Operand>, value: impl Into<Operand>, ty: Ty) {
        self.push(Inst::Store {
            ptr: ptr.into(),
            value: value.into(),
            ty,
            space: MemSpace::Regular,
        });
    }

    /// `dest = base + index * sizeof(elem) + offset`.
    pub fn gep(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        elem: Ty,
        offset: u64,
    ) -> ValueId {
        let dest = self.fresh(elem.clone().ptr_to());
        self.push(Inst::Gep {
            dest,
            base: base.into(),
            index: index.into(),
            elem,
            offset,
            field_of: None,
        });
        dest
    }

    /// Field address: `&base->field`, recording the struct for analyses.
    pub fn gep_field(
        &mut self,
        base: impl Into<Operand>,
        sid: StructId,
        field_idx: u32,
        field_ty: Ty,
        offset: u64,
    ) -> ValueId {
        let dest = self.fresh(field_ty.clone().ptr_to());
        self.push(Inst::Gep {
            dest,
            base: base.into(),
            index: Operand::Const(0),
            elem: field_ty,
            offset,
            field_of: Some((sid, field_idx)),
        });
        dest
    }

    /// Address of a global.
    pub fn global_addr(&mut self, global: GlobalId, ty: Ty) -> ValueId {
        let dest = self.fresh(ty);
        self.push(Inst::GlobalAddr { dest, global });
        dest
    }

    /// Address of a function (takes a code pointer).
    pub fn func_addr(&mut self, func: FuncId, sig: FnSig) -> ValueId {
        let dest = self.fresh(Ty::fn_ptr(sig));
        self.push(Inst::FuncAddr { dest, func });
        dest
    }

    /// Integer binary operation; result type follows `ty`.
    pub fn bin(
        &mut self,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        ty: Ty,
    ) -> ValueId {
        let dest = self.fresh(ty);
        self.push(Inst::Bin {
            dest,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dest
    }

    /// Integer comparison producing an `i32` 0/1.
    pub fn cmp(&mut self, op: CmpOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> ValueId {
        let dest = self.fresh(Ty::I32);
        self.push(Inst::Cmp {
            dest,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        dest
    }

    /// Cast to `to`.
    pub fn cast(&mut self, kind: CastKind, value: impl Into<Operand>, to: Ty) -> ValueId {
        let dest = self.fresh(to.clone());
        self.push(Inst::Cast {
            dest,
            kind,
            value: value.into(),
            to,
        });
        dest
    }

    /// Direct call.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>, ret: Ty) -> Option<ValueId> {
        let dest = if ret == Ty::Void {
            None
        } else {
            Some(self.fresh(ret))
        };
        self.push(Inst::Call { dest, func, args });
        dest
    }

    /// Indirect call through `callee`.
    pub fn call_indirect(
        &mut self,
        callee: impl Into<Operand>,
        sig: FnSig,
        args: Vec<Operand>,
    ) -> Option<ValueId> {
        let dest = if sig.ret == Ty::Void {
            None
        } else {
            Some(self.fresh(sig.ret.clone()))
        };
        self.push(Inst::CallIndirect {
            dest,
            callee: callee.into(),
            sig,
            args,
            cfi: None::<CfiPolicy>,
        });
        dest
    }

    /// Intrinsic call; `ret` of `Ty::Void` produces no destination.
    pub fn intrinsic(&mut self, which: Intrinsic, args: Vec<Operand>, ret: Ty) -> Option<ValueId> {
        let dest = if ret == Ty::Void {
            None
        } else {
            Some(self.fresh(ret))
        };
        self.push(Inst::IntrinsicCall { dest, which, args });
        dest
    }

    /// Seals the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.seal(Terminator::Br(target));
    }

    /// Seals the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.seal(Terminator::CondBr {
            cond: cond.into(),
            then_bb,
            else_bb,
        });
    }

    /// Seals the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.seal(Terminator::Ret(value));
    }

    /// Seals the current block with `Unreachable`.
    pub fn unreachable(&mut self) {
        self.seal(Terminator::Unreachable);
    }

    fn seal(&mut self, term: Terminator) {
        assert!(
            !self.sealed[self.cur.0 as usize],
            "terminating already-sealed block"
        );
        self.func.block_mut(self.cur).term = term;
        self.sealed[self.cur.0 as usize] = true;
    }

    /// Finishes the function. Unsealed blocks keep their `Unreachable`
    /// terminator (the verifier flags them if they are reachable).
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_branching_function() {
        // int max(int a, int b) { return a > b ? a : b; }
        let mut b = FuncBuilder::new("max", FnSig::new(vec![Ty::I32, Ty::I32], Ty::I32));
        let t = b.new_block();
        let e = b.new_block();
        let c = b.cmp(CmpOp::Gt, b.param(0), b.param(1));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Some(b.param(0).into()));
        b.switch_to(e);
        b.ret(Some(b.param(1).into()));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.inst_count(), 1);
        assert!(matches!(
            f.block(BlockId(0)).term,
            Terminator::CondBr { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn append_after_seal_panics() {
        let mut b = FuncBuilder::new("f", FnSig::new(vec![], Ty::Void));
        b.ret(None);
        b.alloca(Ty::I32, 1);
    }

    #[test]
    fn alloca_of_array_yields_element_pointer() {
        let mut b = FuncBuilder::new("f", FnSig::new(vec![], Ty::Void));
        let p = b.alloca(Ty::Array(Box::new(Ty::I8), 16), 1);
        let f0 = b.finish();
        assert!(f0.local_ty(p).is_char_ptr());
    }

    #[test]
    fn void_call_has_no_dest() {
        let mut b = FuncBuilder::new("f", FnSig::new(vec![], Ty::Void));
        let r = b.intrinsic(Intrinsic::Free, vec![Operand::Const(0)], Ty::Void);
        assert!(r.is_none());
    }
}
