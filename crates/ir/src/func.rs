//! Functions, basic blocks, and per-function protection flags.

use crate::inst::{BlockId, Inst, Terminator, ValueId};
use crate::types::{FnSig, Ty};

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The block's terminator.
    pub term: Terminator,
}

impl BasicBlock {
    /// Creates an empty block terminated by `Unreachable`; the builder
    /// replaces the terminator when the block is sealed.
    pub fn new() -> Self {
        BasicBlock {
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Stack-protection and control-flow-protection state of one function,
/// set by the instrumentation passes in `levee-core` / `levee-defenses`.
///
/// The defaults model a completely unprotected build: the return address
/// sits on the conventional stack in regular memory, adjacent to locals,
/// exactly where a contiguous overflow can reach it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Protection {
    /// StackGuard-style cookie between locals and the return address;
    /// checked on return. Probabilistic, bypassable by non-contiguous
    /// writes (Fig. 5 row "stack cookies").
    pub stack_cookie: bool,
    /// Shadow stack: the return address is duplicated outside attacker
    /// reach and compared on return.
    pub shadow_stack: bool,
    /// The paper's safe stack (§3.2.4): return address, spills and
    /// proven-safe objects live on a stack inside the safe region;
    /// remaining objects live on a separate unsafe stack.
    pub safestack: bool,
    /// Coarse CFI return check: returns must target a return site.
    pub ret_cfi: bool,
}

impl Protection {
    /// True if the return address is stored outside regular memory and
    /// therefore cannot be corrupted at all (as opposed to corruption
    /// being *detected* by cookies/shadow stacks).
    pub fn ret_addr_immune(&self) -> bool {
        self.safestack
    }
}

/// A function definition.
///
/// Virtual registers `0..sig.params.len()` hold the arguments on entry;
/// further registers are allocated by instructions. Execution starts at
/// block 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Source-level name (`main` is the entry point of a module).
    pub name: String,
    /// Parameter and return types.
    pub sig: FnSig,
    /// Types of all virtual registers, including parameters.
    pub locals: Vec<Ty>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Protection flags set by instrumentation passes.
    pub protection: Protection,
    /// Whether this function's address is taken anywhere in the module
    /// (computed by `Module::compute_address_taken`); the target set of
    /// address-taken CFI policies and of CPS's "assigned code pointers"
    /// guarantee.
    pub address_taken: bool,
}

impl Function {
    /// Creates a function with the given name and signature; parameters
    /// become registers `0..params.len()`.
    pub fn new(name: &str, sig: FnSig) -> Self {
        let locals = sig.params.clone();
        Function {
            name: name.to_string(),
            sig,
            locals,
            blocks: vec![BasicBlock::new()],
            protection: Protection::default(),
            address_taken: false,
        }
    }

    /// Allocates a fresh virtual register of type `ty`.
    pub fn new_local(&mut self, ty: Ty) -> ValueId {
        let id = ValueId(self.locals.len() as u32);
        self.locals.push(ty);
        id
    }

    /// Appends a fresh empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new());
        id
    }

    /// Returns the block with the given id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Returns the block with the given id, mutably.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0 as usize]
    }

    /// The type of a virtual register.
    pub fn local_ty(&self, v: ValueId) -> &Ty {
        &self.locals[v.0 as usize]
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.sig.params.len()
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterates over every instruction in the function.
    pub fn iter_insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Iterates over the call-shaped instructions (direct, indirect and
    /// intrinsic calls) in layout order with their `(block, index)`
    /// position.
    ///
    /// Return-site numbering is defined by this order: the VM's loader
    /// assigns return-site addresses to call sites by walking this
    /// iterator, and the bytecode compiler assigns site indices the same
    /// way, so the two always agree on which call gets which site.
    pub fn iter_call_sites(&self) -> impl Iterator<Item = (BlockId, usize, &Inst)> {
        self.iter_blocks().flat_map(|(bid, b)| {
            b.insts
                .iter()
                .enumerate()
                .filter(|(_, inst)| inst.is_call_shaped())
                .map(move |(ip, inst)| (bid, ip, inst))
        })
    }

    /// Total number of instructions (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Operand};

    fn sample() -> Function {
        let mut f = Function::new("f", FnSig::new(vec![Ty::I32, Ty::I32], Ty::I32));
        let d = f.new_local(Ty::I32);
        f.block_mut(BlockId(0)).insts.push(Inst::Bin {
            dest: d,
            op: BinOp::Add,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Value(ValueId(1)),
        });
        f.block_mut(BlockId(0)).term = Terminator::Ret(Some(Operand::Value(d)));
        f
    }

    #[test]
    fn params_are_first_locals() {
        let f = sample();
        assert_eq!(f.param_count(), 2);
        assert_eq!(*f.local_ty(ValueId(0)), Ty::I32);
        assert_eq!(*f.local_ty(ValueId(2)), Ty::I32);
        assert_eq!(f.locals.len(), 3);
    }

    #[test]
    fn entry_block_is_zero() {
        let mut f = sample();
        let b1 = f.new_block();
        assert_eq!(b1, BlockId(1));
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn default_protection_is_unprotected() {
        let p = Protection::default();
        assert!(!p.stack_cookie && !p.shadow_stack && !p.safestack && !p.ret_cfi);
        assert!(!p.ret_addr_immune());
        let safe = Protection {
            safestack: true,
            ..Protection::default()
        };
        assert!(safe.ret_addr_immune());
    }
}
