//! IR instructions, operands and terminators.
//!
//! The instruction set is a register machine over per-function virtual
//! registers ([`ValueId`]). It deliberately mirrors the LLVM subset the
//! Levee passes touch: allocas, typed loads/stores, `getelementptr`-style
//! address arithmetic, casts, direct/indirect calls, and a small libc
//! intrinsic set. Instrumentation passes rewrite plain memory operations
//! into [`CpiOp`]s and set per-instruction [`MemSpace`] tags.

use crate::types::{FnSig, StructId, Ty};

/// A virtual register, local to one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// A basic block identifier, local to one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A function identifier, global to a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A global-variable identifier, global to a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// An instruction operand: a constant or a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// An integer constant (sign bits are interpreted per use-site type).
    Const(i64),
    /// The value of a virtual register.
    Value(ValueId),
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Self {
        Operand::Value(v)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

/// Integer binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division; traps on division by zero.
    Div,
    /// Signed remainder; traps on division by zero.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Logical shift right.
    Shr,
}

/// Integer comparison predicates (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Pointer/integer cast kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastKind {
    /// Pointer-to-pointer cast (includes casts to/from `void*`).
    PtrToPtr,
    /// Pointer to integer.
    PtrToInt,
    /// Integer to pointer. The result carries no valid provenance:
    /// the paper's instrumentation assigns "invalid" metadata here.
    IntToPtr,
    /// Integer width change (truncate / sign-extend as needed).
    IntToInt,
}

/// Which memory a load/store accesses.
///
/// Plain code only ever uses [`MemSpace::Regular`]. Instrumentation tags
/// proven-safe stack accesses as [`MemSpace::SafeStack`]; the safe
/// pointer store is reached only through [`CpiOp`]s. The VM enforces the
/// isolation invariant of §3.2.3: regular operations can never touch the
/// safe region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemSpace {
    /// Ordinary process memory; unchecked, attacker-corruptible.
    #[default]
    Regular,
    /// The safe stack inside the safe region; statically proven safe.
    SafeStack,
}

/// Which stack an alloca lives on once the safe-stack pass has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StackKind {
    /// Before the safe-stack pass: the single conventional stack
    /// (regular memory, return address adjacent to locals).
    #[default]
    Conventional,
    /// Proven-safe object: placed on the safe stack in the safe region.
    Safe,
    /// Potentially-unsafe object (address escapes, dynamic indexing):
    /// placed on the separate unsafe stack in regular memory.
    Unsafe,
}

/// The libc-like intrinsics the frontend can call.
///
/// `ReadInput` models attacker-controlled input (`read`/`gets`): this is
/// how RIPE-style vulnerabilities introduce corrupted bytes. `System` is
/// the classic return-to-libc target; transferring control to it with
/// attacker-controlled arguments counts as a successful hijack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Malloc,
    Calloc,
    Free,
    Memcpy,
    Memmove,
    Memset,
    Memcmp,
    Strcpy,
    Strncpy,
    Strcat,
    Strncat,
    Strlen,
    Strcmp,
    /// `printf("%d", x)`-style output of one integer.
    PrintInt,
    /// `puts`-style output of a NUL-terminated string.
    PrintStr,
    /// Reads up to `len` attacker-supplied bytes into `buf`; returns the
    /// number of bytes read. The unchecked variant (`len = -1`) models
    /// `gets` and copies the whole attacker payload.
    ReadInput,
    /// Returns the length of the remaining attacker payload.
    InputLen,
    /// Saves the execution context into a `jmp_buf` (a code pointer plus
    /// stack state — sensitive data per §3.2.1).
    Setjmp,
    /// Restores a context saved by `Setjmp`.
    Longjmp,
    /// The `system()` attack target; reaching it via a hijacked transfer
    /// is a successful attack, reaching it legitimately executes no-op.
    System,
    /// Deterministic pseudo-random number (LCG seeded by the VM).
    Rand,
    /// Terminates the program successfully with the given exit code.
    Exit,
    /// Aborts the program (models `abort()`; distinct from CPI traps).
    AbortProg,
}

impl Intrinsic {
    /// The conventional C name, used by the frontend and printer.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Malloc => "malloc",
            Intrinsic::Calloc => "calloc",
            Intrinsic::Free => "free",
            Intrinsic::Memcpy => "memcpy",
            Intrinsic::Memmove => "memmove",
            Intrinsic::Memset => "memset",
            Intrinsic::Memcmp => "memcmp",
            Intrinsic::Strcpy => "strcpy",
            Intrinsic::Strncpy => "strncpy",
            Intrinsic::Strcat => "strcat",
            Intrinsic::Strncat => "strncat",
            Intrinsic::Strlen => "strlen",
            Intrinsic::Strcmp => "strcmp",
            Intrinsic::PrintInt => "print_int",
            Intrinsic::PrintStr => "print_str",
            Intrinsic::ReadInput => "read_input",
            Intrinsic::InputLen => "input_len",
            Intrinsic::Setjmp => "setjmp",
            Intrinsic::Longjmp => "longjmp",
            Intrinsic::System => "system",
            Intrinsic::Rand => "rand",
            Intrinsic::Exit => "exit",
            Intrinsic::AbortProg => "abort",
        }
    }

    /// All intrinsics, for name lookup tables.
    pub fn all() -> &'static [Intrinsic] {
        use Intrinsic::*;
        &[
            Malloc, Calloc, Free, Memcpy, Memmove, Memset, Memcmp, Strcpy, Strncpy, Strcat,
            Strncat, Strlen, Strcmp, PrintInt, PrintStr, ReadInput, InputLen, Setjmp, Longjmp,
            System, Rand, Exit, AbortProg,
        ]
    }

    /// Looks an intrinsic up by its C name.
    pub fn by_name(name: &str) -> Option<Intrinsic> {
        Intrinsic::all().iter().copied().find(|i| i.name() == name)
    }

    /// True for the string functions whose `char*` arguments the paper's
    /// heuristic treats as genuine strings rather than universal pointers.
    pub fn is_string_fn(self) -> bool {
        matches!(
            self,
            Intrinsic::Strcpy
                | Intrinsic::Strncpy
                | Intrinsic::Strcat
                | Intrinsic::Strncat
                | Intrinsic::Strlen
                | Intrinsic::Strcmp
                | Intrinsic::PrintStr
        )
    }

    /// True for the memory-manipulation functions that receive
    /// type-specific safe variants under CPI (§3.2.2).
    pub fn is_mem_fn(self) -> bool {
        matches!(
            self,
            Intrinsic::Memcpy | Intrinsic::Memmove | Intrinsic::Memset
        )
    }
}

/// Which enforcement policy a [`CpiOp`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Full code-pointer integrity: value + bounds (+ temporal id)
    /// metadata in the safe pointer store, checks on dereference.
    Cpi,
    /// Code-pointer separation: value-only entries for code pointers,
    /// no bounds metadata (§3.3).
    Cps,
    /// SoftBound mode: the `sensitive ≡ true` instantiation of the
    /// Appendix-A semantics — full spatial memory safety baseline.
    SoftBound,
}

/// Runtime intrinsics inserted by the instrumentation passes (§3.2.2).
///
/// These correspond to Levee's `cpi_ptr_store()`, `cpi_ptr_load()`,
/// `cpi_memcpy()` runtime calls. `universal` marks operations on
/// universal pointers (`void*`/`char*`), which must check at runtime
/// whether the value currently held is sensitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpiOp {
    /// Store a sensitive pointer: writes value and metadata to the safe
    /// pointer store, keyed by the pointer's regular-region address.
    PtrStore {
        policy: Policy,
        ptr: Operand,
        value: Operand,
        /// Universal-pointer store: falls back to a regular store when
        /// the stored value has no valid metadata.
        universal: bool,
    },
    /// Load a sensitive pointer: reads value and metadata from the safe
    /// pointer store.
    PtrLoad {
        policy: Policy,
        dest: ValueId,
        ptr: Operand,
        /// Universal-pointer load: falls back to a regular load when the
        /// safe store holds no valid entry for this address.
        universal: bool,
    },
    /// Bounds (+ temporal) check before dereferencing a sensitive
    /// pointer: traps unless `[ptr, ptr+size)` lies within the target
    /// object the pointer is based on.
    Check {
        policy: Policy,
        ptr: Operand,
        size: u64,
    },
    /// Check that an indirect-call target is a genuine code pointer
    /// (its metadata is a control-flow destination).
    FnCheck { policy: Policy, callee: Operand },
    /// Safe variant of `memcpy`/`memmove`: copies regular bytes *and*
    /// transfers safe-pointer-store entries for each pointer-aligned
    /// word (the expensive path noted in §5.2).
    SafeMemcpy {
        policy: Policy,
        dst: Operand,
        src: Operand,
        len: Operand,
        moving: bool,
    },
    /// Safe variant of `memset`: clears any safe-pointer-store entries
    /// covered by the written range.
    SafeMemset {
        policy: Policy,
        dst: Operand,
        byte: Operand,
        len: Operand,
    },
    /// Pointer-authentication sign (the PAC defense family, `levee-pac`):
    /// seals a MAC tag over `(value, ctx)` into the spare high bits of
    /// the 64-bit pointer word. `ctx` is 0 for context-free signing
    /// (`-fpac`) or the storage slot address for per-context binding
    /// (`-fpac-tight`). Inserted before code-pointer stores by
    /// `levee_core::pac`.
    PacSign {
        dest: ValueId,
        value: Operand,
        ctx: Operand,
    },
    /// Pointer-authentication check: recomputes the MAC over the
    /// stripped pointer and `ctx`; yields the raw pointer when the
    /// sealed tag matches and traps (`Trap::Pac`) otherwise. Inserted
    /// after code-pointer loads by `levee_core::pac`.
    PacAuth {
        dest: ValueId,
        value: Operand,
        ctx: Operand,
    },
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Reserve `count` × sizeof(`ty`) bytes of stack storage; yields the
    /// object's address. `stack` is assigned by the safe-stack pass.
    Alloca {
        dest: ValueId,
        ty: Ty,
        count: u64,
        stack: StackKind,
    },
    /// Load a scalar of type `ty` from the address in `ptr`.
    Load {
        dest: ValueId,
        ptr: Operand,
        ty: Ty,
        space: MemSpace,
    },
    /// Store a scalar of type `ty` to the address in `ptr`.
    Store {
        ptr: Operand,
        value: Operand,
        ty: Ty,
        space: MemSpace,
    },
    /// Address arithmetic: `dest = base + index * size_of(elem) + offset`.
    /// `field_of` records the struct whose field is being addressed, when
    /// known, so analyses can recover sub-object structure.
    Gep {
        dest: ValueId,
        base: Operand,
        index: Operand,
        elem: Ty,
        offset: u64,
        field_of: Option<(StructId, u32)>,
    },
    /// Materialize the address of a global.
    GlobalAddr { dest: ValueId, global: GlobalId },
    /// Materialize the address (entry point) of a function: the only
    /// legitimate way a code pointer is born (based-on case (ii)).
    FuncAddr { dest: ValueId, func: FuncId },
    /// Integer arithmetic.
    Bin {
        dest: ValueId,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Integer comparison; yields 0 or 1.
    Cmp {
        dest: ValueId,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Type cast; see [`CastKind`] for provenance behaviour.
    Cast {
        dest: ValueId,
        kind: CastKind,
        value: Operand,
        to: Ty,
    },
    /// Direct call.
    Call {
        dest: Option<ValueId>,
        func: FuncId,
        args: Vec<Operand>,
    },
    /// Indirect call through a function pointer. `cfi` carries the CFI
    /// policy check inserted by the CFI baseline pass, if any.
    CallIndirect {
        dest: Option<ValueId>,
        callee: Operand,
        sig: FnSig,
        args: Vec<Operand>,
        cfi: Option<CfiPolicy>,
    },
    /// Call to a libc-like intrinsic.
    IntrinsicCall {
        dest: Option<ValueId>,
        which: Intrinsic,
        args: Vec<Operand>,
    },
    /// Instrumentation-inserted runtime operation.
    Cpi(CpiOp),
}

/// Granularity of a CFI policy's valid-target sets (§6 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CfiPolicy {
    /// Coarse-grained: any function in the program is a valid target
    /// (the "globally merged target sets" of binCFI/CCFIR).
    AnyFunction,
    /// Medium: any address-taken function.
    AddressTaken,
    /// Fine-grained: address-taken functions with a matching type
    /// signature (the strongest practical static CFI).
    TypeSignature,
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way branch on a non-zero condition.
    CondBr {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Return, with a value unless the function returns `void`.
    Ret(Option<Operand>),
    /// Statically unreachable point; executing it is a VM error.
    Unreachable,
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn dest(&self) -> Option<ValueId> {
        match self {
            Inst::Alloca { dest, .. }
            | Inst::Load { dest, .. }
            | Inst::Gep { dest, .. }
            | Inst::GlobalAddr { dest, .. }
            | Inst::FuncAddr { dest, .. }
            | Inst::Bin { dest, .. }
            | Inst::Cmp { dest, .. }
            | Inst::Cast { dest, .. } => Some(*dest),
            Inst::Call { dest, .. }
            | Inst::CallIndirect { dest, .. }
            | Inst::IntrinsicCall { dest, .. } => *dest,
            Inst::Store { .. } => None,
            Inst::Cpi(op) => match op {
                CpiOp::PtrLoad { dest, .. }
                | CpiOp::PacSign { dest, .. }
                | CpiOp::PacAuth { dest, .. } => Some(*dest),
                _ => None,
            },
        }
    }

    /// All operands read by this instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Inst::Alloca { .. } | Inst::GlobalAddr { .. } | Inst::FuncAddr { .. } => vec![],
            Inst::Load { ptr, .. } => vec![*ptr],
            Inst::Store { ptr, value, .. } => vec![*ptr, *value],
            Inst::Gep { base, index, .. } => vec![*base, *index],
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Cast { value, .. } => vec![*value],
            Inst::Call { args, .. } => args.clone(),
            Inst::CallIndirect { callee, args, .. } => {
                let mut v = vec![*callee];
                v.extend(args.iter().copied());
                v
            }
            Inst::IntrinsicCall { args, .. } => args.clone(),
            Inst::Cpi(op) => match op {
                CpiOp::PtrStore { ptr, value, .. } => vec![*ptr, *value],
                CpiOp::PtrLoad { ptr, .. } => vec![*ptr],
                CpiOp::Check { ptr, .. } => vec![*ptr],
                CpiOp::FnCheck { callee, .. } => vec![*callee],
                CpiOp::SafeMemcpy { dst, src, len, .. } => vec![*dst, *src, *len],
                CpiOp::SafeMemset { dst, byte, len, .. } => vec![*dst, *byte, *len],
                CpiOp::PacSign { value, ctx, .. } | CpiOp::PacAuth { value, ctx, .. } => {
                    vec![*value, *ctx]
                }
            },
        }
    }

    /// True for call-shaped instructions (direct, indirect and intrinsic
    /// calls) — the instructions that get a return-site address assigned
    /// by the VM's loader and the bytecode compiler.
    pub fn is_call_shaped(&self) -> bool {
        matches!(
            self,
            Inst::Call { .. } | Inst::CallIndirect { .. } | Inst::IntrinsicCall { .. }
        )
    }

    /// True if this is a memory operation (load or store, plain or
    /// instrumented) — the denominator of the paper's MO ratios.
    pub fn is_memory_op(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::Cpi(CpiOp::PtrLoad { .. })
                | Inst::Cpi(CpiOp::PtrStore { .. })
        )
    }
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_name_roundtrip() {
        for i in Intrinsic::all() {
            assert_eq!(Intrinsic::by_name(i.name()), Some(*i));
        }
        assert_eq!(Intrinsic::by_name("nonsense"), None);
    }

    #[test]
    fn dest_and_operands() {
        let i = Inst::Bin {
            dest: ValueId(3),
            op: BinOp::Add,
            lhs: Operand::Const(1),
            rhs: Operand::Value(ValueId(2)),
        };
        assert_eq!(i.dest(), Some(ValueId(3)));
        assert_eq!(i.operands().len(), 2);
    }

    #[test]
    fn store_has_no_dest() {
        let i = Inst::Store {
            ptr: Operand::Value(ValueId(0)),
            value: Operand::Const(7),
            ty: Ty::I32,
            space: MemSpace::Regular,
        };
        assert_eq!(i.dest(), None);
        assert!(i.is_memory_op());
    }

    #[test]
    fn cpi_ptr_load_defines_dest() {
        let i = Inst::Cpi(CpiOp::PtrLoad {
            policy: Policy::Cpi,
            dest: ValueId(9),
            ptr: Operand::Value(ValueId(1)),
            universal: false,
        });
        assert_eq!(i.dest(), Some(ValueId(9)));
        assert!(i.is_memory_op());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Br(BlockId(2)).successors(), vec![BlockId(2)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
        let c = Terminator::CondBr {
            cond: Operand::Const(1),
            then_bb: BlockId(0),
            else_bb: BlockId(1),
        };
        assert_eq!(c.successors().len(), 2);
    }

    #[test]
    fn string_and_mem_fn_classification() {
        assert!(Intrinsic::Strcpy.is_string_fn());
        assert!(!Intrinsic::Memcpy.is_string_fn());
        assert!(Intrinsic::Memcpy.is_mem_fn());
        assert!(!Intrinsic::Strlen.is_mem_fn());
    }
}
