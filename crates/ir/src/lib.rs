//! # levee-ir — the typed intermediate representation
//!
//! The IR every Levee component speaks: the mini-C frontend lowers to it,
//! the sensitivity/safe-stack analyses and the CPI/CPS/SafeStack/SoftBound
//! instrumentation passes rewrite it, and the VM executes it.
//!
//! It is a deliberately small, LLVM-shaped register IR:
//!
//! * typed virtual registers per function ([`func::Function::locals`]),
//! * basic blocks with explicit terminators,
//! * typed memory operations carrying a [`inst::MemSpace`] tag so the VM
//!   can enforce safe-region isolation (§3.2.3 of the paper),
//! * a libc-like intrinsic set including the attack surface
//!   (`read_input`, `strcpy`, `system`, `setjmp`/`longjmp`),
//! * the instrumentation intrinsics of §3.2.2 as first-class
//!   instructions ([`inst::CpiOp`]).
//!
//! ## Example
//!
//! ```
//! use levee_ir::prelude::*;
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
//! let buf = b.alloca(Ty::Array(Box::new(Ty::I8), 16), 1);
//! b.intrinsic(Intrinsic::ReadInput, vec![buf.into(), 16.into()], Ty::I64);
//! b.ret(Some(0.into()));
//! m.add_func(b.finish());
//! levee_ir::verify::assert_valid(&m);
//! ```

pub mod builder;
pub mod func;
pub mod inst;
pub mod module;
pub mod printer;
pub mod types;
pub mod verify;

/// Commonly used items, re-exported for downstream crates.
pub mod prelude {
    pub use crate::builder::FuncBuilder;
    pub use crate::func::{BasicBlock, Function, Protection};
    pub use crate::inst::{
        BinOp, BlockId, CastKind, CfiPolicy, CmpOp, CpiOp, FuncId, GlobalId, Inst, Intrinsic,
        MemSpace, Operand, Policy, StackKind, Terminator, ValueId,
    };
    pub use crate::module::{GlobalDef, InitAtom, Module};
    pub use crate::types::{Field, FnSig, StructDef, StructId, Ty, TypeTable, PTR_SIZE};
}

pub use prelude::*;
