//! Modules: the compilation unit holding functions, globals and types.

use std::collections::HashMap;

use crate::inst::{FuncId, GlobalId, Inst};
use crate::types::{Ty, TypeTable};

/// One atom of a global initializer.
///
/// Globals may embed function addresses (jump tables, vtables, opcode
/// dispatch tables) — these are exactly the compiler/linker-generated
/// code pointers §4 ("Binary level functionality") discusses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitAtom {
    /// `size` bytes of a little-endian integer value.
    Int { value: u64, size: u64 },
    /// The address of a function (a code pointer).
    FuncPtr(FuncId),
    /// The address of another global, plus a byte offset.
    GlobalPtr(GlobalId, u64),
    /// Raw bytes (string literals).
    Bytes(Vec<u8>),
    /// `n` zero bytes.
    Zero(u64),
}

impl InitAtom {
    /// Size of this atom in bytes.
    pub fn size(&self) -> u64 {
        match self {
            InitAtom::Int { size, .. } => *size,
            InitAtom::FuncPtr(_) | InitAtom::GlobalPtr(..) => crate::types::PTR_SIZE,
            InitAtom::Bytes(b) => b.len() as u64,
            InitAtom::Zero(n) => *n,
        }
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Source-level name.
    pub name: String,
    /// Value type of the global (its address has type `ty*`).
    pub ty: Ty,
    /// Initializer atoms, laid out consecutively from the global's base.
    /// An empty vector zero-initializes the whole object.
    pub init: Vec<InitAtom>,
    /// Read-only data (string constants, vtables, jump tables). The VM
    /// write-protects these, modelling §4's read-only GOT/jump tables.
    pub read_only: bool,
}

/// A compilation unit.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Module name (diagnostics only).
    pub name: String,
    /// Struct definitions and layout.
    pub types: TypeTable,
    /// Function definitions; `FuncId(i)` indexes this vector.
    pub funcs: Vec<crate::func::Function>,
    /// Global definitions; `GlobalId(i)` indexes this vector.
    pub globals: Vec<GlobalDef>,
    func_by_name: HashMap<String, FuncId>,
    global_by_name: HashMap<String, GlobalId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Adds a function, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate function names.
    pub fn add_func(&mut self, f: crate::func::Function) -> FuncId {
        assert!(
            !self.func_by_name.contains_key(&f.name),
            "duplicate function: {}",
            f.name
        );
        let id = FuncId(self.funcs.len() as u32);
        self.func_by_name.insert(f.name.clone(), id);
        self.funcs.push(f);
        id
    }

    /// Adds a global, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate global names.
    pub fn add_global(&mut self, g: GlobalDef) -> GlobalId {
        assert!(
            !self.global_by_name.contains_key(&g.name),
            "duplicate global: {}",
            g.name
        );
        let id = GlobalId(self.globals.len() as u32);
        self.global_by_name.insert(g.name.clone(), id);
        self.globals.push(g);
        id
    }

    /// Convenience: adds a read-only NUL-terminated string constant.
    pub fn add_string(&mut self, name: &str, text: &str) -> GlobalId {
        let mut bytes = text.as_bytes().to_vec();
        bytes.push(0);
        let n = bytes.len() as u64;
        self.add_global(GlobalDef {
            name: name.to_string(),
            ty: Ty::Array(Box::new(Ty::I8), n),
            init: vec![InitAtom::Bytes(bytes)],
            read_only: true,
        })
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_by_name.get(name).copied()
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_by_name.get(name).copied()
    }

    /// Returns the function with the given id.
    pub fn func(&self, id: FuncId) -> &crate::func::Function {
        &self.funcs[id.0 as usize]
    }

    /// Returns the function with the given id, mutably.
    pub fn func_mut(&mut self, id: FuncId) -> &mut crate::func::Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Returns the global with the given id.
    pub fn global(&self, id: GlobalId) -> &GlobalDef {
        &self.globals[id.0 as usize]
    }

    /// Iterates over `(FuncId, &Function)` pairs.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &crate::func::Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Recomputes the `address_taken` flag of every function by scanning
    /// for [`Inst::FuncAddr`] and function pointers in global
    /// initializers. Must be called after construction and after any
    /// pass that adds or removes address-taking instructions.
    pub fn compute_address_taken(&mut self) {
        let mut taken = vec![false; self.funcs.len()];
        for f in &self.funcs {
            for inst in f.iter_insts() {
                if let Inst::FuncAddr { func, .. } = inst {
                    taken[func.0 as usize] = true;
                }
            }
        }
        for g in &self.globals {
            for atom in &g.init {
                if let InitAtom::FuncPtr(fid) = atom {
                    taken[fid.0 as usize] = true;
                }
            }
        }
        for (f, t) in self.funcs.iter_mut().zip(taken) {
            f.address_taken = t;
        }
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Function;
    use crate::inst::{BlockId, Terminator, ValueId};
    use crate::types::FnSig;

    #[test]
    fn function_and_global_lookup() {
        let mut m = Module::new("t");
        let f = m.add_func(Function::new("main", FnSig::new(vec![], Ty::I32)));
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.func_by_name("missing"), None);
        let g = m.add_string("s", "hi");
        assert_eq!(m.global_by_name("s"), Some(g));
        assert_eq!(m.global(g).init[0].size(), 3); // "hi\0"
        assert!(m.global(g).read_only);
    }

    #[test]
    fn address_taken_via_instruction_and_global() {
        let mut m = Module::new("t");
        let callee = m.add_func(Function::new("callee", FnSig::new(vec![], Ty::Void)));
        let tabled = m.add_func(Function::new("tabled", FnSig::new(vec![], Ty::Void)));
        let plain = m.add_func(Function::new("plain", FnSig::new(vec![], Ty::Void)));
        let mut main = Function::new("main", FnSig::new(vec![], Ty::I32));
        let d = main.new_local(Ty::fn_ptr(FnSig::new(vec![], Ty::Void)));
        main.block_mut(BlockId(0)).insts.push(Inst::FuncAddr {
            dest: d,
            func: callee,
        });
        main.block_mut(BlockId(0)).term = Terminator::Ret(Some(crate::inst::Operand::Const(0)));
        m.add_func(main);
        m.add_global(GlobalDef {
            name: "table".into(),
            ty: Ty::Array(Box::new(Ty::fn_ptr(FnSig::new(vec![], Ty::Void))), 1),
            init: vec![InitAtom::FuncPtr(tabled)],
            read_only: true,
        });
        m.compute_address_taken();
        assert!(m.func(callee).address_taken);
        assert!(m.func(tabled).address_taken);
        assert!(!m.func(plain).address_taken);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new("t");
        m.add_func(Function::new("f", FnSig::new(vec![], Ty::Void)));
        m.add_func(Function::new("f", FnSig::new(vec![], Ty::Void)));
    }

    #[test]
    fn init_atom_sizes() {
        assert_eq!(InitAtom::Int { value: 1, size: 4 }.size(), 4);
        assert_eq!(InitAtom::FuncPtr(FuncId(0)).size(), 8);
        assert_eq!(InitAtom::Zero(16).size(), 16);
        let _ = ValueId(0); // silence unused import in some cfgs
    }
}
