//! Textual IR printer, for diagnostics, golden tests and dumps.
//!
//! The syntax is LLVM-flavoured but simplified; it is write-only (there
//! is no IR parser — the frontend is the only producer of modules).

use std::fmt::Write as _;

use crate::func::Function;
use crate::inst::{BinOp, CastKind, CmpOp, CpiOp, Inst, Operand, Policy, Terminator};
use crate::module::{InitAtom, Module};

fn op_str(op: &Operand) -> String {
    match op {
        Operand::Const(c) => format!("{c}"),
        Operand::Value(v) => format!("%{}", v.0),
    }
}

fn bin_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "sdiv",
        BinOp::Rem => "srem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "lshr",
    }
}

fn cmp_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "slt",
        CmpOp::Le => "sle",
        CmpOp::Gt => "sgt",
        CmpOp::Ge => "sge",
    }
}

fn policy_str(p: Policy) -> &'static str {
    match p {
        Policy::Cpi => "cpi",
        Policy::Cps => "cps",
        Policy::SoftBound => "sb",
    }
}

/// Renders one instruction.
pub fn print_inst(m: &Module, inst: &Inst) -> String {
    match inst {
        Inst::Alloca {
            dest,
            ty,
            count,
            stack,
        } => format!("%{} = alloca {ty} x {count} [{stack:?}]", dest.0),
        Inst::Load {
            dest,
            ptr,
            ty,
            space,
        } => {
            format!("%{} = load {ty}, {} [{space:?}]", dest.0, op_str(ptr))
        }
        Inst::Store {
            ptr,
            value,
            ty,
            space,
        } => {
            format!("store {ty} {}, {} [{space:?}]", op_str(value), op_str(ptr))
        }
        Inst::Gep {
            dest,
            base,
            index,
            elem,
            offset,
            ..
        } => format!(
            "%{} = gep {}, {} x {elem} + {offset}",
            dest.0,
            op_str(base),
            op_str(index)
        ),
        Inst::GlobalAddr { dest, global } => {
            format!("%{} = global_addr @{}", dest.0, m.global(*global).name)
        }
        Inst::FuncAddr { dest, func } => {
            format!("%{} = func_addr @{}", dest.0, m.func(*func).name)
        }
        Inst::Bin { dest, op, lhs, rhs } => format!(
            "%{} = {} {}, {}",
            dest.0,
            bin_str(*op),
            op_str(lhs),
            op_str(rhs)
        ),
        Inst::Cmp { dest, op, lhs, rhs } => format!(
            "%{} = icmp {} {}, {}",
            dest.0,
            cmp_str(*op),
            op_str(lhs),
            op_str(rhs)
        ),
        Inst::Cast {
            dest,
            kind,
            value,
            to,
        } => {
            let k = match kind {
                CastKind::PtrToPtr => "bitcast",
                CastKind::PtrToInt => "ptrtoint",
                CastKind::IntToPtr => "inttoptr",
                CastKind::IntToInt => "intcast",
            };
            format!("%{} = {k} {} to {to}", dest.0, op_str(value))
        }
        Inst::Call { dest, func, args } => {
            let args: Vec<_> = args.iter().map(op_str).collect();
            match dest {
                Some(d) => format!(
                    "%{} = call @{}({})",
                    d.0,
                    m.func(*func).name,
                    args.join(", ")
                ),
                None => format!("call @{}({})", m.func(*func).name, args.join(", ")),
            }
        }
        Inst::CallIndirect {
            dest,
            callee,
            args,
            cfi,
            ..
        } => {
            let args: Vec<_> = args.iter().map(op_str).collect();
            let cfi = match cfi {
                Some(p) => format!(" !cfi({p:?})"),
                None => String::new(),
            };
            match dest {
                Some(d) => format!(
                    "%{} = call_indirect {}({}){cfi}",
                    d.0,
                    op_str(callee),
                    args.join(", ")
                ),
                None => format!("call_indirect {}({}){cfi}", op_str(callee), args.join(", ")),
            }
        }
        Inst::IntrinsicCall { dest, which, args } => {
            let args: Vec<_> = args.iter().map(op_str).collect();
            match dest {
                Some(d) => format!("%{} = @{}({})", d.0, which.name(), args.join(", ")),
                None => format!("@{}({})", which.name(), args.join(", ")),
            }
        }
        Inst::Cpi(op) => match op {
            CpiOp::PtrStore {
                policy,
                ptr,
                value,
                universal,
            } => format!(
                "{}_ptr_store{}({}, {})",
                policy_str(*policy),
                if *universal { "_univ" } else { "" },
                op_str(ptr),
                op_str(value)
            ),
            CpiOp::PtrLoad {
                policy,
                dest,
                ptr,
                universal,
            } => format!(
                "%{} = {}_ptr_load{}({})",
                dest.0,
                policy_str(*policy),
                if *universal { "_univ" } else { "" },
                op_str(ptr)
            ),
            CpiOp::Check { policy, ptr, size } => {
                format!("{}_check({}, {size})", policy_str(*policy), op_str(ptr))
            }
            CpiOp::FnCheck { policy, callee } => {
                format!("{}_fn_check({})", policy_str(*policy), op_str(callee))
            }
            CpiOp::SafeMemcpy {
                policy,
                dst,
                src,
                len,
                moving,
            } => format!(
                "{}_{}({}, {}, {})",
                policy_str(*policy),
                if *moving { "memmove" } else { "memcpy" },
                op_str(dst),
                op_str(src),
                op_str(len)
            ),
            CpiOp::SafeMemset {
                policy,
                dst,
                byte,
                len,
            } => format!(
                "{}_memset({}, {}, {})",
                policy_str(*policy),
                op_str(dst),
                op_str(byte),
                op_str(len)
            ),
            CpiOp::PacSign { dest, value, ctx } => {
                format!("%{} = pac_sign({}, {})", dest.0, op_str(value), op_str(ctx))
            }
            CpiOp::PacAuth { dest, value, ctx } => {
                format!("%{} = pac_auth({}, {})", dest.0, op_str(value), op_str(ctx))
            }
        },
    }
}

/// Renders one function.
pub fn print_func(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<_> = f
        .sig
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %{i}"))
        .collect();
    let mut attrs = Vec::new();
    if f.protection.safestack {
        attrs.push("safestack");
    }
    if f.protection.stack_cookie {
        attrs.push("cookie");
    }
    if f.protection.shadow_stack {
        attrs.push("shadowstack");
    }
    if f.protection.ret_cfi {
        attrs.push("retcfi");
    }
    let attrs = if attrs.is_empty() {
        String::new()
    } else {
        format!(" #[{}]", attrs.join(","))
    };
    let _ = writeln!(
        out,
        "define {} @{}({}){attrs} {{",
        f.sig.ret,
        f.name,
        params.join(", ")
    );
    for (bid, block) in f.iter_blocks() {
        let _ = writeln!(out, "bb{}:", bid.0);
        for inst in &block.insts {
            let _ = writeln!(out, "  {}", print_inst(m, inst));
        }
        let term = match &block.term {
            Terminator::Br(b) => format!("br bb{}", b.0),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => format!("br {} ? bb{} : bb{}", op_str(cond), then_bb.0, else_bb.0),
            Terminator::Ret(Some(v)) => format!("ret {}", op_str(v)),
            Terminator::Ret(None) => "ret void".to_string(),
            Terminator::Unreachable => "unreachable".to_string(),
        };
        let _ = writeln!(out, "  {term}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole module (types, globals, functions).
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for (id, def) in m.types.structs() {
        let fields: Vec<_> = def
            .fields
            .iter()
            .map(|f| format!("{} {} @{}", f.ty, f.name, f.offset))
            .collect();
        let _ = writeln!(
            out,
            "%struct.{} = type {{ {} }} ; \"{}\" size={} align={}",
            id.0,
            fields.join(", "),
            def.name,
            def.size,
            def.align
        );
    }
    for g in &m.globals {
        let atoms: Vec<_> = g
            .init
            .iter()
            .map(|a| match a {
                InitAtom::Int { value, size } => format!("i{}:{value}", size * 8),
                InitAtom::FuncPtr(f) => format!("@{}", m.func(*f).name),
                InitAtom::GlobalPtr(g2, off) => {
                    format!("&@{}+{off}", m.global(*g2).name)
                }
                InitAtom::Bytes(b) => format!("{b:?}"),
                InitAtom::Zero(n) => format!("zero[{n}]"),
            })
            .collect();
        let _ = writeln!(
            out,
            "@{} = {}global {} [{}]",
            g.name,
            if g.read_only { "const " } else { "" },
            g.ty,
            atoms.join(", ")
        );
    }
    for f in &m.funcs {
        out.push('\n');
        out.push_str(&print_func(m, f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Intrinsic;
    use crate::types::{FnSig, Ty};

    #[test]
    fn prints_simple_module() {
        let mut m = Module::new("t");
        m.add_string("greeting", "hello");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        let g = m.global_by_name("greeting").unwrap();
        let p = b.global_addr(g, Ty::I8.ptr_to());
        b.intrinsic(Intrinsic::PrintStr, vec![p.into()], Ty::Void);
        b.ret(Some(Operand::Const(0)));
        m.add_func(b.finish());
        let text = print_module(&m);
        assert!(text.contains("@greeting"));
        assert!(text.contains("define i32 @main()"));
        assert!(text.contains("@print_str(%0)"));
        assert!(text.contains("ret 0"));
    }

    #[test]
    fn prints_protection_attrs() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("f", FnSig::new(vec![], Ty::Void));
        b.ret(None);
        let mut f = b.finish();
        f.protection.safestack = true;
        f.protection.stack_cookie = true;
        m.add_func(f);
        let text = print_module(&m);
        assert!(text.contains("#[safestack,cookie]"));
    }
}
