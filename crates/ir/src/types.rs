//! The IR type system.
//!
//! The type language mirrors the subset of C that the CPI paper's analyses
//! operate on (Fig. 6 of the paper): integers, typed pointers, universal
//! pointers (`void*`), function pointers, structs and arrays. Pointer
//! *element* types are preserved because the sensitivity criterion of
//! Fig. 7 is a predicate over this structure.

use std::collections::HashMap;
use std::fmt;

/// Width of a machine pointer, in bytes. The VM models an x86-64-like
/// machine with a 64-bit flat address space.
pub const PTR_SIZE: u64 = 8;

/// Identifier of a named struct type within a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// A function signature: parameter types and return type.
///
/// Signatures identify indirect-call targets and are the unit over which
/// type-based CFI policies compute their target sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FnSig {
    /// Parameter types, in order.
    pub params: Vec<Ty>,
    /// Return type; [`Ty::Void`] for `void` functions.
    pub ret: Ty,
}

impl FnSig {
    /// Creates a signature from parameter types and a return type.
    pub fn new(params: Vec<Ty>, ret: Ty) -> Self {
        FnSig { params, ret }
    }

    /// A stable hash of the signature, used by type-based CFI policies to
    /// partition indirect-call targets into equivalence classes.
    pub fn type_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// An IR type.
///
/// `Ty` is structural except for [`Ty::Struct`], which names a definition
/// held by the enclosing [`TypeTable`]; this indirection is what lets the
/// recursive `sensitive` criterion handle self-referential structs (e.g.
/// linked lists of function pointers) without infinite recursion.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// The empty type; legal only as a function return type.
    Void,
    /// 8-bit integer (also the `char` type of the frontend).
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer (the `int` type of the frontend).
    I32,
    /// 64-bit integer (also the integer type pointers cast to).
    I64,
    /// A typed data pointer, `T*`.
    Ptr(Box<Ty>),
    /// The universal pointer `void*`: may hold any pointer, sensitive or
    /// not, and is therefore always classified sensitive (Fig. 7).
    VoidPtr,
    /// A pointer to a function with the given signature.
    FnPtr(Box<FnSig>),
    /// A named struct; layout and fields live in the [`TypeTable`].
    Struct(StructId),
    /// A fixed-size array `T[n]`.
    Array(Box<Ty>, u64),
}

impl Ty {
    /// Shorthand for `T*`.
    pub fn ptr_to(self) -> Ty {
        Ty::Ptr(Box::new(self))
    }

    /// Shorthand for a pointer to a function with signature `sig`.
    pub fn fn_ptr(sig: FnSig) -> Ty {
        Ty::FnPtr(Box::new(sig))
    }

    /// Returns true for types that fit in a single virtual register and
    /// can be the value of a [`Load`](crate::inst::Inst::Load) or
    /// [`Store`](crate::inst::Inst::Store).
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64 | Ty::Ptr(_) | Ty::VoidPtr | Ty::FnPtr(_)
        )
    }

    /// Returns true for any pointer-shaped type (data, universal or
    /// function pointer).
    pub fn is_pointer(&self) -> bool {
        matches!(self, Ty::Ptr(_) | Ty::VoidPtr | Ty::FnPtr(_))
    }

    /// Returns true for integer types.
    pub fn is_integer(&self) -> bool {
        matches!(self, Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64)
    }

    /// Returns true if this is the `char*` type. The CPI analysis treats
    /// `char*` as universal unless the string heuristic proves otherwise.
    pub fn is_char_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(inner) if **inner == Ty::I8)
    }

    /// Returns true for the universal pointer types of §3.2.1: `void*`
    /// and `char*`.
    pub fn is_universal_pointer(&self) -> bool {
        matches!(self, Ty::VoidPtr) || self.is_char_ptr()
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::I8 => write!(f, "i8"),
            Ty::I16 => write!(f, "i16"),
            Ty::I32 => write!(f, "i32"),
            Ty::I64 => write!(f, "i64"),
            Ty::Ptr(inner) => write!(f, "{inner}*"),
            Ty::VoidPtr => write!(f, "void*"),
            Ty::FnPtr(sig) => {
                write!(f, "{}(*)(", sig.ret)?;
                for (i, p) in sig.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Ty::Struct(id) => write!(f, "%struct.{}", id.0),
            Ty::Array(elem, n) => write!(f, "[{n} x {elem}]"),
        }
    }
}

/// A field of a struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Source-level field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// Byte offset from the start of the struct, filled in by layout.
    pub offset: u64,
}

/// A named struct definition with computed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Source-level struct name.
    pub name: String,
    /// Fields in declaration order, with offsets assigned.
    pub fields: Vec<Field>,
    /// Total size in bytes, including trailing padding.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Whether the frontend marked this struct `sensitive` (the paper's
    /// `struct ucred` use-case: programmer-annotated sensitive data).
    pub annotated_sensitive: bool,
}

/// The registry of struct definitions for a module, plus layout queries.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    structs: Vec<StructDef>,
    by_name: HashMap<String, StructId>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a struct with the given fields, computing natural C
    /// layout (fields at aligned offsets, size rounded up to alignment).
    ///
    /// # Panics
    ///
    /// Panics if a struct with the same name is already defined.
    pub fn define_struct(&mut self, name: &str, fields: Vec<(String, Ty)>) -> StructId {
        self.define_struct_ext(name, fields, false)
    }

    /// Like [`define_struct`](Self::define_struct) but allows marking the
    /// struct as programmer-annotated sensitive data.
    pub fn define_struct_ext(
        &mut self,
        name: &str,
        fields: Vec<(String, Ty)>,
        annotated_sensitive: bool,
    ) -> StructId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate struct definition: {name}"
        );
        let id = StructId(self.structs.len() as u32);
        // Reserve the slot first so self-referential structs (through
        // pointers only, as in C) can compute their layout.
        self.structs.push(StructDef {
            name: name.to_string(),
            fields: Vec::new(),
            size: 0,
            align: 1,
            annotated_sensitive,
        });
        self.by_name.insert(name.to_string(), id);

        let mut laid_out = Vec::with_capacity(fields.len());
        let mut offset = 0u64;
        let mut align = 1u64;
        for (fname, fty) in fields {
            let fa = self.align_of(&fty);
            let fs = self.size_of(&fty);
            offset = round_up(offset, fa);
            laid_out.push(Field {
                name: fname,
                ty: fty,
                offset,
            });
            offset += fs;
            align = align.max(fa);
        }
        let size = round_up(offset.max(1), align);
        let def = &mut self.structs[id.0 as usize];
        def.fields = laid_out;
        def.size = size;
        def.align = align;
        id
    }

    /// Replaces the fields of an already-declared struct and recomputes
    /// its layout. Supports the frontend's two-phase definition of
    /// self-referential structs (declare empty, then fill).
    pub fn redefine_struct(&mut self, id: StructId, fields: Vec<(String, Ty)>) {
        let mut laid_out = Vec::with_capacity(fields.len());
        let mut offset = 0u64;
        let mut align = 1u64;
        for (fname, fty) in fields {
            let fa = self.align_of(&fty);
            let fs = self.size_of(&fty);
            offset = round_up(offset, fa);
            laid_out.push(Field {
                name: fname,
                ty: fty,
                offset,
            });
            offset += fs;
            align = align.max(fa);
        }
        let size = round_up(offset.max(1), align);
        let def = &mut self.structs[id.0 as usize];
        def.fields = laid_out;
        def.size = size;
        def.align = align;
    }

    /// Looks up a struct by source name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.by_name.get(name).copied()
    }

    /// Returns the definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid struct in this table.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.0 as usize]
    }

    /// Iterates over all struct definitions with their ids.
    pub fn structs(&self) -> impl Iterator<Item = (StructId, &StructDef)> {
        self.structs
            .iter()
            .enumerate()
            .map(|(i, d)| (StructId(i as u32), d))
    }

    /// Size of `ty` in bytes.
    ///
    /// # Panics
    ///
    /// Panics on [`Ty::Void`], which has no size.
    pub fn size_of(&self, ty: &Ty) -> u64 {
        match ty {
            Ty::Void => panic!("void has no size"),
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 => 8,
            Ty::Ptr(_) | Ty::VoidPtr | Ty::FnPtr(_) => PTR_SIZE,
            Ty::Struct(id) => self.struct_def(*id).size,
            Ty::Array(elem, n) => self.size_of(elem) * n,
        }
    }

    /// Alignment of `ty` in bytes.
    pub fn align_of(&self, ty: &Ty) -> u64 {
        match ty {
            Ty::Void => 1,
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 => 8,
            Ty::Ptr(_) | Ty::VoidPtr | Ty::FnPtr(_) => PTR_SIZE,
            Ty::Struct(id) => self.struct_def(*id).align,
            Ty::Array(elem, _) => self.align_of(elem),
        }
    }

    /// Byte offset and type of field `name` in struct `id`.
    pub fn field(&self, id: StructId, name: &str) -> Option<&Field> {
        self.struct_def(id).fields.iter().find(|f| f.name == name)
    }
}

/// Rounds `x` up to the next multiple of `align` (which must be a power
/// of two or any positive integer; this uses plain arithmetic).
pub fn round_up(x: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    x.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_x86_64() {
        let t = TypeTable::new();
        assert_eq!(t.size_of(&Ty::I8), 1);
        assert_eq!(t.size_of(&Ty::I16), 2);
        assert_eq!(t.size_of(&Ty::I32), 4);
        assert_eq!(t.size_of(&Ty::I64), 8);
        assert_eq!(t.size_of(&Ty::VoidPtr), 8);
        assert_eq!(t.size_of(&Ty::I32.ptr_to()), 8);
    }

    #[test]
    fn struct_layout_inserts_padding() {
        let mut t = TypeTable::new();
        let s = t.define_struct(
            "mix",
            vec![
                ("c".into(), Ty::I8),
                ("x".into(), Ty::I64),
                ("s".into(), Ty::I16),
            ],
        );
        let def = t.struct_def(s);
        assert_eq!(def.fields[0].offset, 0);
        assert_eq!(def.fields[1].offset, 8); // padded to 8
        assert_eq!(def.fields[2].offset, 16);
        assert_eq!(def.size, 24); // rounded up to align 8
        assert_eq!(def.align, 8);
    }

    #[test]
    fn nested_struct_layout() {
        let mut t = TypeTable::new();
        let inner = t.define_struct("inner", vec![("a".into(), Ty::I32), ("b".into(), Ty::I32)]);
        let outer = t.define_struct(
            "outer",
            vec![("c".into(), Ty::I8), ("i".into(), Ty::Struct(inner))],
        );
        let def = t.struct_def(outer);
        assert_eq!(def.fields[1].offset, 4); // inner aligns to 4
        assert_eq!(def.size, 12);
    }

    #[test]
    fn self_referential_struct_through_pointer() {
        let mut t = TypeTable::new();
        // Forward declaration pattern: define with a pointer to itself by
        // name lookup after reserving the slot.
        let id = t.define_struct("node", vec![("val".into(), Ty::I64)]);
        // A second struct pointing at the first works fine.
        let id2 = t.define_struct("holder", vec![("n".into(), Ty::Struct(id).ptr_to())]);
        assert_eq!(t.struct_def(id2).size, 8);
    }

    #[test]
    fn array_size() {
        let t = TypeTable::new();
        assert_eq!(t.size_of(&Ty::Array(Box::new(Ty::I32), 10)), 40);
        assert_eq!(t.align_of(&Ty::Array(Box::new(Ty::I64), 3)), 8);
    }

    #[test]
    fn universal_pointer_classification() {
        assert!(Ty::VoidPtr.is_universal_pointer());
        assert!(Ty::I8.ptr_to().is_universal_pointer()); // char*
        assert!(!Ty::I32.ptr_to().is_universal_pointer());
        assert!(!Ty::I8.ptr_to().ptr_to().is_universal_pointer()); // char**
    }

    #[test]
    fn fn_sig_hash_distinguishes_signatures() {
        let a = FnSig::new(vec![Ty::I32], Ty::Void);
        let b = FnSig::new(vec![Ty::I64], Ty::Void);
        assert_ne!(a.type_hash(), b.type_hash());
        assert_eq!(
            a.type_hash(),
            FnSig::new(vec![Ty::I32], Ty::Void).type_hash()
        );
    }

    #[test]
    fn field_lookup() {
        let mut t = TypeTable::new();
        let s = t.define_struct("p", vec![("x".into(), Ty::I32), ("y".into(), Ty::I32)]);
        assert_eq!(t.field(s, "y").unwrap().offset, 4);
        assert!(t.field(s, "z").is_none());
    }

    #[test]
    fn empty_struct_has_size_one() {
        let mut t = TypeTable::new();
        let s = t.define_struct("empty", vec![]);
        assert_eq!(t.struct_def(s).size, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate struct")]
    fn duplicate_struct_panics() {
        let mut t = TypeTable::new();
        t.define_struct("s", vec![]);
        t.define_struct("s", vec![]);
    }
}
