//! The IR verifier: structural and type sanity checks run after the
//! frontend and after every instrumentation pass.
//!
//! Catching malformed IR here (rather than as misbehaviour in the VM)
//! keeps the pass pipeline honest: every pass must leave the module in a
//! verifiable state, mirroring LLVM's `-verify` discipline.

use std::collections::HashSet;

use crate::func::Function;
use crate::inst::{BlockId, Inst, Operand, Terminator, ValueId};
use crate::module::Module;
use crate::types::Ty;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error occurred, if any.
    pub func: Option<String>,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in @{}: {}", name, self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module. Returns all errors found (empty = valid).
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for (_, f) in m.iter_funcs() {
        verify_func(m, f, &mut errs);
    }
    if m.func_by_name("main").is_none() {
        errs.push(VerifyError {
            func: None,
            msg: "module has no @main entry point".into(),
        });
    }
    errs
}

/// Verifies a module and panics with a readable report on failure.
/// Intended for tests and pass pipelines.
pub fn assert_valid(m: &Module) {
    let errs = verify_module(m);
    if !errs.is_empty() {
        let report: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        panic!("IR verification failed:\n  {}", report.join("\n  "));
    }
}

fn verify_func(m: &Module, f: &Function, errs: &mut Vec<VerifyError>) {
    let mut err = |msg: String| {
        errs.push(VerifyError {
            func: Some(f.name.clone()),
            msg,
        })
    };

    if f.blocks.is_empty() {
        err("function has no blocks".into());
        return;
    }

    let nlocals = f.locals.len() as u32;
    let nblocks = f.blocks.len() as u32;

    // Every register must be defined before any use in a simple forward
    // walk of reachable blocks (parameters are pre-defined). This is a
    // conservative non-SSA check: a register defined on every path is
    // accepted because lowering only emits forward definitions.
    let mut defined: HashSet<ValueId> = (0..f.param_count() as u32).map(ValueId).collect();
    for (_, block) in f.iter_blocks() {
        for inst in &block.insts {
            if let Some(d) = inst.dest() {
                defined.insert(d);
            }
        }
    }

    for (bid, block) in f.iter_blocks() {
        for inst in &block.insts {
            for op in inst.operands() {
                if let Operand::Value(v) = op {
                    if v.0 >= nlocals {
                        err(format!("bb{}: operand %{} out of range", bid.0, v.0));
                    } else if !defined.contains(&v) {
                        err(format!("bb{}: operand %{} never defined", bid.0, v.0));
                    }
                }
            }
            if let Some(d) = inst.dest() {
                if d.0 >= nlocals {
                    err(format!("bb{}: dest %{} out of range", bid.0, d.0));
                }
            }
            verify_inst(m, f, bid, inst, &mut err);
        }
        match &block.term {
            Terminator::Br(t) => {
                if t.0 >= nblocks {
                    err(format!("bb{}: branch to missing bb{}", bid.0, t.0));
                }
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                for t in [then_bb, else_bb] {
                    if t.0 >= nblocks {
                        err(format!("bb{}: branch to missing bb{}", bid.0, t.0));
                    }
                }
            }
            Terminator::Ret(v) => {
                let returns_value = v.is_some();
                let should = f.sig.ret != Ty::Void;
                if returns_value != should {
                    err(format!(
                        "bb{}: return value presence mismatches signature",
                        bid.0
                    ));
                }
            }
            Terminator::Unreachable => {}
        }
    }
}

fn verify_inst(m: &Module, f: &Function, bid: BlockId, inst: &Inst, err: &mut impl FnMut(String)) {
    match inst {
        Inst::Load { ty, .. } | Inst::Store { ty, .. } if !ty.is_scalar() => {
            err(format!("bb{}: load/store of non-scalar type {ty}", bid.0));
        }
        Inst::Alloca { count, .. } if *count == 0 => {
            err(format!("bb{}: zero-sized alloca", bid.0));
        }
        Inst::Call { func, args, .. } => {
            if func.0 as usize >= m.funcs.len() {
                err(format!(
                    "bb{}: call to missing function id {}",
                    bid.0, func.0
                ));
                return;
            }
            let callee = m.func(*func);
            if callee.param_count() != args.len() {
                err(format!(
                    "bb{}: call to @{} passes {} args, expects {}",
                    bid.0,
                    callee.name,
                    args.len(),
                    callee.param_count()
                ));
            }
        }
        Inst::CallIndirect { sig, args, .. } if sig.params.len() != args.len() => {
            err(format!(
                "bb{}: indirect call passes {} args, signature expects {}",
                bid.0,
                args.len(),
                sig.params.len()
            ));
        }
        Inst::GlobalAddr { global, .. } if global.0 as usize >= m.globals.len() => {
            err(format!("bb{}: missing global id {}", bid.0, global.0));
        }
        Inst::FuncAddr { func, .. } if func.0 as usize >= m.funcs.len() => {
            err(format!("bb{}: missing function id {}", bid.0, func.0));
        }
        Inst::Gep { dest, .. } if !f.local_ty(*dest).is_pointer() => {
            err(format!("bb{}: gep result must be a pointer", bid.0));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::Function;
    use crate::inst::{BinOp, MemSpace};
    use crate::types::FnSig;

    fn module_with_main() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
        b.ret(Some(Operand::Const(0)));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn valid_module_passes() {
        let m = module_with_main();
        assert!(verify_module(&m).is_empty());
        assert_valid(&m);
    }

    #[test]
    fn missing_main_is_flagged() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("not_main", FnSig::new(vec![], Ty::Void));
        b.ret(None);
        m.add_func(b.finish());
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("no @main")));
    }

    #[test]
    fn undefined_operand_is_flagged() {
        let mut m = module_with_main();
        let mut f = Function::new("bad", FnSig::new(vec![], Ty::Void));
        let d = f.new_local(Ty::I32);
        f.blocks[0].insts.push(Inst::Bin {
            dest: d,
            op: BinOp::Add,
            lhs: Operand::Value(ValueId(99)),
            rhs: Operand::Const(1),
        });
        f.blocks[0].term = Terminator::Ret(None);
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("out of range")));
    }

    #[test]
    fn branch_to_missing_block_is_flagged() {
        let mut m = module_with_main();
        let mut f = Function::new("bad", FnSig::new(vec![], Ty::Void));
        f.blocks[0].term = Terminator::Br(BlockId(5));
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("missing bb5")));
    }

    #[test]
    fn ret_mismatch_is_flagged() {
        let mut m = module_with_main();
        let mut f = Function::new("bad", FnSig::new(vec![], Ty::I32));
        f.blocks[0].term = Terminator::Ret(None);
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("mismatches signature")));
    }

    #[test]
    fn non_scalar_load_is_flagged() {
        let mut m = module_with_main();
        let mut f = Function::new("bad", FnSig::new(vec![], Ty::Void));
        let p = f.new_local(Ty::I64);
        let d = f.new_local(Ty::Array(Box::new(Ty::I8), 4));
        f.blocks[0].insts.push(Inst::Load {
            dest: d,
            ptr: Operand::Value(p),
            ty: Ty::Array(Box::new(Ty::I8), 4),
            space: MemSpace::Regular,
        });
        f.blocks[0].term = Terminator::Ret(None);
        m.add_func(f);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("non-scalar")));
    }

    #[test]
    fn call_arity_mismatch_is_flagged() {
        let mut m = module_with_main();
        let callee = m.add_func({
            let mut b = FuncBuilder::new("callee", FnSig::new(vec![Ty::I32], Ty::Void));
            b.ret(None);
            b.finish()
        });
        let mut b = FuncBuilder::new("caller", FnSig::new(vec![], Ty::Void));
        b.call(callee, vec![], Ty::Void);
        b.ret(None);
        m.add_func(b.finish());
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("passes 0 args")));
    }
}
