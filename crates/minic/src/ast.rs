//! The mini-C abstract syntax tree.

/// A source-level type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTy {
    Void,
    /// 8-bit `char`.
    Char,
    /// 16-bit `short`.
    Short,
    /// 32-bit `int`.
    Int,
    /// 64-bit `long`.
    Long,
    /// `T*`. `Ptr(Void)` is the universal `void*`.
    Ptr(Box<CTy>),
    /// `T[n]`.
    Array(Box<CTy>, u64),
    /// `struct name`.
    Struct(String),
    /// `ret (*)(params)` — a function pointer.
    FnPtr(Vec<CTy>, Box<CTy>),
}

impl CTy {
    /// `T*`.
    pub fn ptr(self) -> CTy {
        CTy::Ptr(Box::new(self))
    }
}

/// A struct declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    pub name: String,
    pub fields: Vec<(String, CTy)>,
    /// Marked with `__sensitive` (the paper's annotated sensitive data,
    /// e.g. FreeBSD's `struct ucred`).
    pub sensitive: bool,
    /// A forward declaration (`struct name;`): reserves the name so
    /// pointers to it can appear before the definition.
    pub forward: bool,
    pub line: u32,
}

/// A global-variable initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Init {
    Int(i64),
    Str(String),
    /// A function or global name (address-of is implicit, as in C
    /// initializers like `void (*h)(int) = handler;`).
    Ident(String),
    List(Vec<Init>),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    pub name: String,
    pub ty: CTy,
    pub init: Option<Init>,
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    pub name: String,
    pub params: Vec<(String, CTy)>,
    pub ret: CTy,
    pub body: Block,
    pub line: u32,
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration, e.g. `int x = 3;` or `char buf[64];`.
    Decl {
        name: String,
        ty: CTy,
        init: Option<Expr>,
        line: u32,
    },
    Expr(Expr),
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    While {
        cond: Expr,
        body: Block,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Block,
    },
    Return(Option<Expr>, u32),
    Break(u32),
    Continue(u32),
    Block(Block),
}

/// Binary operators (no assignment; that is [`ExprKind::Assign`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuit `&&`.
    LogAnd,
    /// Short-circuit `||`.
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    Not,
    /// Bitwise not (`~`).
    BitNot,
    /// Pointer dereference (`*`).
    Deref,
    /// Address-of (`&`).
    Addr,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    IntLit(i64),
    CharLit(u8),
    StrLit(String),
    Ident(String),
    Assign(Box<Expr>, Box<Expr>),
    Bin(BinKind, Box<Expr>, Box<Expr>),
    Unary(UnKind, Box<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` or `base->field` (`arrow`).
    Member(Box<Expr>, String, bool),
    /// `callee(args)`; `callee` may name a function/intrinsic (direct
    /// call) or evaluate to a function pointer (indirect call).
    Call(Box<Expr>, Vec<Expr>),
    Cast(CTy, Box<Expr>),
    Sizeof(CTy),
}

impl Expr {
    /// Convenience constructor.
    pub fn new(kind: ExprKind, line: u32) -> Self {
        Expr { kind, line }
    }
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    pub structs: Vec<StructDecl>,
    pub globals: Vec<GlobalDecl>,
    pub funcs: Vec<FuncDecl>,
}
