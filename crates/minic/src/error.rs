//! Compilation errors with line information.

use std::fmt;

/// Compilation phase that produced an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Typecheck,
    Lower,
}

/// A fatal compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Phase that failed.
    pub phase: Phase,
    /// Source line (1-based; 0 when unknown).
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl CompileError {
    pub(crate) fn lex(line: u32, msg: impl Into<String>) -> Self {
        CompileError {
            phase: Phase::Lex,
            line,
            msg: msg.into(),
        }
    }

    pub(crate) fn parse(line: u32, msg: impl Into<String>) -> Self {
        CompileError {
            phase: Phase::Parse,
            line,
            msg: msg.into(),
        }
    }

    pub(crate) fn ty(line: u32, msg: impl Into<String>) -> Self {
        CompileError {
            phase: Phase::Typecheck,
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} error at line {}: {}",
            self.phase, self.line, self.msg
        )
    }
}

impl std::error::Error for CompileError {}
