//! The mini-C lexer.

use crate::error::CompileError;
use crate::token::{Tok, Token};

/// Lexes `src` into a token stream terminated by [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    macro_rules! push {
        ($kind:expr) => {
            out.push(Token { kind: $kind, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::lex(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match Tok::keyword(word) {
                    Some(kw) => push!(kw),
                    None => push!(Tok::Ident(word.to_string())),
                }
            }
            '0'..='9' => {
                let start = i;
                // Hex literals.
                if c == '0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&src[start + 2..i], 16)
                        .map_err(|_| CompileError::lex(line, "bad hex literal"))?;
                    push!(Tok::IntLit(v));
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| CompileError::lex(line, "bad integer literal"))?;
                    push!(Tok::IntLit(v));
                }
            }
            '\'' => {
                i += 1;
                let (b, adv) = lex_char_escape(bytes, i, line)?;
                i += adv;
                if bytes.get(i) != Some(&b'\'') {
                    return Err(CompileError::lex(line, "unterminated char literal"));
                }
                i += 1;
                push!(Tok::CharLit(b));
            }
            '"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(CompileError::lex(line, "unterminated string")),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let (b, adv) = lex_char_escape(bytes, i, line)?;
                            s.push(b);
                            i += adv;
                        }
                    }
                }
                push!(Tok::StrLit(String::from_utf8_lossy(&s).into_owned()));
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            '.' => {
                push!(Tok::Dot);
                i += 1;
            }
            '+' => {
                push!(Tok::Plus);
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Arrow);
                    i += 2;
                } else {
                    push!(Tok::Minus);
                    i += 1;
                }
            }
            '*' => {
                push!(Tok::Star);
                i += 1;
            }
            '/' => {
                push!(Tok::Slash);
                i += 1;
            }
            '%' => {
                push!(Tok::Percent);
                i += 1;
            }
            '~' => {
                push!(Tok::Tilde);
                i += 1;
            }
            '^' => {
                push!(Tok::Caret);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push!(Tok::AndAnd);
                    i += 2;
                } else {
                    push!(Tok::Amp);
                    i += 1;
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push!(Tok::OrOr);
                    i += 2;
                } else {
                    push!(Tok::Pipe);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'<') {
                    push!(Tok::Shl);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Tok::Shr);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::EqEq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ne);
                    i += 2;
                } else {
                    push!(Tok::Bang);
                    i += 1;
                }
            }
            other => {
                return Err(CompileError::lex(
                    line,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

/// Lexes one (possibly escaped) character; returns (byte, bytes consumed).
fn lex_char_escape(bytes: &[u8], i: usize, line: u32) -> Result<(u8, usize), CompileError> {
    match bytes.get(i) {
        None => Err(CompileError::lex(line, "unterminated literal")),
        Some(b'\\') => {
            let esc = bytes
                .get(i + 1)
                .ok_or_else(|| CompileError::lex(line, "bad escape"))?;
            let b = match esc {
                b'n' => b'\n',
                b't' => b'\t',
                b'r' => b'\r',
                b'0' => 0,
                b'\\' => b'\\',
                b'\'' => b'\'',
                b'"' => b'"',
                other => {
                    return Err(CompileError::lex(
                        line,
                        format!("unknown escape \\{}", *other as char),
                    ))
                }
            };
            Ok((b, 2))
        }
        Some(b) => Ok((*b, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::IntLit(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_maximal_munch() {
        assert_eq!(
            kinds("a->b <= c >> 2 && !d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::Le,
                Tok::Ident("c".into()),
                Tok::Shr,
                Tok::IntLit(2),
                Tok::AndAnd,
                Tok::Bang,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\n" 0x1f"#),
            vec![
                Tok::CharLit(b'a'),
                Tok::CharLit(b'\n'),
                Tok::StrLit("hi\n".into()),
                Tok::IntLit(31),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let toks = lex("// one\n/* two\nthree */ int").unwrap();
        assert_eq!(toks[0].kind, Tok::KwInt);
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("int @").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* no end").is_err());
    }
}
