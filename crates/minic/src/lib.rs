//! # levee-minic — the mini-C frontend
//!
//! A self-contained C-subset compiler frontend standing in for clang in
//! the Levee pipeline: lexer → parser → semantic lowering to
//! [`levee_ir`]. It supports the language features the CPI paper's
//! analyses care about:
//!
//! * typed pointers at every level (`int**`, `char*`, `void*`),
//! * structs with function-pointer members (the C++-vtable idiom the
//!   paper's C++ benchmarks exercise),
//! * function-pointer variables, arrays and parameters (opcode-dispatch
//!   tables à la perlbench),
//! * global initializers embedding function addresses (jump tables),
//! * the libc attack surface (`strcpy`, `read_input`, `system`,
//!   `setjmp`/`longjmp`) as intrinsics,
//! * the `__sensitive` struct annotation (the paper's `struct ucred`
//!   use-case for protecting non-code-pointer data).
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     int add(int a, int b) { return a + b; }
//!     int main() {
//!         print_int(add(40, 2));
//!         return 0;
//!     }
//! "#;
//! let module = levee_minic::compile(src, "demo").unwrap();
//! assert!(module.func_by_name("add").is_some());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::CompileError;

/// Compiles mini-C source into a verified IR module.
pub fn compile(src: &str, name: &str) -> Result<levee_ir::Module, CompileError> {
    let toks = lexer::lex(src)?;
    let prog = parser::parse(toks)?;
    let module = lower::lower(&prog, name)?;
    let errs = levee_ir::verify::verify_module(&module);
    if let Some(e) = errs.first() {
        // A verifier failure after successful lowering is a frontend bug;
        // surface it as an internal lowering error.
        return Err(CompileError {
            phase: error::Phase::Lower,
            line: 0,
            msg: format!("internal: lowered module fails verification: {e}"),
        });
    }
    Ok(module)
}

/// Parses mini-C source to an AST (exposed for tooling and tests).
pub fn parse_source(src: &str) -> Result<ast::Program, CompileError> {
    parser::parse(lexer::lex(src)?)
}
