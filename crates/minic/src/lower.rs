//! Semantic analysis and lowering from the mini-C AST to `levee-ir`.
//!
//! Lowering follows the clang -O0 convention the paper's analyses expect:
//! every local variable (including parameters) gets a stack slot
//! (`alloca`), and all access goes through typed loads/stores. The
//! safe-stack pass later proves most of these slots safe and the
//! sensitivity analysis decides which loads/stores get instrumented —
//! preserving pointer element types through every cast is therefore
//! load-bearing here.
//!
//! Deliberate simplifications (documented mini-C semantics):
//! * integer arithmetic is performed on 64-bit registers; narrowing
//!   happens at stores and explicit casts,
//! * structs must be defined before use (self-reference through
//!   pointers is allowed),
//! * no typedefs, unions, enums, bitfields, varargs or floats.

use std::collections::HashMap;

use levee_ir::prelude::*;

use crate::ast::{self, BinKind, CTy, Expr, ExprKind, Init, Program, Stmt, UnKind};
use crate::error::CompileError;

/// Lowers a parsed program into an IR module named `name`.
pub fn lower(prog: &Program, name: &str) -> Result<Module, CompileError> {
    let mut cx = Cx {
        module: Module::new(name),
        funcs: HashMap::new(),
        globals: HashMap::new(),
        strings: HashMap::new(),
        struct_sensitive: HashMap::new(),
        incomplete: std::collections::HashSet::new(),
    };
    cx.declare_structs(prog)?;
    cx.declare_functions(prog)?;
    cx.declare_globals(prog)?;
    for f in &prog.funcs {
        cx.lower_function(f)?;
    }
    cx.module.compute_address_taken();
    Ok(cx.module)
}

/// Module-level lowering context.
struct Cx {
    module: Module,
    /// Function name → (id, param types, return type).
    funcs: HashMap<String, (FuncId, Vec<CTy>, CTy)>,
    /// Global name → (id, source type).
    globals: HashMap<String, (GlobalId, CTy)>,
    /// Interned string literals.
    strings: HashMap<String, GlobalId>,
    /// Struct name → `__sensitive` annotation.
    struct_sensitive: HashMap<String, bool>,
    /// Struct names declared forward but not yet defined.
    incomplete: std::collections::HashSet<String>,
}

impl Cx {
    // ---- declarations -------------------------------------------------------

    fn declare_structs(&mut self, prog: &Program) -> Result<(), CompileError> {
        // First pass: reserve a slot for every struct name (definitions
        // and forward declarations alike), so pointers to
        // not-yet-defined structs resolve.
        for s in &prog.structs {
            match self.module.types.struct_by_name(&s.name) {
                None => {
                    self.module
                        .types
                        .define_struct_ext(&s.name, vec![], s.sensitive);
                    self.struct_sensitive.insert(s.name.clone(), s.sensitive);
                    self.incomplete.insert(s.name.clone());
                }
                Some(_) if s.forward => {} // repeat forward decls are fine
                Some(_) if self.incomplete.contains(&s.name) => {}
                Some(_) => {
                    return Err(CompileError::ty(
                        s.line,
                        format!("duplicate struct {}", s.name),
                    ));
                }
            }
        }
        // Second pass: fill in field layouts for real definitions.
        for s in &prog.structs {
            if s.forward {
                continue;
            }
            let own_id = self
                .module
                .types
                .struct_by_name(&s.name)
                .expect("reserved in first pass");
            if !self.incomplete.remove(&s.name) {
                return Err(CompileError::ty(
                    s.line,
                    format!("duplicate struct {}", s.name),
                ));
            }
            let mut converted = Vec::new();
            for (fname, fty) in &s.fields {
                let ty = self.cty_to_ir_with_self(fty, &s.name, s.line)?;
                converted.push((fname.clone(), ty));
            }
            self.module.types.redefine_struct(own_id, converted);
        }
        Ok(())
    }

    fn declare_functions(&mut self, prog: &Program) -> Result<(), CompileError> {
        for f in &prog.funcs {
            if self.funcs.contains_key(&f.name) {
                return Err(CompileError::ty(
                    f.line,
                    format!("duplicate function {}", f.name),
                ));
            }
            if Intrinsic::by_name(&f.name).is_some() {
                return Err(CompileError::ty(
                    f.line,
                    format!("{} shadows a libc intrinsic", f.name),
                ));
            }
            let params: Vec<Ty> = f
                .params
                .iter()
                .map(|(_, t)| self.cty_to_ir(&self.decay(t.clone()), f.line))
                .collect::<Result<_, _>>()?;
            let ret = self.cty_to_ir(&f.ret, f.line)?;
            let id = self
                .module
                .add_func(Function::new(&f.name, FnSig::new(params, ret)));
            self.funcs.insert(
                f.name.clone(),
                (
                    id,
                    f.params
                        .iter()
                        .map(|(_, t)| self.decay(t.clone()))
                        .collect(),
                    f.ret.clone(),
                ),
            );
        }
        Ok(())
    }

    fn declare_globals(&mut self, prog: &Program) -> Result<(), CompileError> {
        for g in &prog.globals {
            let ir_ty = self.cty_to_ir(&g.ty, g.line)?;
            let init = match &g.init {
                None => Vec::new(),
                Some(i) => self.global_init(&g.ty, i, g.line)?,
            };
            let id = self.module.add_global(GlobalDef {
                name: g.name.clone(),
                ty: ir_ty,
                init,
                read_only: false,
            });
            self.globals.insert(g.name.clone(), (id, g.ty.clone()));
        }
        Ok(())
    }

    fn global_init(
        &mut self,
        ty: &CTy,
        init: &Init,
        line: u32,
    ) -> Result<Vec<InitAtom>, CompileError> {
        let atom_err = |msg: &str| Err(CompileError::ty(line, format!("bad initializer: {msg}")));
        match (ty, init) {
            (CTy::Char | CTy::Short | CTy::Int | CTy::Long, Init::Int(v)) => {
                let size = scalar_size(ty);
                Ok(vec![InitAtom::Int {
                    value: *v as u64,
                    size,
                }])
            }
            (CTy::Ptr(_), Init::Int(0)) => Ok(vec![InitAtom::Int { value: 0, size: 8 }]),
            (CTy::Array(elem, n), Init::Str(s)) if **elem == CTy::Char => {
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                if bytes.len() as u64 > *n {
                    return atom_err("string longer than array");
                }
                let pad = *n - bytes.len() as u64;
                let mut atoms = vec![InitAtom::Bytes(bytes)];
                if pad > 0 {
                    atoms.push(InitAtom::Zero(pad));
                }
                Ok(atoms)
            }
            (CTy::Ptr(inner), Init::Str(s)) if **inner == CTy::Char => {
                let sid = self.intern_string(s);
                Ok(vec![InitAtom::GlobalPtr(sid, 0)])
            }
            (CTy::FnPtr(..), Init::Ident(fname)) => {
                let (fid, _, _) = self
                    .funcs
                    .get(fname)
                    .ok_or_else(|| CompileError::ty(line, format!("unknown function {fname}")))?;
                Ok(vec![InitAtom::FuncPtr(*fid)])
            }
            (CTy::Ptr(_), Init::Ident(gname)) => {
                let (gid, _) = self
                    .globals
                    .get(gname)
                    .ok_or_else(|| CompileError::ty(line, format!("unknown global {gname}")))?;
                Ok(vec![InitAtom::GlobalPtr(*gid, 0)])
            }
            (CTy::Array(elem, n), Init::List(items)) => {
                if items.len() as u64 > *n {
                    return atom_err("too many elements");
                }
                let mut atoms = Vec::new();
                for item in items {
                    atoms.extend(self.global_init(elem, item, line)?);
                }
                let elem_size = self.sizeof(elem, line)?;
                let pad = (*n - items.len() as u64) * elem_size;
                if pad > 0 {
                    atoms.push(InitAtom::Zero(pad));
                }
                Ok(atoms)
            }
            (CTy::Struct(sname), Init::List(items)) => {
                let sid = self
                    .module
                    .types
                    .struct_by_name(sname)
                    .ok_or_else(|| CompileError::ty(line, format!("unknown struct {sname}")))?;
                let def = self.module.types.struct_def(sid).clone();
                if items.len() > def.fields.len() {
                    return atom_err("too many fields");
                }
                let mut atoms = Vec::new();
                let mut off = 0u64;
                for (field, item) in def.fields.iter().zip(items) {
                    if field.offset > off {
                        atoms.push(InitAtom::Zero(field.offset - off));
                        off = field.offset;
                    }
                    let fty = self.ir_to_cty_approx(&field.ty);
                    let sub = self.global_init(&fty, item, line)?;
                    off += sub.iter().map(|a| a.size()).sum::<u64>();
                    atoms.extend(sub);
                }
                if def.size > off {
                    atoms.push(InitAtom::Zero(def.size - off));
                }
                Ok(atoms)
            }
            _ => atom_err("unsupported type/initializer combination"),
        }
    }

    fn intern_string(&mut self, s: &str) -> GlobalId {
        if let Some(id) = self.strings.get(s) {
            return *id;
        }
        let name = format!(".str.{}", self.strings.len());
        let id = self.module.add_string(&name, s);
        self.strings.insert(s.to_string(), id);
        id
    }

    // ---- types ---------------------------------------------------------------

    /// Array-to-pointer decay for parameter types.
    fn decay(&self, ty: CTy) -> CTy {
        match ty {
            CTy::Array(elem, _) => CTy::Ptr(elem),
            other => other,
        }
    }

    fn cty_to_ir(&self, ty: &CTy, line: u32) -> Result<Ty, CompileError> {
        self.cty_rec(ty, "", true, line)
    }

    fn cty_to_ir_with_self(
        &self,
        ty: &CTy,
        self_name: &str,
        line: u32,
    ) -> Result<Ty, CompileError> {
        self.cty_rec(ty, self_name, true, line)
    }

    /// Recursive conversion; `by_value` is false under pointers, where
    /// self-reference is legal.
    fn cty_rec(
        &self,
        ty: &CTy,
        self_name: &str,
        by_value: bool,
        line: u32,
    ) -> Result<Ty, CompileError> {
        Ok(match ty {
            CTy::Void => Ty::Void,
            CTy::Char => Ty::I8,
            CTy::Short => Ty::I16,
            CTy::Int => Ty::I32,
            CTy::Long => Ty::I64,
            CTy::Ptr(inner) if **inner == CTy::Void => Ty::VoidPtr,
            CTy::Ptr(inner) => self.cty_rec(inner, self_name, false, line)?.ptr_to(),
            CTy::Array(elem, n) => {
                Ty::Array(Box::new(self.cty_rec(elem, self_name, by_value, line)?), *n)
            }
            CTy::Struct(name) => {
                let id = self.module.types.struct_by_name(name).ok_or_else(|| {
                    CompileError::ty(line, format!("unknown struct {name} (define before use)"))
                })?;
                if by_value && name == self_name {
                    return Err(CompileError::ty(
                        line,
                        format!("struct {name} contains itself by value"),
                    ));
                }
                Ty::Struct(id)
            }
            CTy::FnPtr(params, ret) => {
                let ps: Vec<Ty> = params
                    .iter()
                    .map(|p| self.cty_rec(p, self_name, false, line))
                    .collect::<Result<_, _>>()?;
                let r = self.cty_rec(ret, self_name, false, line)?;
                Ty::fn_ptr(FnSig::new(ps, r))
            }
        })
    }

    /// Approximate reverse mapping, used for nested global initializers.
    fn ir_to_cty_approx(&self, ty: &Ty) -> CTy {
        match ty {
            Ty::I8 => CTy::Char,
            Ty::I16 => CTy::Short,
            Ty::I32 => CTy::Int,
            Ty::I64 => CTy::Long,
            Ty::VoidPtr => CTy::Void.ptr(),
            Ty::Ptr(inner) => self.ir_to_cty_approx(inner).ptr(),
            Ty::FnPtr(sig) => CTy::FnPtr(
                sig.params
                    .iter()
                    .map(|p| self.ir_to_cty_approx(p))
                    .collect(),
                Box::new(self.ir_to_cty_approx(&sig.ret)),
            ),
            Ty::Array(elem, n) => CTy::Array(Box::new(self.ir_to_cty_approx(elem)), *n),
            Ty::Struct(id) => {
                let name = self.module.types.struct_def(*id).name.clone();
                CTy::Struct(name)
            }
            Ty::Void => CTy::Void,
        }
    }

    fn sizeof(&self, ty: &CTy, line: u32) -> Result<u64, CompileError> {
        let ir = self.cty_to_ir(ty, line)?;
        Ok(self.module.types.size_of(&ir))
    }

    // ---- function lowering ----------------------------------------------------

    fn lower_function(&mut self, f: &ast::FuncDecl) -> Result<(), CompileError> {
        let (fid, _, _) = self.funcs[&f.name];
        let sig = self.module.func(fid).sig.clone();
        let mut fx = FnCx {
            cx: self,
            b: FuncBuilder::new(&f.name, sig),
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            ret_ty: f.ret.clone(),
        };
        // Parameters: spill into stack slots so `&param` works and the
        // safe-stack analysis sees a uniform shape.
        for (i, (pname, pty)) in f.params.iter().enumerate() {
            let pty = fx.cx.decay(pty.clone());
            let ir_ty = fx.cx.cty_to_ir(&pty, f.line)?;
            let slot = fx.b.alloca(ir_ty.clone(), 1);
            let param = fx.b.param(i);
            fx.b.store(slot, param, ir_ty);
            fx.scopes
                .last_mut()
                .expect("scope")
                .insert(pname.clone(), Var { slot, ty: pty });
        }
        fx.lower_block(&f.body)?;
        if !fx.b.current_sealed() {
            // Implicit return (UB in C for non-void; we return zero).
            if f.ret == CTy::Void {
                fx.b.ret(None);
            } else {
                fx.b.ret(Some(Operand::Const(0)));
            }
        }
        let built = fx.b.finish();
        self.module.funcs[fid.0 as usize] = built;
        Ok(())
    }
}

fn scalar_size(ty: &CTy) -> u64 {
    match ty {
        CTy::Char => 1,
        CTy::Short => 2,
        CTy::Int => 4,
        CTy::Long => 8,
        _ => 8,
    }
}

/// A local variable: its stack slot (a register holding the address)
/// and its source type.
#[derive(Clone)]
struct Var {
    slot: ValueId,
    ty: CTy,
}

/// Per-function lowering context.
struct FnCx<'a> {
    cx: &'a mut Cx,
    b: FuncBuilder,
    scopes: Vec<HashMap<String, Var>>,
    /// (continue target, break target) stack.
    loops: Vec<(BlockId, BlockId)>,
    ret_ty: CTy,
}

/// An evaluated rvalue: operand plus its source type. Aggregates
/// (structs and arrays) are represented by their address.
struct RV {
    op: Operand,
    ty: CTy,
}

impl RV {
    fn scalar(op: impl Into<Operand>, ty: CTy) -> Self {
        RV { op: op.into(), ty }
    }
}

impl<'a> FnCx<'a> {
    fn lookup(&self, name: &str) -> Option<Var> {
        self.scopes.iter().rev().find_map(|s| s.get(name).cloned())
    }

    fn lower_block(&mut self, blk: &ast::Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for stmt in &blk.stmts {
            self.lower_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    /// Ensures the builder has an open (unsealed) block, creating a dead
    /// continuation block for code after returns/breaks.
    fn ensure_open(&mut self) {
        if self.b.current_sealed() {
            let dead = self.b.new_block();
            self.b.switch_to(dead);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        self.ensure_open();
        match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                let ir_ty = self.cx.cty_to_ir(ty, *line)?;
                let slot = self.b.alloca(ir_ty.clone(), 1);
                self.scopes.last_mut().expect("scope").insert(
                    name.clone(),
                    Var {
                        slot,
                        ty: ty.clone(),
                    },
                );
                if let Some(e) = init {
                    let rv = self.rvalue(e)?;
                    let coerced = self.coerce(rv, ty, *line)?;
                    let store_ty = self.cx.cty_to_ir(&self.store_ty(ty), *line)?;
                    self.b.store(slot, coerced, store_ty);
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.rvalue(cond)?;
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                let join = self.b.new_block();
                self.b.cond_br(c.op, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.lower_block(then_blk)?;
                if !self.b.current_sealed() {
                    self.b.br(join);
                }
                self.b.switch_to(else_bb);
                if let Some(eb) = else_blk {
                    self.lower_block(eb)?;
                }
                if !self.b.current_sealed() {
                    self.b.br(join);
                }
                self.b.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to(header);
                let c = self.rvalue(cond)?;
                self.b.cond_br(c.op, body_bb, exit);
                self.b.switch_to(body_bb);
                self.loops.push((header, exit));
                self.lower_block(body)?;
                self.loops.pop();
                if !self.b.current_sealed() {
                    self.b.br(header);
                }
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(s) = init {
                    self.lower_stmt(s)?;
                }
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let step_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to(header);
                match cond {
                    Some(c) => {
                        let cv = self.rvalue(c)?;
                        self.b.cond_br(cv.op, body_bb, exit);
                    }
                    None => self.b.br(body_bb),
                }
                self.b.switch_to(body_bb);
                self.loops.push((step_bb, exit));
                self.lower_block(body)?;
                self.loops.pop();
                if !self.b.current_sealed() {
                    self.b.br(step_bb);
                }
                self.b.switch_to(step_bb);
                if let Some(s) = step {
                    self.rvalue(s)?;
                }
                self.b.br(header);
                self.b.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(v, line) => {
                match v {
                    Some(e) => {
                        let rv = self.rvalue(e)?;
                        let ret_ty = self.ret_ty.clone();
                        let coerced = self.coerce(rv, &ret_ty, *line)?;
                        self.b.ret(Some(coerced));
                    }
                    None => self.b.ret(None),
                }
                Ok(())
            }
            Stmt::Break(line) => {
                let (_, exit) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::ty(*line, "break outside loop"))?;
                self.b.br(exit);
                Ok(())
            }
            Stmt::Continue(line) => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::ty(*line, "continue outside loop"))?;
                self.b.br(cont);
                Ok(())
            }
            Stmt::Block(b) => self.lower_block(b),
        }
    }

    /// The in-memory type of a declaration (identity; kept separate for
    /// clarity at call sites that must not decay arrays).
    fn store_ty(&self, ty: &CTy) -> CTy {
        ty.clone()
    }

    // ---- lvalues ----------------------------------------------------------

    /// Lowers an lvalue to (address operand, object type).
    fn lvalue(&mut self, e: &Expr) -> Result<(Operand, CTy), CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(var) = self.lookup(name) {
                    return Ok((var.slot.into(), var.ty));
                }
                if let Some((gid, gty)) = self.cx.globals.get(name).cloned() {
                    let ir = self.cx.cty_to_ir(&gty, e.line)?;
                    let addr = self.b.global_addr(gid, ir.ptr_to());
                    return Ok((addr.into(), gty));
                }
                Err(CompileError::ty(e.line, format!("unknown variable {name}")))
            }
            ExprKind::Unary(UnKind::Deref, inner) => {
                let rv = self.rvalue(inner)?;
                match rv.ty.clone() {
                    CTy::Ptr(pointee) => Ok((rv.op, *pointee)),
                    CTy::FnPtr(..) => Err(CompileError::ty(
                        e.line,
                        "cannot dereference a function pointer as data",
                    )),
                    other => Err(CompileError::ty(
                        e.line,
                        format!("cannot dereference non-pointer {other:?}"),
                    )),
                }
            }
            ExprKind::Index(base, idx) => {
                let (addr, elem_ty) = self.indexed_addr(base, idx, e.line)?;
                Ok((addr, elem_ty))
            }
            ExprKind::Member(base, field, arrow) => {
                let (base_addr, struct_ty) = if *arrow {
                    let rv = self.rvalue(base)?;
                    match rv.ty.clone() {
                        CTy::Ptr(inner) => (rv.op, *inner),
                        other => {
                            return Err(CompileError::ty(
                                e.line,
                                format!("-> on non-pointer {other:?}"),
                            ))
                        }
                    }
                } else {
                    self.lvalue(base)?
                };
                let CTy::Struct(sname) = &struct_ty else {
                    return Err(CompileError::ty(
                        e.line,
                        format!("member access on non-struct {struct_ty:?}"),
                    ));
                };
                let sid =
                    self.cx.module.types.struct_by_name(sname).ok_or_else(|| {
                        CompileError::ty(e.line, format!("unknown struct {sname}"))
                    })?;
                let (idx, fld) = self
                    .cx
                    .module
                    .types
                    .struct_def(sid)
                    .fields
                    .iter()
                    .enumerate()
                    .find(|(_, f)| f.name == *field)
                    .map(|(i, f)| (i as u32, f.clone()))
                    .ok_or_else(|| {
                        CompileError::ty(e.line, format!("struct {sname} has no field {field}"))
                    })?;
                let fty_c = self.cx.ir_to_cty_approx(&fld.ty);
                let addr = self
                    .b
                    .gep_field(base_addr, sid, idx, fld.ty.clone(), fld.offset);
                Ok((addr.into(), fty_c))
            }
            _ => Err(CompileError::ty(e.line, "expression is not an lvalue")),
        }
    }

    /// Address of `base[idx]`; returns (address, element type).
    fn indexed_addr(
        &mut self,
        base: &Expr,
        idx: &Expr,
        line: u32,
    ) -> Result<(Operand, CTy), CompileError> {
        let base_rv = self.rvalue(base)?; // arrays decay to pointers here
        let idx_rv = self.rvalue(idx)?;
        let elem = match base_rv.ty.clone() {
            CTy::Ptr(p) => *p,
            other => {
                return Err(CompileError::ty(
                    line,
                    format!("indexing non-pointer {other:?}"),
                ))
            }
        };
        let ir_elem = self.cx.cty_to_ir(&elem, line)?;
        let addr = self.b.gep(base_rv.op, idx_rv.op, ir_elem, 0);
        Ok((addr.into(), elem))
    }

    // ---- rvalues ----------------------------------------------------------

    fn rvalue(&mut self, e: &Expr) -> Result<RV, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(RV::scalar(*v, CTy::Long)),
            ExprKind::CharLit(c) => Ok(RV::scalar(*c as i64, CTy::Char)),
            ExprKind::StrLit(s) => {
                let gid = self.cx.intern_string(s);
                let addr = self.b.global_addr(gid, Ty::I8.ptr_to());
                Ok(RV::scalar(addr, CTy::Char.ptr()))
            }
            ExprKind::Ident(name) => {
                // Function designators become code pointers.
                if self.lookup(name).is_none() && !self.cx.globals.contains_key(name) {
                    if let Some((fid, params, ret)) = self.cx.funcs.get(name).cloned() {
                        let sig = self.fn_sig(&params, &ret, e.line)?;
                        let v = self.b.func_addr(fid, sig);
                        return Ok(RV::scalar(v, CTy::FnPtr(params, Box::new(ret))));
                    }
                }
                self.load_lvalue(e)
            }
            ExprKind::Assign(lhs, rhs) => {
                let (addr, lty) = self.lvalue(lhs)?;
                let rv = self.rvalue(rhs)?;
                if let CTy::Struct(_) = lty {
                    // Struct assignment is a memcpy.
                    let size = self.cx.sizeof(&lty, e.line)?;
                    self.b.intrinsic(
                        Intrinsic::Memcpy,
                        vec![addr, rv.op, Operand::Const(size as i64)],
                        Ty::VoidPtr,
                    );
                    return Ok(RV { op: rv.op, ty: lty });
                }
                let coerced = self.coerce(rv, &lty, e.line)?;
                let ir_ty = self.cx.cty_to_ir(&lty, e.line)?;
                self.b.store(addr, coerced, ir_ty);
                Ok(RV::scalar(coerced, lty))
            }
            ExprKind::Bin(op, lhs, rhs) => self.lower_bin(*op, lhs, rhs, e.line),
            ExprKind::Unary(op, inner) => self.lower_unary(*op, inner, e.line),
            ExprKind::Index(..) | ExprKind::Member(..) => self.load_lvalue(e),
            ExprKind::Call(callee, args) => self.lower_call(callee, args, e.line),
            ExprKind::Cast(to, inner) => {
                let rv = self.rvalue(inner)?;
                self.lower_cast(rv, to, e.line)
            }
            ExprKind::Sizeof(ty) => {
                let size = self.cx.sizeof(ty, e.line)?;
                Ok(RV::scalar(size as i64, CTy::Long))
            }
        }
    }

    /// Loads (or decays) an lvalue expression as an rvalue.
    fn load_lvalue(&mut self, e: &Expr) -> Result<RV, CompileError> {
        let (addr, ty) = self.lvalue(e)?;
        match &ty {
            CTy::Array(elem, _) => {
                // Decay: the address itself, typed elem*.
                Ok(RV::scalar(addr, CTy::Ptr(elem.clone())))
            }
            CTy::Struct(_) => Ok(RV { op: addr, ty }),
            _ => {
                let ir_ty = self.cx.cty_to_ir(&ty, e.line)?;
                let v = self.b.load(addr, ir_ty);
                Ok(RV::scalar(v, ty))
            }
        }
    }

    fn fn_sig(&self, params: &[CTy], ret: &CTy, line: u32) -> Result<FnSig, CompileError> {
        let ps: Vec<Ty> = params
            .iter()
            .map(|p| self.cx.cty_to_ir(p, line))
            .collect::<Result<_, _>>()?;
        Ok(FnSig::new(ps, self.cx.cty_to_ir(ret, line)?))
    }

    fn lower_bin(
        &mut self,
        op: BinKind,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<RV, CompileError> {
        // Short-circuit operators need control flow.
        if matches!(op, BinKind::LogAnd | BinKind::LogOr) {
            return self.lower_logical(op, lhs, rhs, line);
        }
        let l = self.rvalue(lhs)?;
        let r = self.rvalue(rhs)?;
        let lptr = matches!(l.ty, CTy::Ptr(_));
        let rptr = matches!(r.ty, CTy::Ptr(_));
        match op {
            BinKind::Add | BinKind::Sub if lptr && !rptr => {
                // Pointer ± integer → gep.
                let elem = match &l.ty {
                    CTy::Ptr(p) => (**p).clone(),
                    _ => unreachable!("checked lptr"),
                };
                let ir_elem = self.cx.cty_to_ir(&elem, line)?;
                let idx = if op == BinKind::Sub {
                    self.b.bin(BinOp::Sub, 0, r.op, Ty::I64).into()
                } else {
                    r.op
                };
                let addr = self.b.gep(l.op, idx, ir_elem, 0);
                Ok(RV::scalar(addr, l.ty))
            }
            BinKind::Add if rptr && !lptr => {
                let elem = match &r.ty {
                    CTy::Ptr(p) => (**p).clone(),
                    _ => unreachable!("checked rptr"),
                };
                let ir_elem = self.cx.cty_to_ir(&elem, line)?;
                let addr = self.b.gep(r.op, l.op, ir_elem, 0);
                Ok(RV::scalar(addr, r.ty))
            }
            BinKind::Sub if lptr && rptr => {
                // Pointer difference, in elements.
                let elem_size = match &l.ty {
                    CTy::Ptr(p) => self.cx.sizeof(p, line)?,
                    _ => unreachable!("checked lptr"),
                };
                let diff = self.b.bin(BinOp::Sub, l.op, r.op, Ty::I64);
                let v = self.b.bin(BinOp::Div, diff, elem_size as i64, Ty::I64);
                Ok(RV::scalar(v, CTy::Long))
            }
            BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge | BinKind::Eq | BinKind::Ne => {
                let cmp = match op {
                    BinKind::Lt => CmpOp::Lt,
                    BinKind::Le => CmpOp::Le,
                    BinKind::Gt => CmpOp::Gt,
                    BinKind::Ge => CmpOp::Ge,
                    BinKind::Eq => CmpOp::Eq,
                    BinKind::Ne => CmpOp::Ne,
                    _ => unreachable!("comparison subset"),
                };
                let v = self.b.cmp(cmp, l.op, r.op);
                Ok(RV::scalar(v, CTy::Int))
            }
            _ => {
                let bop = match op {
                    BinKind::Add => BinOp::Add,
                    BinKind::Sub => BinOp::Sub,
                    BinKind::Mul => BinOp::Mul,
                    BinKind::Div => BinOp::Div,
                    BinKind::Rem => BinOp::Rem,
                    BinKind::And => BinOp::And,
                    BinKind::Or => BinOp::Or,
                    BinKind::Xor => BinOp::Xor,
                    BinKind::Shl => BinOp::Shl,
                    BinKind::Shr => BinOp::Shr,
                    _ => unreachable!("arith subset"),
                };
                let v = self.b.bin(bop, l.op, r.op, Ty::I64);
                Ok(RV::scalar(v, promote(&l.ty, &r.ty)))
            }
        }
    }

    fn lower_logical(
        &mut self,
        op: BinKind,
        lhs: &Expr,
        rhs: &Expr,
        _line: u32,
    ) -> Result<RV, CompileError> {
        // result = alloca-free: a fresh register written on both paths.
        let result = self.b.fresh_local(Ty::I32);
        let l = self.rvalue(lhs)?;
        let rhs_bb = self.b.new_block();
        let short_bb = self.b.new_block();
        let join = self.b.new_block();
        match op {
            BinKind::LogAnd => self.b.cond_br(l.op, rhs_bb, short_bb),
            _ => self.b.cond_br(l.op, short_bb, rhs_bb),
        }
        self.b.switch_to(rhs_bb);
        let r = self.rvalue(rhs)?;
        let r_bool = self.b.cmp(CmpOp::Ne, r.op, 0);
        self.b.func_mut_push(Inst::Bin {
            dest: result,
            op: BinOp::Or,
            lhs: r_bool.into(),
            rhs: Operand::Const(0),
        });
        self.b.br(join);
        self.b.switch_to(short_bb);
        let short_val = if op == BinKind::LogAnd { 0 } else { 1 };
        self.b.func_mut_push(Inst::Bin {
            dest: result,
            op: BinOp::Or,
            lhs: Operand::Const(short_val),
            rhs: Operand::Const(0),
        });
        self.b.br(join);
        self.b.switch_to(join);
        Ok(RV::scalar(result, CTy::Int))
    }

    fn lower_unary(&mut self, op: UnKind, inner: &Expr, line: u32) -> Result<RV, CompileError> {
        match op {
            UnKind::Neg => {
                let rv = self.rvalue(inner)?;
                let v = self.b.bin(BinOp::Sub, 0, rv.op, Ty::I64);
                Ok(RV::scalar(v, rv.ty))
            }
            UnKind::Not => {
                let rv = self.rvalue(inner)?;
                let v = self.b.cmp(CmpOp::Eq, rv.op, 0);
                Ok(RV::scalar(v, CTy::Int))
            }
            UnKind::BitNot => {
                let rv = self.rvalue(inner)?;
                let v = self.b.bin(BinOp::Xor, rv.op, -1, Ty::I64);
                Ok(RV::scalar(v, rv.ty))
            }
            UnKind::Deref => self.load_lvalue(&Expr::new(
                ExprKind::Unary(UnKind::Deref, Box::new(inner.clone())),
                line,
            )),
            UnKind::Addr => {
                // &function is the function designator itself.
                if let ExprKind::Ident(name) = &inner.kind {
                    if self.lookup(name).is_none()
                        && !self.cx.globals.contains_key(name)
                        && self.cx.funcs.contains_key(name)
                    {
                        return self.rvalue(inner);
                    }
                }
                let (addr, ty) = self.lvalue(inner)?;
                Ok(RV::scalar(addr, ty.ptr()))
            }
        }
    }

    fn lower_cast(&mut self, rv: RV, to: &CTy, line: u32) -> Result<RV, CompileError> {
        let to_ir = self.cx.cty_to_ir(to, line)?;
        let from_ptr = matches!(rv.ty, CTy::Ptr(_) | CTy::FnPtr(..));
        let to_ptr = matches!(to, CTy::Ptr(_) | CTy::FnPtr(..));
        let kind = match (from_ptr, to_ptr) {
            (true, true) => CastKind::PtrToPtr,
            (true, false) => CastKind::PtrToInt,
            (false, true) => CastKind::IntToPtr,
            (false, false) => CastKind::IntToInt,
        };
        let v = self.b.cast(kind, rv.op, to_ir);
        Ok(RV::scalar(v, to.clone()))
    }

    /// Implicit conversion of `rv` to `target`, inserting casts that the
    /// sensitivity analysis needs to see (pointer retypes in particular).
    fn coerce(&mut self, rv: RV, target: &CTy, line: u32) -> Result<Operand, CompileError> {
        if rv.ty == *target {
            return Ok(rv.op);
        }
        let from_ptr = matches!(rv.ty, CTy::Ptr(_) | CTy::FnPtr(..));
        let to_ptr = matches!(target, CTy::Ptr(_) | CTy::FnPtr(..));
        match (from_ptr, to_ptr) {
            (true, true) => {
                let casted = self.lower_cast(rv, target, line)?;
                Ok(casted.op)
            }
            (false, false) => Ok(rv.op), // integer widths reconcile at stores
            (false, true) => {
                // Implicit int→pointer: only the NULL constant is clean C,
                // but legacy code does this; emit the cast for analysis.
                let casted = self.lower_cast(rv, target, line)?;
                Ok(casted.op)
            }
            (true, false) => {
                let casted = self.lower_cast(rv, target, line)?;
                Ok(casted.op)
            }
        }
    }

    fn lower_call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> Result<RV, CompileError> {
        // Direct call to a named function or intrinsic?
        if let ExprKind::Ident(name) = &callee.kind {
            if self.lookup(name).is_none() && !self.cx.globals.contains_key(name) {
                if let Some(intr) = Intrinsic::by_name(name) {
                    return self.lower_intrinsic_call(intr, args, line);
                }
                if let Some((fid, params, ret)) = self.cx.funcs.get(name).cloned() {
                    if params.len() != args.len() {
                        return Err(CompileError::ty(
                            line,
                            format!(
                                "{name} expects {} arguments, got {}",
                                params.len(),
                                args.len()
                            ),
                        ));
                    }
                    let mut ops = Vec::new();
                    for (a, pty) in args.iter().zip(&params) {
                        let rv = self.rvalue(a)?;
                        ops.push(self.coerce(rv, pty, line)?);
                    }
                    let ret_ir = self.cx.cty_to_ir(&ret, line)?;
                    let dest = self.b.call(fid, ops, ret_ir);
                    return Ok(match dest {
                        Some(d) => RV::scalar(d, ret),
                        None => RV::scalar(0, CTy::Void),
                    });
                }
            }
        }
        // Indirect call through a function-pointer value.
        let frv = self.rvalue(callee)?;
        let CTy::FnPtr(params, ret) = frv.ty.clone() else {
            return Err(CompileError::ty(
                line,
                format!("call of non-function value of type {:?}", frv.ty),
            ));
        };
        if params.len() != args.len() {
            return Err(CompileError::ty(
                line,
                format!(
                    "function pointer expects {} arguments, got {}",
                    params.len(),
                    args.len()
                ),
            ));
        }
        let mut ops = Vec::new();
        for (a, pty) in args.iter().zip(&params) {
            let rv = self.rvalue(a)?;
            ops.push(self.coerce(rv, pty, line)?);
        }
        let sig = self.fn_sig(&params, &ret, line)?;
        let dest = self.b.call_indirect(frv.op, sig, ops);
        Ok(match dest {
            Some(d) => RV::scalar(d, *ret),
            None => RV::scalar(0, CTy::Void),
        })
    }

    fn lower_intrinsic_call(
        &mut self,
        intr: Intrinsic,
        args: &[Expr],
        line: u32,
    ) -> Result<RV, CompileError> {
        let (arity, ret): (usize, CTy) = match intr {
            Intrinsic::Malloc => (1, CTy::Void.ptr()),
            Intrinsic::Calloc => (2, CTy::Void.ptr()),
            Intrinsic::Free => (1, CTy::Void),
            Intrinsic::Memcpy | Intrinsic::Memmove => (3, CTy::Void.ptr()),
            Intrinsic::Memset => (3, CTy::Void.ptr()),
            Intrinsic::Memcmp => (3, CTy::Int),
            Intrinsic::Strcpy | Intrinsic::Strcat => (2, CTy::Char.ptr()),
            Intrinsic::Strncpy | Intrinsic::Strncat => (3, CTy::Char.ptr()),
            Intrinsic::Strlen => (1, CTy::Long),
            Intrinsic::Strcmp => (2, CTy::Int),
            Intrinsic::PrintInt => (1, CTy::Void),
            Intrinsic::PrintStr => (1, CTy::Void),
            Intrinsic::ReadInput => (2, CTy::Long),
            Intrinsic::InputLen => (0, CTy::Long),
            Intrinsic::Setjmp => (1, CTy::Int),
            Intrinsic::Longjmp => (2, CTy::Void),
            Intrinsic::System => (1, CTy::Int),
            Intrinsic::Rand => (0, CTy::Long),
            Intrinsic::Exit => (1, CTy::Void),
            Intrinsic::AbortProg => (0, CTy::Void),
        };
        if args.len() != arity {
            return Err(CompileError::ty(
                line,
                format!(
                    "{} expects {arity} arguments, got {}",
                    intr.name(),
                    args.len()
                ),
            ));
        }
        let mut ops = Vec::new();
        for a in args {
            let rv = self.rvalue(a)?;
            ops.push(rv.op);
        }
        let ret_ir = self.cx.cty_to_ir(&ret, line)?;
        let dest = self.b.intrinsic(intr, ops, ret_ir);
        Ok(match dest {
            Some(d) => RV::scalar(d, ret),
            None => RV::scalar(0, CTy::Void),
        })
    }
}

/// Usual arithmetic promotion (approximate: widest wins).
fn promote(a: &CTy, b: &CTy) -> CTy {
    let rank = |t: &CTy| match t {
        CTy::Char => 1,
        CTy::Short => 2,
        CTy::Int => 3,
        CTy::Long => 4,
        _ => 4,
    };
    if rank(a) >= rank(b) {
        a.clone()
    } else {
        b.clone()
    }
}
