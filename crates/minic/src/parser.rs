//! The mini-C recursive-descent parser.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Tok, Token};

/// Parses a translation unit.
pub fn parse(toks: Vec<Token>) -> Result<Program, CompileError> {
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompileError::parse(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CompileError::parse(
                self.line(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    // ---- types -------------------------------------------------------------

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt | Tok::KwChar | Tok::KwShort | Tok::KwLong | Tok::KwVoid | Tok::KwStruct
        )
    }

    fn base_type(&mut self) -> Result<CTy, CompileError> {
        match self.bump() {
            Tok::KwInt => Ok(CTy::Int),
            Tok::KwChar => Ok(CTy::Char),
            Tok::KwShort => Ok(CTy::Short),
            Tok::KwLong => Ok(CTy::Long),
            Tok::KwVoid => Ok(CTy::Void),
            Tok::KwStruct => {
                let name = self.ident("struct name")?;
                Ok(CTy::Struct(name))
            }
            other => Err(CompileError::parse(
                self.line(),
                format!("expected type, found {other:?}"),
            )),
        }
    }

    /// Parses `base declarator`, returning the full type and the declared
    /// name (if any). Handles pointers, arrays, and function-pointer
    /// declarators (`ret (*name)(params)`, `ret (*name[n])(params)`).
    fn declarator(&mut self, mut base: CTy) -> Result<(CTy, Option<String>), CompileError> {
        while self.eat(&Tok::Star) {
            base = base.ptr();
        }
        // Function-pointer declarator?
        if *self.peek() == Tok::LParen && *self.peek2() == Tok::Star {
            self.bump(); // (
            self.bump(); // *
            let name = self.ident("function-pointer name")?;
            // Optional array suffix inside the parens: (*ops[4]).
            let mut arr: Option<u64> = None;
            if self.eat(&Tok::LBracket) {
                match self.bump() {
                    Tok::IntLit(n) if n > 0 => arr = Some(n as u64),
                    other => {
                        return Err(CompileError::parse(
                            self.line(),
                            format!("expected array size, found {other:?}"),
                        ))
                    }
                }
                self.expect(&Tok::RBracket, "]")?;
            }
            self.expect(&Tok::RParen, ")")?;
            self.expect(&Tok::LParen, "( of parameter list")?;
            let params = self.param_types()?;
            let fnptr = CTy::FnPtr(params, Box::new(base));
            let ty = match arr {
                Some(n) => CTy::Array(Box::new(fnptr), n),
                None => fnptr,
            };
            return Ok((ty, Some(name)));
        }
        let name = match self.peek() {
            Tok::Ident(_) => Some(self.ident("name")?),
            _ => None,
        };
        // Array suffixes: `int x[2][3]` is array 2 of array 3 of int.
        let mut dims = Vec::new();
        while self.eat(&Tok::LBracket) {
            match self.bump() {
                Tok::IntLit(n) if n > 0 => dims.push(n as u64),
                other => {
                    return Err(CompileError::parse(
                        self.line(),
                        format!("expected array size, found {other:?}"),
                    ))
                }
            }
            self.expect(&Tok::RBracket, "]")?;
        }
        let mut ty = base;
        for n in dims.into_iter().rev() {
            ty = CTy::Array(Box::new(ty), n);
        }
        Ok((ty, name))
    }

    /// Parameter type list for function pointers (names ignored).
    fn param_types(&mut self) -> Result<Vec<CTy>, CompileError> {
        let mut out = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(out);
        }
        if *self.peek() == Tok::KwVoid && *self.peek2() == Tok::RParen {
            self.bump();
            self.bump();
            return Ok(out);
        }
        loop {
            let base = self.base_type()?;
            let (ty, _name) = self.declarator(base)?;
            out.push(ty);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen, ")")?;
        Ok(out)
    }

    /// A full (possibly abstract) type, for casts and sizeof.
    fn type_name(&mut self) -> Result<CTy, CompileError> {
        let base = self.base_type()?;
        let mut ty = base;
        while self.eat(&Tok::Star) {
            ty = ty.ptr();
        }
        // Abstract function-pointer type `ret (*)(params)`.
        if *self.peek() == Tok::LParen && *self.peek2() == Tok::Star {
            self.bump();
            self.bump();
            self.expect(&Tok::RParen, ")")?;
            self.expect(&Tok::LParen, "(")?;
            let params = self.param_types()?;
            ty = CTy::FnPtr(params, Box::new(ty));
        }
        Ok(ty)
    }

    // ---- top level ---------------------------------------------------------

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        while *self.peek() != Tok::Eof {
            let sensitive = self.eat(&Tok::KwSensitive);
            if sensitive && *self.peek() != Tok::KwStruct {
                return Err(CompileError::parse(
                    self.line(),
                    "__sensitive must precede a struct definition",
                ));
            }
            // struct definition or forward declaration?
            if *self.peek() == Tok::KwStruct {
                if let Tok::Ident(_) = self.peek2() {
                    let third = &self.toks[(self.pos + 2).min(self.toks.len() - 1)].kind;
                    if *third == Tok::LBrace {
                        prog.structs.push(self.struct_decl(sensitive)?);
                        continue;
                    }
                    if *third == Tok::Semi {
                        let line = self.line();
                        self.bump(); // struct
                        let name = self.ident("struct name")?;
                        self.bump(); // ;
                        prog.structs.push(StructDecl {
                            name,
                            fields: Vec::new(),
                            sensitive,
                            forward: true,
                            line,
                        });
                        continue;
                    }
                }
            }
            // Global or function.
            let line = self.line();
            let base = self.base_type()?;
            let (ty, name) = self.declarator(base)?;
            let name = name
                .ok_or_else(|| CompileError::parse(line, "top-level declaration needs a name"))?;
            if matches!(ty, CTy::FnPtr(..) | CTy::Array(..)) || *self.peek() != Tok::LParen {
                // Global variable.
                let init = if self.eat(&Tok::Assign) {
                    Some(self.initializer()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi, "; after global")?;
                prog.globals.push(GlobalDecl {
                    name,
                    ty,
                    init,
                    line,
                });
            } else {
                // Function definition or prototype.
                self.expect(&Tok::LParen, "(")?;
                let params = self.named_params()?;
                if self.eat(&Tok::Semi) {
                    continue; // prototype: ignored (two-pass semantics)
                }
                let body = self.block()?;
                prog.funcs.push(FuncDecl {
                    name,
                    params,
                    ret: ty,
                    body,
                    line,
                });
            }
        }
        Ok(prog)
    }

    fn struct_decl(&mut self, sensitive: bool) -> Result<StructDecl, CompileError> {
        let line = self.line();
        self.expect(&Tok::KwStruct, "struct")?;
        let name = self.ident("struct name")?;
        self.expect(&Tok::LBrace, "{")?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let base = self.base_type()?;
            loop {
                let (ty, fname) = self.declarator(base.clone())?;
                let fname = fname
                    .ok_or_else(|| CompileError::parse(self.line(), "struct field needs a name"))?;
                fields.push((fname, ty));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::Semi, "; after field")?;
        }
        self.expect(&Tok::Semi, "; after struct")?;
        Ok(StructDecl {
            name,
            fields,
            sensitive,
            forward: false,
            line,
        })
    }

    fn named_params(&mut self) -> Result<Vec<(String, CTy)>, CompileError> {
        let mut out = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(out);
        }
        if *self.peek() == Tok::KwVoid && *self.peek2() == Tok::RParen {
            self.bump();
            self.bump();
            return Ok(out);
        }
        loop {
            let line = self.line();
            let base = self.base_type()?;
            let (ty, name) = self.declarator(base)?;
            let name = name.ok_or_else(|| CompileError::parse(line, "parameter needs a name"))?;
            out.push((name, ty));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen, ")")?;
        Ok(out)
    }

    fn initializer(&mut self) -> Result<Init, CompileError> {
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(&Tok::RBrace) {
                    loop {
                        items.push(self.initializer()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        // Allow trailing comma.
                        if *self.peek() == Tok::RBrace {
                            break;
                        }
                    }
                    self.expect(&Tok::RBrace, "}")?;
                }
                Ok(Init::List(items))
            }
            Tok::IntLit(v) => {
                self.bump();
                Ok(Init::Int(v))
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::IntLit(v) => Ok(Init::Int(-v)),
                    other => Err(CompileError::parse(
                        self.line(),
                        format!("expected integer after '-', found {other:?}"),
                    )),
                }
            }
            Tok::CharLit(c) => {
                self.bump();
                Ok(Init::Int(c as i64))
            }
            Tok::StrLit(s) => {
                self.bump();
                Ok(Init::Str(s))
            }
            Tok::Amp => {
                self.bump();
                let name = self.ident("name after '&'")?;
                Ok(Init::Ident(name))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Init::Ident(name))
            }
            other => Err(CompileError::parse(
                self.line(),
                format!("bad initializer: {other:?}"),
            )),
        }
    }

    // ---- statements --------------------------------------------------------

    fn block(&mut self) -> Result<Block, CompileError> {
        self.expect(&Tok::LBrace, "{")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen, "(")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, ")")?;
                let then_blk = self.stmt_as_block()?;
                let else_blk = if self.eat(&Tok::KwElse) {
                    Some(self.stmt_as_block()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen, "(")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, ")")?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen, "(")?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else {
                    let s = if self.starts_type() {
                        self.decl_stmt()?
                    } else {
                        let e = self.expr()?;
                        self.expect(&Tok::Semi, ";")?;
                        Stmt::Expr(e)
                    };
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, ";")?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen, ")")?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::KwReturn => {
                self.bump();
                let v = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Return(v, line))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Break(line))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Continue(line))
            }
            _ if self.starts_type() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn stmt_as_block(&mut self) -> Result<Block, CompileError> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let base = self.base_type()?;
        let (ty, name) = self.declarator(base)?;
        let name = name.ok_or_else(|| CompileError::parse(line, "declaration needs a name"))?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi, "; after declaration")?;
        Ok(Stmt::Decl {
            name,
            ty,
            init,
            line,
        })
    }

    // ---- expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.binary_expr(0)?;
        if self.eat(&Tok::Assign) {
            let line = lhs.line;
            let rhs = self.assign_expr()?;
            return Ok(Expr::new(
                ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                line,
            ));
        }
        Ok(lhs)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinKind::LogOr, 1),
                Tok::AndAnd => (BinKind::LogAnd, 2),
                Tok::Pipe => (BinKind::Or, 3),
                Tok::Caret => (BinKind::Xor, 4),
                Tok::Amp => (BinKind::And, 5),
                Tok::EqEq => (BinKind::Eq, 6),
                Tok::Ne => (BinKind::Ne, 6),
                Tok::Lt => (BinKind::Lt, 7),
                Tok::Le => (BinKind::Le, 7),
                Tok::Gt => (BinKind::Gt, 7),
                Tok::Ge => (BinKind::Ge, 7),
                Tok::Shl => (BinKind::Shl, 8),
                Tok::Shr => (BinKind::Shr, 8),
                Tok::Plus => (BinKind::Add, 9),
                Tok::Minus => (BinKind::Sub, 9),
                Tok::Star => (BinKind::Mul, 10),
                Tok::Slash => (BinKind::Div, 10),
                Tok::Percent => (BinKind::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::new(ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Unary(UnKind::Neg, Box::new(e)), line))
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Unary(UnKind::Not, Box::new(e)), line))
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(
                    ExprKind::Unary(UnKind::BitNot, Box::new(e)),
                    line,
                ))
            }
            Tok::Star => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Unary(UnKind::Deref, Box::new(e)), line))
            }
            Tok::Amp => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Unary(UnKind::Addr, Box::new(e)), line))
            }
            Tok::KwSizeof => {
                self.bump();
                self.expect(&Tok::LParen, "(")?;
                let ty = self.type_name()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(Expr::new(ExprKind::Sizeof(ty), line))
            }
            Tok::LParen if self.type_starts_at(self.pos + 1) => {
                // Cast: `(type) expr`.
                self.bump();
                let ty = self.type_name()?;
                self.expect(&Tok::RParen, ")")?;
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), line))
            }
            _ => self.postfix_expr(),
        }
    }

    fn type_starts_at(&self, pos: usize) -> bool {
        matches!(
            self.toks[pos.min(self.toks.len() - 1)].kind,
            Tok::KwInt | Tok::KwChar | Tok::KwShort | Tok::KwLong | Tok::KwVoid | Tok::KwStruct
        )
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen, ")")?;
                    }
                    e = Expr::new(ExprKind::Call(Box::new(e), args), line);
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket, "]")?;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), line);
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.ident("field name")?;
                    e = Expr::new(ExprKind::Member(Box::new(e), f, false), line);
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.ident("field name")?;
                    e = Expr::new(ExprKind::Member(Box::new(e), f, true), line);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::new(ExprKind::IntLit(v), line)),
            Tok::CharLit(c) => Ok(Expr::new(ExprKind::CharLit(c), line)),
            Tok::StrLit(s) => Ok(Expr::new(ExprKind::StrLit(s), line)),
            Tok::Ident(name) => Ok(Expr::new(ExprKind::Ident(name), line)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(e)
            }
            other => Err(CompileError::parse(
                line,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_simple_function() {
        let p = parse_ok("int add(int a, int b) { return a + b; }");
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "add");
        assert_eq!(p.funcs[0].params.len(), 2);
        assert_eq!(p.funcs[0].ret, CTy::Int);
    }

    #[test]
    fn parses_struct_with_fnptr_field() {
        let p = parse_ok("struct ops { int x; void (*handler)(int); char name[8]; };");
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.fields.len(), 3);
        assert_eq!(
            s.fields[1].1,
            CTy::FnPtr(vec![CTy::Int], Box::new(CTy::Void))
        );
        assert_eq!(s.fields[2].1, CTy::Array(Box::new(CTy::Char), 8));
        assert!(!s.sensitive);
    }

    #[test]
    fn parses_sensitive_struct() {
        let p = parse_ok("__sensitive struct ucred { int uid; int gid; };");
        assert!(p.structs[0].sensitive);
    }

    #[test]
    fn parses_fnptr_array_global() {
        let p = parse_ok("int (*ops[4])(int, int);");
        assert_eq!(p.globals.len(), 1);
        match &p.globals[0].ty {
            CTy::Array(inner, 4) => {
                assert!(matches!(**inner, CTy::FnPtr(..)));
            }
            other => panic!("unexpected type {other:?}"),
        }
    }

    #[test]
    fn parses_global_with_initializers() {
        let p = parse_ok(
            "int limit = 10; char msg[6] = \"hello\"; int tbl[3] = {1, 2, 3}; void (*h)(int) = handler;",
        );
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[0].init, Some(Init::Int(10)));
        assert_eq!(p.globals[1].init, Some(Init::Str("hello".into())));
        assert_eq!(
            p.globals[2].init,
            Some(Init::List(vec![Init::Int(1), Init::Int(2), Init::Int(3)]))
        );
        assert_eq!(p.globals[3].init, Some(Init::Ident("handler".into())));
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_ok(
            "void f() { int i; for (i = 0; i < 10; i = i + 1) { if (i == 5) break; else continue; } while (i) i = i - 1; }",
        );
        assert_eq!(p.funcs.len(), 1);
        let stmts = &p.funcs[0].body.stmts;
        assert!(matches!(stmts[1], Stmt::For { .. }));
        assert!(matches!(stmts[2], Stmt::While { .. }));
    }

    #[test]
    fn parses_for_with_decl_init() {
        let p = parse_ok("void f() { for (int i = 0; i < 4; i = i + 1) { } }");
        match &p.funcs[0].body.stmts[0] {
            Stmt::For { init: Some(s), .. } => assert!(matches!(**s, Stmt::Decl { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_binds_correctly() {
        let p = parse_ok("int f() { return 1 + 2 * 3 == 7 && 1; }");
        // ((1 + (2*3)) == 7) && 1
        match &p.funcs[0].body.stmts[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Bin(BinKind::LogAnd, lhs, _) => {
                    assert!(matches!(lhs.kind, ExprKind::Bin(BinKind::Eq, ..)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_casts_and_member_chains() {
        let p = parse_ok(
            "void f(void* p) { struct s* q; q = (struct s*)p; q->vt->draw(q); (*q).x = 1; }",
        );
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn parses_cast_of_fnptr_type() {
        parse_ok("void f(void* p) { void (*g)(int); g = (void (*)(int))p; g(1); }");
    }

    #[test]
    fn parenthesized_expr_is_not_cast() {
        let p = parse_ok("int f(int x) { return (x) + 1; }");
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn prototype_is_skipped() {
        let p = parse_ok("int g(int x); int g(int x) { return x; }");
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse(lex("int f() {\n  return 1 +;\n}").unwrap()).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn multidim_arrays() {
        let p = parse_ok("int grid[2][3];");
        assert_eq!(
            p.globals[0].ty,
            CTy::Array(Box::new(CTy::Array(Box::new(CTy::Int), 3)), 2)
        );
    }
}
