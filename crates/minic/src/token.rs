//! Tokens of the mini-C language.

/// A token with its source position (byte offset, for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// Line number (1-based).
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals and identifiers.
    Ident(String),
    IntLit(i64),
    CharLit(u8),
    StrLit(String),

    // Keywords.
    KwInt,
    KwChar,
    KwShort,
    KwLong,
    KwVoid,
    KwStruct,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwSensitive,

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,

    // Operators.
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,

    /// End of input.
    Eof,
}

impl Tok {
    /// Keyword lookup for identifiers.
    pub fn keyword(ident: &str) -> Option<Tok> {
        Some(match ident {
            "int" => Tok::KwInt,
            "char" => Tok::KwChar,
            "short" => Tok::KwShort,
            "long" => Tok::KwLong,
            "void" => Tok::KwVoid,
            "struct" => Tok::KwStruct,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "for" => Tok::KwFor,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "sizeof" => Tok::KwSizeof,
            "__sensitive" => Tok::KwSensitive,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(Tok::keyword("int"), Some(Tok::KwInt));
        assert_eq!(Tok::keyword("__sensitive"), Some(Tok::KwSensitive));
        assert_eq!(Tok::keyword("foo"), None);
    }
}
