//! End-to-end frontend tests: compile mini-C and execute on the VM,
//! through the `levee_core::Session` embedding API.

use levee_core::{LeveeError, Session};
use levee_minic::compile;
use levee_vm::ExitStatus;

/// Compiles and runs, asserting clean exit; returns the output.
fn run(src: &str) -> String {
    run_with_input(src, b"")
}

fn run_with_input(src: &str, input: &[u8]) -> String {
    let mut session = Session::builder()
        .source(src)
        .name("test")
        .build()
        .expect("compiles");
    session
        .run_ok(input)
        .expect("program should exit cleanly")
        .output
}

#[test]
fn arithmetic_and_precedence() {
    let out = run(r#"
        int main() {
            print_int(1 + 2 * 3);
            print_int((1 + 2) * 3);
            print_int(10 / 3);
            print_int(10 % 3);
            print_int(1 << 4);
            print_int(255 >> 4);
            print_int(12 & 10);
            print_int(12 | 3);
            print_int(12 ^ 10);
            print_int(-5);
            print_int(~0);
            print_int(!0);
            print_int(!42);
            return 0;
        }
    "#);
    assert_eq!(out, "7\n9\n3\n1\n16\n15\n8\n15\n6\n-5\n-1\n1\n0");
}

#[test]
fn comparisons_and_logic() {
    let out = run(r#"
        int main() {
            print_int(3 < 4);
            print_int(4 <= 3);
            print_int(5 == 5 && 6 != 7);
            print_int(0 || 0);
            print_int(1 || crash());
            print_int(0 && crash());
            return 0;
        }
        int crash() { return 1 / 0; }
    "#);
    // Short-circuiting means crash() is never called.
    assert_eq!(out, "1\n0\n1\n0\n1\n0");
}

#[test]
fn locals_pointers_addressof() {
    let out = run(r#"
        int main() {
            int x = 10;
            int *p = &x;
            *p = *p + 5;
            print_int(x);
            int **pp = &p;
            **pp = **pp * 2;
            print_int(x);
            return 0;
        }
    "#);
    assert_eq!(out, "15\n30");
}

#[test]
fn arrays_and_pointer_arithmetic() {
    let out = run(r#"
        int main() {
            int a[5];
            int i;
            for (i = 0; i < 5; i = i + 1) a[i] = i * i;
            int *p = a;
            print_int(a[3]);
            print_int(*(p + 4));
            print_int(p[2]);
            long n = (p + 4) - p;
            print_int(n);
            return 0;
        }
    "#);
    assert_eq!(out, "9\n16\n4\n4");
}

#[test]
fn functions_and_recursion() {
    let out = run(r#"
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            print_int(fib(12));
            return 0;
        }
    "#);
    assert_eq!(out, "144");
}

#[test]
fn structs_members_and_nesting() {
    let out = run(r#"
        struct point { int x; int y; };
        struct rect { struct point tl; struct point br; };
        int area(struct rect *r) {
            return (r->br.x - r->tl.x) * (r->br.y - r->tl.y);
        }
        int main() {
            struct rect r;
            r.tl.x = 1; r.tl.y = 1;
            r.br.x = 5; r.br.y = 4;
            print_int(area(&r));
            struct rect copy;
            copy = r;
            copy.br.x = 11;
            print_int(area(&copy));
            print_int(area(&r));
            return 0;
        }
    "#);
    assert_eq!(out, "12\n30\n12");
}

#[test]
fn linked_list_on_heap() {
    let out = run(r#"
        struct node { int val; struct node* next; };
        int main() {
            struct node* head = 0;
            int i;
            for (i = 0; i < 5; i = i + 1) {
                struct node* n = (struct node*)malloc(sizeof(struct node));
                n->val = i;
                n->next = head;
                head = n;
            }
            int sum = 0;
            while (head != 0) {
                sum = sum * 10 + head->val;
                struct node* dead = head;
                head = head->next;
                free((void*)dead);
            }
            print_int(sum);
            return 0;
        }
    "#);
    assert_eq!(out, "43210");
}

#[test]
fn strings_and_libc() {
    let out = run(r#"
        int main() {
            char buf[32];
            strcpy(buf, "hello");
            strcat(buf, ", world");
            print_str(buf);
            print_int(strlen(buf));
            print_int(strcmp(buf, "hello, world"));
            char dst[8];
            memset(dst, 'x', 7);
            dst[7] = '\0';
            print_str(dst);
            memcpy(dst, buf, 5);
            print_str(dst);
            return 0;
        }
    "#);
    assert_eq!(out, "hello, world\n12\n0\nxxxxxxx\nhelloxx");
}

#[test]
fn function_pointers_and_dispatch_table() {
    let out = run(r#"
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int mul(int a, int b) { return a * b; }
        int (*ops[3])(int, int) = {add, sub, mul};
        int main() {
            int i;
            for (i = 0; i < 3; i = i + 1) {
                print_int(ops[i](10, 3));
            }
            int (*f)(int, int) = &sub;
            print_int(f(1, 2));
            return 0;
        }
    "#);
    assert_eq!(out, "13\n7\n30\n-1");
}

#[test]
fn vtable_idiom() {
    let out = run(r#"
        struct shape;
        struct vtable {
            int (*area)(struct shape*);
            int (*peri)(struct shape*);
        };
        struct shape { struct vtable* vt; int w; int h; };
        int rect_area(struct shape* s) { return s->w * s->h; }
        int rect_peri(struct shape* s) { return 2 * (s->w + s->h); }
        struct vtable rect_vt = {rect_area, rect_peri};
        int main() {
            struct shape s;
            s.vt = &rect_vt;
            s.w = 3; s.h = 4;
            print_int(s.vt->area(&s));
            print_int(s.vt->peri(&s));
            return 0;
        }
    "#);
    assert_eq!(out, "12\n14");
}

#[test]
fn void_pointer_round_trip() {
    let out = run(r#"
        int main() {
            int x = 77;
            void* p = (void*)&x;
            int* q = (int*)p;
            print_int(*q);
            return 0;
        }
    "#);
    assert_eq!(out, "77");
}

#[test]
fn globals_with_initializers() {
    let out = run(r#"
        int counter = 5;
        int table[4] = {10, 20, 30, 40};
        char greeting[8] = "hiya";
        char *msg = "indirect";
        int main() {
            counter = counter + 1;
            print_int(counter);
            print_int(table[2]);
            print_str(greeting);
            print_str(msg);
            return 0;
        }
    "#);
    assert_eq!(out, "6\n30\nhiya\nindirect");
}

#[test]
fn read_input_and_input_len() {
    let out = run_with_input(
        r#"
        int main() {
            char buf[16];
            long n = read_input(buf, 15);
            buf[n] = '\0';
            print_str(buf);
            print_int(n);
            return 0;
        }
    "#,
        b"payload",
    );
    assert_eq!(out, "payload\n7");
}

#[test]
fn setjmp_longjmp() {
    let out = run(r#"
        long jb[3];
        void deep(int depth) {
            if (depth == 0) {
                longjmp(jb, 99);
            }
            deep(depth - 1);
        }
        int main() {
            int r = setjmp(jb);
            if (r != 0) {
                print_int(r);
                return 0;
            }
            print_int(1);
            deep(5);
            print_int(2);
            return 0;
        }
    "#);
    assert_eq!(out, "1\n99");
}

#[test]
fn sizeof_and_casts() {
    let out = run(r#"
        struct big { long a; long b; char c; };
        int main() {
            print_int(sizeof(int));
            print_int(sizeof(char));
            print_int(sizeof(void*));
            print_int(sizeof(struct big));
            long raw = (long)"x";
            char* back = (char*)raw;
            print_str(back);
            return 0;
        }
    "#);
    assert_eq!(out, "4\n1\n8\n24\nx");
}

#[test]
fn char_truncation_at_store() {
    let out = run(r#"
        int main() {
            char c = 300;  /* truncates to 44 */
            print_int(c);
            return 0;
        }
    "#);
    assert_eq!(out, "44");
}

#[test]
fn break_continue_nested() {
    let out = run(r#"
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 10; i = i + 1) {
                if (i == 7) break;
                if (i % 2 == 0) continue;
                total = total + i;
            }
            print_int(total);
            int j = 0;
            while (1) {
                j = j + 1;
                if (j >= 3) break;
            }
            print_int(j);
            return 0;
        }
    "#);
    assert_eq!(out, "9\n3");
}

#[test]
fn sensitive_struct_annotation_is_recorded() {
    let module = compile(
        r#"
        __sensitive struct ucred { int uid; int gid; };
        int main() { return 0; }
    "#,
        "t",
    )
    .unwrap();
    let sid = module.types.struct_by_name("ucred").unwrap();
    assert!(module.types.struct_def(sid).annotated_sensitive);
}

#[test]
fn exit_intrinsic() {
    let mut session = Session::builder()
        .source(r#"int main() { print_int(3); exit(7); print_int(9); return 0; }"#)
        .name("t")
        .build()
        .unwrap();
    let out = session.run(b"");
    assert_eq!(out.status, ExitStatus::Exited(7));
    assert_eq!(out.output, "3");
}

#[test]
fn compile_errors_are_reported() {
    // Malformed source is a typed LeveeError through the Session front
    // door — never a panic.
    for bad in [
        "int main() { return undefined_var; }",
        "int main() { int x; return x(); }",
        "int f(int a); int main() { return f(1, 2); }",
        "struct s { struct s inner; };",
        "int malloc(int x) { return x; }",
    ] {
        assert!(compile(bad, "t").is_err());
        match Session::builder().source(bad).name("t").build() {
            Err(LeveeError::Compile { name, .. }) => assert_eq!(name, "t"),
            Err(other) => panic!("expected Compile error, got {other}"),
            Ok(_) => panic!("must not build: {bad}"),
        }
    }
}

#[test]
fn multidim_arrays_work() {
    let out = run(r#"
        int grid[3][4];
        int main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1)
                for (j = 0; j < 4; j = j + 1)
                    grid[i][j] = i * 4 + j;
            print_int(grid[2][3]);
            print_int(grid[1][0]);
            return 0;
        }
    "#);
    assert_eq!(out, "11\n4");
}

#[test]
fn output_identical_across_store_kinds() {
    // Plain (uninstrumented) programs must behave identically under any
    // VM configuration — differential check.
    let src = r#"
        int work(int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i = i + 1) acc = acc + i * i;
            return acc;
        }
        int main() { print_int(work(50)); return 0; }
    "#;
    let mut outputs = Vec::new();
    for kind in levee_vm::StoreKind::all() {
        let mut session = Session::builder()
            .source(src)
            .name("t")
            .store(*kind)
            .build()
            .unwrap();
        outputs.push(session.run(b"").output);
    }
    outputs.dedup();
    assert_eq!(outputs.len(), 1);
}
