//! The attack dimensions, following RIPE (Wilander et al., ACSAC'11):
//! overflow location × target code pointer × technique × abused
//! function × payload goal.

use levee_vm::GoalKind;

/// Where the overflowed buffer lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    Stack,
    Heap,
    /// Uninitialized globals.
    Bss,
    /// Initialized globals.
    Data,
}

/// Which code pointer the attack corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The saved return address (stack frames only).
    RetAddr,
    /// A function pointer adjacent to the buffer (same region).
    FuncPtr,
    /// A `jmp_buf` saved by `setjmp`.
    LongjmpBuf,
}

/// How the corrupting write is mounted.
///
/// `Direct` and `Indirect` are the classic RIPE techniques: contiguous
/// overflow, or a corrupted data pointer followed by a targeted write
/// (bypasses cookies). `Substitute` and `Forge` are the PAC-era
/// additions aimed at pointer-authentication defenses
/// (`levee_core::pac`): instead of writing a raw code address they
/// write a *sealed-looking* word — a genuine sealed word replayed from
/// another slot, or a forged word with a guessed MAC tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    Direct,
    Indirect,
    /// Replay a sealed word leaked from a *donor* slot (which holds a
    /// pointer to an attacker-chosen existing function) over the victim
    /// slot. Defeats context-free sealing (`-fpac`): any sealed word
    /// authenticates at any slot. Per-slot binding (`-fpac-tight`)
    /// rejects the replay.
    Substitute,
    /// Overwrite the victim slot with the goal address carrying a
    /// blind-guessed MAC tag in the spare high bits. Succeeds with
    /// probability 2^-tag_bits against PAC; against unsealed builds the
    /// tagged high bits make the word a wild jump.
    Forge,
}

/// Which "libc" routine smuggles the attacker bytes into the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbuseFn {
    /// `read_input(buf, -1)` — `gets`-style unbounded read.
    ReadInput,
    /// `strcpy(buf, attacker_scratch)` — NUL bytes truncate the payload.
    Strcpy,
    /// `memcpy(buf, attacker_scratch, attacker_len)`.
    Memcpy,
    /// A hand-rolled unchecked copy loop.
    LoopCopy,
}

/// What the attacker wants executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Payload {
    /// Injected shellcode at the buffer address (needs executable data).
    Shellcode,
    /// Jump to `system()` in libc.
    Ret2Libc,
    /// Start a ROP chain at a return-site gadget.
    Rop,
    /// Call an existing, never-address-taken function.
    FuncReuse,
}

impl Payload {
    /// The VM goal kind for this payload.
    pub fn goal_kind(self) -> GoalKind {
        match self {
            Payload::Shellcode => GoalKind::Shellcode,
            Payload::Ret2Libc => GoalKind::Ret2Libc,
            Payload::Rop => GoalKind::RopGadget,
            Payload::FuncReuse => GoalKind::FuncReuse,
        }
    }
}

/// One concrete attack instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Attack {
    pub location: Location,
    pub target: Target,
    pub technique: Technique,
    pub abuse: AbuseFn,
    pub payload: Payload,
}

impl Attack {
    /// A short identifier for reports, e.g. `stack/ret/direct/strcpy/rop`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            match self.location {
                Location::Stack => "stack",
                Location::Heap => "heap",
                Location::Bss => "bss",
                Location::Data => "data",
            },
            match self.target {
                Target::RetAddr => "ret",
                Target::FuncPtr => "fptr",
                Target::LongjmpBuf => "jmpbuf",
            },
            match self.technique {
                Technique::Direct => "direct",
                Technique::Indirect => "indirect",
                Technique::Substitute => "substitute",
                Technique::Forge => "forge",
            },
            match self.abuse {
                AbuseFn::ReadInput => "readinput",
                AbuseFn::Strcpy => "strcpy",
                AbuseFn::Memcpy => "memcpy",
                AbuseFn::LoopCopy => "loopcopy",
            },
            match self.payload {
                Payload::Shellcode => "shellcode",
                Payload::Ret2Libc => "ret2libc",
                Payload::Rop => "rop",
                Payload::FuncReuse => "funcreuse",
            },
        )
    }

    /// Is this combination of dimensions buildable? (Return addresses
    /// exist only on the stack; jmp_bufs live on stack or in globals;
    /// the indirect technique is built for ret-addr and global-fptr
    /// targets; substitution and forgery target function-pointer slots
    /// with a function-reuse payload — the replayed/forged word must
    /// decode to an existing function entry.)
    pub fn is_valid(&self) -> bool {
        let target_ok = match self.target {
            Target::RetAddr => self.location == Location::Stack,
            Target::FuncPtr => true,
            Target::LongjmpBuf => matches!(self.location, Location::Stack | Location::Bss),
        };
        let technique_ok = match self.technique {
            Technique::Direct => true,
            Technique::Indirect => matches!(
                (self.location, self.target),
                (Location::Stack, Target::RetAddr) | (Location::Bss, Target::FuncPtr)
            ),
            Technique::Substitute | Technique::Forge => {
                self.target == Target::FuncPtr && self.payload == Payload::FuncReuse
            }
        };
        target_ok && technique_ok
    }
}

/// Enumerates every valid attack instance (the benchmark suite).
pub fn all_attacks() -> Vec<Attack> {
    let mut out = Vec::new();
    for location in [
        Location::Stack,
        Location::Heap,
        Location::Bss,
        Location::Data,
    ] {
        for target in [Target::RetAddr, Target::FuncPtr, Target::LongjmpBuf] {
            for technique in [
                Technique::Direct,
                Technique::Indirect,
                Technique::Substitute,
                Technique::Forge,
            ] {
                for abuse in [
                    AbuseFn::ReadInput,
                    AbuseFn::Strcpy,
                    AbuseFn::Memcpy,
                    AbuseFn::LoopCopy,
                ] {
                    for payload in [
                        Payload::Shellcode,
                        Payload::Ret2Libc,
                        Payload::Rop,
                        Payload::FuncReuse,
                    ] {
                        let a = Attack {
                            location,
                            target,
                            technique,
                            abuse,
                            payload,
                        };
                        if a.is_valid() {
                            out.push(a);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_substantial_and_valid() {
        let attacks = all_attacks();
        assert!(attacks.len() >= 100, "suite has {} attacks", attacks.len());
        assert!(attacks.iter().all(|a| a.is_valid()));
        // All ids unique.
        let mut ids: Vec<String> = attacks.iter().map(|a| a.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), attacks.len());
    }

    #[test]
    fn pac_era_techniques_are_fptr_funcreuse_only() {
        let attacks = all_attacks();
        let subs: Vec<_> = attacks
            .iter()
            .filter(|a| a.technique == Technique::Substitute)
            .collect();
        let forges: Vec<_> = attacks
            .iter()
            .filter(|a| a.technique == Technique::Forge)
            .collect();
        // 4 locations × 4 abuse functions, one payload each.
        assert_eq!(subs.len(), 16);
        assert_eq!(forges.len(), 16);
        for a in subs.iter().chain(&forges) {
            assert_eq!(a.target, Target::FuncPtr);
            assert_eq!(a.payload, Payload::FuncReuse);
        }
        assert_eq!(attacks.len(), 176, "144 classic + 32 PAC-era attacks");
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        let heap_ret = Attack {
            location: Location::Heap,
            target: Target::RetAddr,
            technique: Technique::Direct,
            abuse: AbuseFn::ReadInput,
            payload: Payload::Rop,
        };
        assert!(!heap_ret.is_valid());
        let heap_indirect = Attack {
            location: Location::Heap,
            target: Target::FuncPtr,
            technique: Technique::Indirect,
            abuse: AbuseFn::ReadInput,
            payload: Payload::Rop,
        };
        assert!(!heap_indirect.is_valid());
    }
}
