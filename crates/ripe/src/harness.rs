//! The attack evaluation harness: recon → payload → exploit → verdict.
//!
//! The attacker model matches §2 and how RIPE operates: the attacker
//! studies a local copy of the binary (a *recon* run without ASLR) to
//! learn buffer distances and target addresses, then fires the payload
//! at the victim configuration. ASLR invalidates recon knowledge of
//! stack/heap/libc addresses (but not a non-PIE binary's own code or
//! globals); CPI/CPS/SafeStack change where the authoritative copies of
//! code pointers live; PAC (`levee_core::pac`) leaves them in place but
//! seals them under a per-victim MAC key, which is why the PAC-era
//! techniques ([`Technique::Substitute`]/[`Technique::Forge`]) build
//! their payloads from the victim dry run rather than from recon.

use levee_core::{BuildConfig, Session};
use levee_defenses::Deployment;
use levee_ir::Intrinsic;
use levee_vm::{ExitStatus, Trap, VmConfig, PAC_PTR_MASK};

use crate::attack::{Attack, Payload, Target, Technique};
use crate::template::{generate, SENTINEL};

/// A protection profile under evaluation: a deployed-defense baseline or
/// a Levee build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Baseline deployments (DEP/ASLR/cookies/CFI/…).
    Deployment(Deployment),
    /// Levee configurations (safe stack / CPS / CPI).
    Levee(BuildConfig),
}

impl Profile {
    /// The paper's §5.1 lineup (legacy, deployed, safe stack, CPS,
    /// CPI) extended with the pointer-authentication family
    /// (`levee_core::pac`) — the CPI-vs-PAC comparison every matrix
    /// report tabulates.
    pub fn paper_lineup() -> Vec<Profile> {
        vec![
            Profile::Deployment(Deployment::Legacy),
            Profile::Deployment(Deployment::Deployed),
            Profile::Levee(BuildConfig::SafeStack),
            Profile::Levee(BuildConfig::Cps),
            Profile::Levee(BuildConfig::Cpi),
            Profile::Levee(BuildConfig::Pac),
            Profile::Levee(BuildConfig::PacTight),
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> String {
        match self {
            Profile::Deployment(d) => d.name().to_string(),
            Profile::Levee(c) => c.name().to_string(),
        }
    }

    /// Does this profile insert stack cookies (affects frame distances
    /// the attacker must account for)?
    fn has_cookies(&self) -> bool {
        matches!(
            self,
            Profile::Deployment(Deployment::Cookies) | Profile::Deployment(Deployment::Deployed)
        )
    }

    /// Builds `src` under this profile into a [`Session`], layering the
    /// profile's settings over `base` (engine selection, cost model, …).
    /// One session serves the whole recon → dry-run → exploit pipeline,
    /// re-armed between phases.
    fn session(&self, src: &str, base: VmConfig) -> Session {
        match self {
            Profile::Deployment(d) => {
                let mut module = levee_minic::compile(src, "ripe").expect("template compiles");
                d.apply(&mut module);
                Session::builder()
                    .module(module)
                    .name("ripe")
                    .vm_config(d.vm_config(base))
                    .build()
                    .expect("deployment session builds")
            }
            Profile::Levee(c) => Session::builder()
                .source(src)
                .name("ripe")
                .protection(*c)
                .vm_config(base)
                .build()
                .expect("template compiles"),
        }
    }
}

/// What happened to one attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackResult {
    /// The attacker reached their goal: the defense FAILED.
    Hijacked,
    /// A defense mechanism detected and stopped the attack.
    Detected(String),
    /// The attack crashed the program without reaching the goal.
    Crashed(String),
    /// The program survived to the sentinel: silently prevented.
    Survived,
}

impl AttackResult {
    /// Did the defense hold?
    pub fn prevented(&self) -> bool {
        !matches!(self, AttackResult::Hijacked)
    }
}

/// Addresses learned by the attacker's recon run.
struct Recon {
    leak1: u64,
    leak2: Option<u64>,
    system: u64,
    rop_site: u64,
    evil: u64,
}

fn parse_leaks(output: &str) -> (u64, Option<u64>) {
    let mut ints = output.lines().filter_map(|l| l.parse::<i64>().ok());
    let leak1 = ints.next().unwrap_or(0) as u64;
    let leak2 = ints.next().filter(|v| *v != 7 && v.to_string() != SENTINEL);
    (leak1, leak2.map(|v| v as u64))
}

/// Every integer the program printed, in order — the substitution
/// templates leak three values (buffer, victim slot, donor word), one
/// more than [`parse_leaks`] models.
fn parse_ints(output: &str) -> Vec<i64> {
    output
        .lines()
        .filter_map(|l| l.parse::<i64>().ok())
        .collect()
}

/// A blind MAC-tag guess: splitmix over a salt that is deliberately
/// *not* the VM's key-derivation salt — the attacker does not know the
/// per-machine PAC key, only the tag width. Matches the real tag with
/// probability 2^-bits.
fn forge_guess(seed: u64, bits: u8) -> u64 {
    let mut x = seed ^ 0x0BAD_F00D_0DDB_1A5E;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x >> (64 - u32::from(bits.clamp(1, 16)))
}

fn goal_value(attack: &Attack, recon: &Recon) -> u64 {
    match attack.payload {
        Payload::Shellcode => recon.leak1,
        Payload::Ret2Libc => recon.system,
        Payload::Rop => recon.rop_site,
        Payload::FuncReuse => recon.evil,
    }
}

fn build_payload(attack: &Attack, recon: &Recon, cookie_gap: bool) -> Vec<u8> {
    let gap = if cookie_gap { 8 } else { 0 };
    let goal = goal_value(attack, recon);
    let mut p = Vec::new();
    match attack.technique {
        Technique::Direct => {
            let offset = match attack.target {
                Target::RetAddr => 64 + gap,
                _ => match recon.leak2 {
                    Some(l2) => (l2 - recon.leak1) as usize,
                    None => 64,
                },
            };
            p.extend(std::iter::repeat_n(b'A', offset));
            p.extend_from_slice(&goal.to_le_bytes());
        }
        Technique::Indirect => {
            // Stage 2 value first (the program reads it up front), then
            // the overflow that redirects the data pointer.
            p.extend_from_slice(&goal.to_le_bytes());
            let write_target = match attack.target {
                // The saved return address of vuln(): carrier struct is
                // 72 bytes, directly below the (optional) cookie.
                Target::RetAddr => recon.leak1 + 72 + gap as u64,
                // The function-pointer global, leaked directly.
                _ => recon.leak2.unwrap_or(recon.leak1 + 80),
            };
            p.extend(std::iter::repeat_n(b'A', 64));
            p.extend_from_slice(&write_target.to_le_bytes());
        }
        Technique::Substitute | Technique::Forge => {
            unreachable!("PAC-era payloads are built from the victim dry run")
        }
    }
    p
}

/// Runs one attack against one profile. `seed` feeds the victim's
/// randomization (ASLR layout, cookie values, safe-region base).
pub fn run_attack(attack: &Attack, profile: &Profile, seed: u64) -> AttackResult {
    run_attack_with(attack, profile, seed, VmConfig::default())
}

/// Like [`run_attack`], but layered over a caller-supplied base
/// [`VmConfig`] — the engines differential suite uses this to replay
/// the attack matrix under both execution engines.
pub fn run_attack_with(
    attack: &Attack,
    profile: &Profile,
    seed: u64,
    base: VmConfig,
) -> AttackResult {
    let src = generate(attack);
    let mut session = profile.session(&src, base);
    let victim_cfg = session.vm_config().with_seed(seed);

    // --- Recon: the attacker's own copy, without ASLR. ---
    session.reconfigure(|cfg| {
        cfg.aslr = false;
        cfg.seed = 0xA77AC4E4;
    });
    let recon_system = session.intrinsic_entry(Intrinsic::System);
    let recon_rop = *session
        .ret_site_addrs()
        .last()
        .expect("templates contain calls");
    let recon_evil = session.func_entry("evil_cb").expect("preamble function");
    let recon_out = session.run(b"");
    let (leak1, leak2) = parse_leaks(&recon_out.output);
    let recon = Recon {
        leak1,
        leak2,
        system: recon_system,
        rop_site: recon_rop,
        evil: recon_evil,
    };
    // --- Victim dry run: learn the *actual* goal addresses for this
    // seed (what the attacker hopes to reach; the VM needs them to
    // detect success). The same session pivots to the victim's
    // configuration; the built module never recompiles. ---
    session.reconfigure(|cfg| *cfg = victim_cfg);
    let dry_system = session.intrinsic_entry(Intrinsic::System);
    let dry_rop = *session.ret_site_addrs().last().expect("calls exist");
    let dry_evil = session.func_entry("evil_cb").expect("preamble function");
    let dry_out = session.run(b"");
    let (dry_leak1, _) = parse_leaks(&dry_out.output);

    // Classic payloads depend only on recon; the PAC-era techniques
    // write a word that is a function of the *victim's* seed (the MAC
    // key is derived from it), so they draw on the dry run too: the
    // substituted word is the donor slot's leaked in-memory word, the
    // forged word carries a blind tag guess over this victim's goal.
    let payload = match attack.technique {
        Technique::Substitute | Technique::Forge => {
            let offset = match recon.leak2 {
                Some(l2) => (l2 - recon.leak1) as usize,
                None => 64,
            };
            let word = match attack.technique {
                Technique::Substitute => {
                    parse_ints(&dry_out.output).get(2).copied().unwrap_or(0) as u64
                }
                _ => {
                    let bits = session.vm_config().pac_tag_bits.clamp(1, 16);
                    (dry_evil & PAC_PTR_MASK) | (forge_guess(seed, bits) << (64 - u32::from(bits)))
                }
            };
            let mut p = Vec::with_capacity(offset + 8);
            p.extend(std::iter::repeat_n(b'A', offset));
            p.extend_from_slice(&word.to_le_bytes());
            p
        }
        _ => build_payload(attack, &recon, profile.has_cookies()),
    };

    // --- The exploit: same configuration, so the resident machine is
    // simply re-armed (goals survive the between-run reset). ---
    session.add_goal(
        match attack.payload {
            Payload::Shellcode => dry_leak1,
            Payload::Ret2Libc => dry_system,
            Payload::Rop => dry_rop,
            Payload::FuncReuse => dry_evil,
        },
        attack.payload.goal_kind(),
    );
    let out = session.run(&payload);
    classify(out.status, &out.output)
}

fn classify(status: ExitStatus, output: &str) -> AttackResult {
    match status {
        ExitStatus::Trapped(Trap::Hijacked { .. }) => AttackResult::Hijacked,
        ExitStatus::Trapped(t) if t.is_detection() => AttackResult::Detected(trap_name(&t)),
        ExitStatus::Trapped(t) => AttackResult::Crashed(trap_name(&t)),
        ExitStatus::Exited(_) => {
            if output.ends_with(SENTINEL) {
                AttackResult::Survived
            } else {
                AttackResult::Crashed("early-exit".into())
            }
        }
    }
}

fn trap_name(t: &Trap) -> String {
    match t {
        Trap::Cpi { .. } => "CPI".into(),
        Trap::Pac { .. } => "PAC".into(),
        Trap::Cfi { .. } => "CFI".into(),
        Trap::Cookie => "cookie".into(),
        Trap::ShadowStack { .. } => "shadow-stack".into(),
        Trap::Nx { .. } => "DEP".into(),
        Trap::SafeRegion { .. } => "isolation".into(),
        Trap::SoftBound { .. } => "softbound".into(),
        Trap::Unmapped { .. } => "segfault".into(),
        Trap::BadControl { .. } => "wild-jump".into(),
        other => format!("{other:?}"),
    }
}

/// Aggregated results of a whole suite against one profile.
#[derive(Debug, Clone, Default)]
pub struct Tally {
    /// Attacks that reached their goal.
    pub hijacked: Vec<Attack>,
    /// Attacks stopped by an explicit detection.
    pub detected: usize,
    /// Attacks that crashed the victim without success.
    pub crashed: usize,
    /// Attacks silently neutralized (program survived).
    pub survived: usize,
}

impl Tally {
    /// Total attacks evaluated.
    pub fn total(&self) -> usize {
        self.hijacked.len() + self.detected + self.crashed + self.survived
    }

    /// Number of successful hijacks.
    pub fn successes(&self) -> usize {
        self.hijacked.len()
    }
}

/// Runs every attack in `attacks` against `profile`.
pub fn evaluate(attacks: &[Attack], profile: &Profile, seed: u64) -> Tally {
    let mut tally = Tally::default();
    for (i, attack) in attacks.iter().enumerate() {
        match run_attack(attack, profile, seed ^ (i as u64).wrapping_mul(0x9E37_79B9)) {
            AttackResult::Hijacked => tally.hijacked.push(*attack),
            AttackResult::Detected(_) => tally.detected += 1,
            AttackResult::Crashed(_) => tally.crashed += 1,
            AttackResult::Survived => tally.survived += 1,
        }
    }
    tally
}
