//! # levee-ripe — a RIPE-like control-flow-hijack benchmark
//!
//! A reimplementation of the RIPE benchmark's attack matrix (Wilander et
//! al., ACSAC'11) for the Levee pipeline, reproducing §5.1 of the CPI
//! paper: vulnerable mini-C programs spanning every combination of
//! overflow location, target code pointer, overflow technique, abused
//! libc function and payload — evaluated against the deployed-defense
//! baselines and the Levee configurations.
//!
//! The headline result to reproduce: on a legacy system most attacks
//! succeed; DEP+ASLR+cookies stop most but not all; **CPS and CPI stop
//! every one**; the safe stack alone stops every return-address attack.
//!
//! ## Example
//!
//! ```
//! use levee_ripe::{all_attacks, evaluate, Profile};
//! use levee_core::BuildConfig;
//!
//! let suite: Vec<_> = all_attacks().into_iter().take(4).collect();
//! let tally = evaluate(&suite, &Profile::Levee(BuildConfig::Cpi), 42);
//! assert_eq!(tally.successes(), 0);
//! ```

pub mod attack;
pub mod harness;
pub mod template;

pub use attack::{all_attacks, AbuseFn, Attack, Location, Payload, Target, Technique};
pub use harness::{evaluate, run_attack, run_attack_with, AttackResult, Profile, Tally};
pub use template::generate;
