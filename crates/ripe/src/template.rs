//! Vulnerable-program generation: one mini-C program per attack shape.
//!
//! Every template leaks the addresses the attacker legitimately knows
//! from studying a local copy of the binary (buffer and target
//! addresses, via `print_int`), performs the overflow through the abused
//! function, then uses the corrupted code pointer (returns, calls, or
//! longjmps). `main` prints the sentinel `-4242` afterwards, so a run
//! that survives the attack is detectable.
//!
//! The PAC-era techniques ride the same templates with one twist each
//! (see [`levee_core::pac`] for the defense being attacked):
//! [`Technique::Forge`] reuses the direct fn-pointer templates
//! verbatim — only the *written word* differs (goal address plus a
//! blind-guessed tag, built by the harness from the victim's tag
//! width) — while [`Technique::Substitute`] adds a `donor` global
//! holding a legitimately sealed pointer to `evil_cb` and leaks its
//! sealed word through an integer-typed alias (`long*`), the
//! type-laundering read no defense rewrites; the harness replays that
//! word over the victim slot.

use crate::attack::{AbuseFn, Attack, Location, Target, Technique};

/// The sentinel printed when the program survives to the end.
pub const SENTINEL: &str = "-4242";

const PREAMBLE: &str = r#"
void good_cb(int x) { print_int(x); }
void evil_cb(int x) { print_int(666); }
"#;

/// The abuse snippet writing attacker bytes into `dest` (a `char*`).
fn abuse_snippet(abuse: AbuseFn, dest: &str) -> String {
    match abuse {
        AbuseFn::ReadInput => format!("    read_input({dest}, -1);\n"),
        AbuseFn::Strcpy => format!(
            "    char* sc = (char*)malloc(2048);\n\
             \x20   long sn = read_input(sc, 2000);\n\
             \x20   sc[sn] = '\\0';\n\
             \x20   strcpy({dest}, sc);\n"
        ),
        AbuseFn::Memcpy => format!(
            "    char* sc = (char*)malloc(2048);\n\
             \x20   long sn = read_input(sc, 2000);\n\
             \x20   memcpy((void*){dest}, (void*)sc, sn);\n"
        ),
        AbuseFn::LoopCopy => format!(
            "    char* sc = (char*)malloc(2048);\n\
             \x20   long sn = read_input(sc, 2000);\n\
             \x20   long i;\n\
             \x20   for (i = 0; i < sn; i = i + 1) {dest}[i] = sc[i];\n"
        ),
    }
}

/// Generates the vulnerable program for `attack`.
pub fn generate(attack: &Attack) -> String {
    let abuse = |dest: &str| abuse_snippet(attack.abuse, dest);
    let body = match (attack.location, attack.target, attack.technique) {
        (Location::Stack, Target::RetAddr, Technique::Direct) => format!(
            "void vuln() {{\n\
             \x20   char buf[64];\n\
             \x20   print_int((long)buf);\n\
             {}\
             }}\n",
            abuse("buf")
        ),
        (Location::Stack, Target::RetAddr, Technique::Indirect) => format!(
            "struct icarrier {{ char buf[64]; long where; }};\n\
             void vuln() {{\n\
             \x20   struct icarrier c;\n\
             \x20   c.where = 0;\n\
             \x20   long val = 0;\n\
             \x20   read_input((char*)&val, 8);\n\
             \x20   print_int((long)c.buf);\n\
             {}\
             \x20   if (c.where != 0) {{\n\
             \x20       long* p = (long*)c.where;\n\
             \x20       *p = val;\n\
             \x20   }}\n\
             }}\n",
            abuse("c.buf")
        ),
        // Forgery reuses the classic direct-overflow bodies verbatim:
        // the technique differs only in the word the payload writes
        // (goal address + guessed MAC tag instead of a raw address).
        (Location::Stack, Target::FuncPtr, Technique::Direct | Technique::Forge) => format!(
            "struct carrier {{ char buf[64]; void (*f)(int); }};\n\
             void vuln() {{\n\
             \x20   struct carrier c;\n\
             \x20   c.f = good_cb;\n\
             \x20   print_int((long)c.buf);\n\
             \x20   print_int((long)&c.f);\n\
             {}\
             \x20   c.f(7);\n\
             }}\n",
            abuse("c.buf")
        ),
        (Location::Stack, Target::LongjmpBuf, Technique::Direct) => format!(
            "struct jcarrier {{ char buf[64]; long jb[3]; }};\n\
             void vuln() {{\n\
             \x20   struct jcarrier c;\n\
             \x20   print_int((long)c.buf);\n\
             \x20   print_int((long)c.jb);\n\
             \x20   int r = setjmp(c.jb);\n\
             \x20   if (r != 0) {{ return; }}\n\
             {}\
             \x20   longjmp(c.jb, 5);\n\
             }}\n",
            abuse("c.buf")
        ),
        (Location::Bss | Location::Data, Target::FuncPtr, Technique::Direct | Technique::Forge) => {
            let init = if attack.location == Location::Data {
                " = \"seeded\""
            } else {
                ""
            };
            format!(
                "char gbuf[64]{init};\n\
                 void (*gfp)(int);\n\
                 void vuln() {{\n\
                 \x20   gfp = good_cb;\n\
                 \x20   print_int((long)gbuf);\n\
                 \x20   print_int((long)&gfp);\n\
                 {}\
                 \x20   gfp(7);\n\
                 }}\n",
                abuse("gbuf")
            )
        }
        (Location::Bss, Target::FuncPtr, Technique::Indirect) => format!(
            "char gbuf[64];\n\
             long gwhere;\n\
             void (*gfp)(int);\n\
             void vuln() {{\n\
             \x20   gfp = good_cb;\n\
             \x20   gwhere = 0;\n\
             \x20   long val = 0;\n\
             \x20   read_input((char*)&val, 8);\n\
             \x20   print_int((long)gbuf);\n\
             \x20   print_int((long)&gfp);\n\
             {}\
             \x20   if (gwhere != 0) {{\n\
             \x20       long* p = (long*)gwhere;\n\
             \x20       *p = val;\n\
             \x20   }}\n\
             \x20   gfp(7);\n\
             }}\n",
            abuse("gbuf")
        ),
        (Location::Bss, Target::LongjmpBuf, Technique::Direct) => format!(
            "char gbuf[64];\n\
             long gjb[3];\n\
             void vuln() {{\n\
             \x20   print_int((long)gbuf);\n\
             \x20   print_int((long)gjb);\n\
             \x20   int r = setjmp(gjb);\n\
             \x20   if (r != 0) {{ return; }}\n\
             {}\
             \x20   longjmp(gjb, 5);\n\
             }}\n",
            abuse("gbuf")
        ),
        (Location::Heap, Target::FuncPtr, Technique::Direct | Technique::Forge) => format!(
            "struct hobj {{ void (*f)(int); long tag; }};\n\
             void vuln() {{\n\
             \x20   char* hbuf = (char*)malloc(64);\n\
             \x20   struct hobj* o = (struct hobj*)malloc(16);\n\
             \x20   o->f = good_cb;\n\
             \x20   print_int((long)hbuf);\n\
             \x20   print_int((long)&o->f);\n\
             {}\
             \x20   o->f(7);\n\
             }}\n",
            abuse("hbuf")
        ),
        // Substitution templates add a *donor* slot holding a pointer
        // to the attacker's chosen function, and leak the donor's raw
        // in-memory word through an integer-typed load (which no
        // defense rewrites — the classic type-laundering leak). Under
        // PAC the leaked word is sealed; replaying it over the victim
        // slot authenticates under context-free `-fpac` but not under
        // per-slot `-fpac-tight`.
        (Location::Stack, Target::FuncPtr, Technique::Substitute) => format!(
            "struct carrier {{ char buf[64]; void (*f)(int); }};\n\
             void (*donor)(int);\n\
             void vuln() {{\n\
             \x20   struct carrier c;\n\
             \x20   c.f = good_cb;\n\
             \x20   donor = evil_cb;\n\
             \x20   print_int((long)c.buf);\n\
             \x20   print_int((long)&c.f);\n\
             \x20   long* dp = (long*)&donor;\n\
             \x20   print_int(dp[0]);\n\
             {}\
             \x20   c.f(7);\n\
             }}\n",
            abuse("c.buf")
        ),
        (Location::Bss | Location::Data, Target::FuncPtr, Technique::Substitute) => {
            let init = if attack.location == Location::Data {
                " = \"seeded\""
            } else {
                ""
            };
            format!(
                "char gbuf[64]{init};\n\
                 void (*gfp)(int);\n\
                 void (*donor)(int);\n\
                 void vuln() {{\n\
                 \x20   gfp = good_cb;\n\
                 \x20   donor = evil_cb;\n\
                 \x20   print_int((long)gbuf);\n\
                 \x20   print_int((long)&gfp);\n\
                 \x20   long* dp = (long*)&donor;\n\
                 \x20   print_int(dp[0]);\n\
                 {}\
                 \x20   gfp(7);\n\
                 }}\n",
                abuse("gbuf")
            )
        }
        (Location::Heap, Target::FuncPtr, Technique::Substitute) => format!(
            "struct hobj {{ void (*f)(int); long tag; }};\n\
             void (*donor)(int);\n\
             void vuln() {{\n\
             \x20   char* hbuf = (char*)malloc(64);\n\
             \x20   struct hobj* o = (struct hobj*)malloc(16);\n\
             \x20   o->f = good_cb;\n\
             \x20   donor = evil_cb;\n\
             \x20   print_int((long)hbuf);\n\
             \x20   print_int((long)&o->f);\n\
             \x20   long* dp = (long*)&donor;\n\
             \x20   print_int(dp[0]);\n\
             {}\
             \x20   o->f(7);\n\
             }}\n",
            abuse("hbuf")
        ),
        other => unreachable!("Attack::is_valid rejects {other:?}"),
    };
    format!("{PREAMBLE}{body}int main() {{ vuln(); print_int({SENTINEL}); return 0; }}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::all_attacks;
    use levee_minic::compile;

    #[test]
    fn every_template_compiles() {
        for attack in all_attacks() {
            let src = generate(&attack);
            compile(&src, "ripe").unwrap_or_else(|e| {
                panic!("template for {} fails to compile: {e}\n{src}", attack.id())
            });
        }
    }

    #[test]
    fn benign_runs_reach_the_sentinel() {
        for attack in all_attacks() {
            let src = generate(&attack);
            let module = compile(&src, "ripe").unwrap();
            let mut session = levee_core::Session::builder()
                .module(module)
                .name("ripe")
                .build()
                .expect("module session builds");
            let out = session
                .run_ok(b"")
                .unwrap_or_else(|e| panic!("benign {} must exit cleanly: {e}", attack.id()));
            assert!(
                out.output.ends_with(SENTINEL),
                "benign {} must reach the sentinel",
                attack.id()
            );
        }
    }
}
