//! The §5.1 reproduction: the full attack suite against the paper's
//! five protection profiles. The shape to match:
//!
//! * legacy (no defenses): the vast majority of attacks succeed,
//! * DEP+ASLR+cookies: a small number still succeed,
//! * safe stack: every return-address attack is stopped,
//! * CPS and CPI: **zero** successful hijacks.

use levee_core::BuildConfig;
use levee_defenses::Deployment;
use levee_ripe::{all_attacks, evaluate, Profile, Target};

#[test]
fn legacy_system_is_wide_open() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Deployment(Deployment::Legacy), 1);
    let rate = tally.successes() as f64 / tally.total() as f64;
    assert!(
        rate > 0.5,
        "legacy should lose most attacks: {}/{} succeeded",
        tally.successes(),
        tally.total()
    );
}

#[test]
fn deployed_baseline_blocks_most_but_not_all() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Deployment(Deployment::Deployed), 2);
    let legacy = evaluate(&attacks, &Profile::Deployment(Deployment::Legacy), 2);
    assert!(
        tally.successes() < legacy.successes() / 2,
        "deployed ({}) must block far more than legacy ({})",
        tally.successes(),
        legacy.successes()
    );
    assert!(
        tally.successes() > 0,
        "like the paper's 43-49/850, some attacks must survive DEP+ASLR+cookies"
    );
}

#[test]
fn safe_stack_stops_all_return_address_attacks() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Levee(BuildConfig::SafeStack), 3);
    let ret_hijacks: Vec<_> = tally
        .hijacked
        .iter()
        .filter(|a| a.target == Target::RetAddr)
        .collect();
    assert!(
        ret_hijacks.is_empty(),
        "safe stack must stop every return-address attack, leaked: {ret_hijacks:?}"
    );
}

#[test]
fn cps_prevents_every_attack() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Levee(BuildConfig::Cps), 4);
    assert_eq!(
        tally.successes(),
        0,
        "CPS must stop all attacks; leaked: {:?}",
        tally.hijacked.iter().map(|a| a.id()).collect::<Vec<_>>()
    );
}

#[test]
fn cpi_prevents_every_attack() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Levee(BuildConfig::Cpi), 5);
    assert_eq!(
        tally.successes(),
        0,
        "CPI must stop all attacks; leaked: {:?}",
        tally.hijacked.iter().map(|a| a.id()).collect::<Vec<_>>()
    );
}

#[test]
fn cpi_prevents_every_attack_across_seeds() {
    // Determinism of the guarantee, not of the dice: any seed, zero wins.
    let attacks = all_attacks();
    for seed in [11, 222, 3333] {
        let tally = evaluate(&attacks, &Profile::Levee(BuildConfig::Cpi), seed);
        assert_eq!(tally.successes(), 0, "seed {seed}");
    }
}
