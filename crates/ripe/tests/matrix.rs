//! The §5.1 reproduction: the full attack suite against the paper's
//! five protection profiles, plus the PAC-era extension. The shape to
//! match:
//!
//! * legacy (no defenses): the vast majority of attacks succeed,
//! * DEP+ASLR+cookies: a small number still succeed,
//! * safe stack: every return-address attack is stopped,
//! * CPS and CPI: **zero** successful hijacks,
//! * PAC (both modes): every *classic* hijack stopped, but sealed-word
//!   **substitution** defeats context-free `-fpac` — only the per-slot
//!   binding of `-fpac-tight` rejects the replay,
//! * MAC **forgery** fails with the default 16-bit tags and is detected
//!   as a PAC violation.

use levee_core::BuildConfig;
use levee_defenses::Deployment;
use levee_ripe::{all_attacks, evaluate, Attack, Profile, Target, Technique};

/// The pre-PAC RIPE matrix: direct overflows and indirect writes.
fn classic_attacks() -> Vec<Attack> {
    all_attacks()
        .into_iter()
        .filter(|a| matches!(a.technique, Technique::Direct | Technique::Indirect))
        .collect()
}

fn by_technique(t: Technique) -> Vec<Attack> {
    all_attacks()
        .into_iter()
        .filter(|a| a.technique == t)
        .collect()
}

#[test]
fn legacy_system_is_wide_open() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Deployment(Deployment::Legacy), 1);
    let rate = tally.successes() as f64 / tally.total() as f64;
    assert!(
        rate > 0.5,
        "legacy should lose most attacks: {}/{} succeeded",
        tally.successes(),
        tally.total()
    );
}

#[test]
fn deployed_baseline_blocks_most_but_not_all() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Deployment(Deployment::Deployed), 2);
    let legacy = evaluate(&attacks, &Profile::Deployment(Deployment::Legacy), 2);
    assert!(
        tally.successes() < legacy.successes() / 2,
        "deployed ({}) must block far more than legacy ({})",
        tally.successes(),
        legacy.successes()
    );
    assert!(
        tally.successes() > 0,
        "like the paper's 43-49/850, some attacks must survive DEP+ASLR+cookies"
    );
}

#[test]
fn safe_stack_stops_all_return_address_attacks() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Levee(BuildConfig::SafeStack), 3);
    let ret_hijacks: Vec<_> = tally
        .hijacked
        .iter()
        .filter(|a| a.target == Target::RetAddr)
        .collect();
    assert!(
        ret_hijacks.is_empty(),
        "safe stack must stop every return-address attack, leaked: {ret_hijacks:?}"
    );
}

#[test]
fn cps_prevents_every_attack() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Levee(BuildConfig::Cps), 4);
    assert_eq!(
        tally.successes(),
        0,
        "CPS must stop all attacks; leaked: {:?}",
        tally.hijacked.iter().map(|a| a.id()).collect::<Vec<_>>()
    );
}

#[test]
fn cpi_prevents_every_attack() {
    let attacks = all_attacks();
    let tally = evaluate(&attacks, &Profile::Levee(BuildConfig::Cpi), 5);
    assert_eq!(
        tally.successes(),
        0,
        "CPI must stop all attacks; leaked: {:?}",
        tally.hijacked.iter().map(|a| a.id()).collect::<Vec<_>>()
    );
}

#[test]
fn pac_stops_every_classic_hijack() {
    let classic = classic_attacks();
    assert_eq!(classic.len(), 144);
    for (config, seed) in [(BuildConfig::Pac, 6), (BuildConfig::PacTight, 7)] {
        let tally = evaluate(&classic, &Profile::Levee(config), seed);
        assert_eq!(
            tally.successes(),
            0,
            "{} must stop every classic hijack; leaked: {:?}",
            config.name(),
            tally.hijacked.iter().map(|a| a.id()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn substitution_defeats_plain_pac_but_not_tight() {
    let subs = by_technique(Technique::Substitute);
    let plain = evaluate(&subs, &Profile::Levee(BuildConfig::Pac), 8);
    assert!(
        plain.successes() > 0,
        "a replayed sealed word must authenticate somewhere under \
         context-free -fpac ({}/{} hijacked)",
        plain.successes(),
        plain.total()
    );
    let tight = evaluate(&subs, &Profile::Levee(BuildConfig::PacTight), 8);
    assert_eq!(
        tight.successes(),
        0,
        "per-slot binding must reject every replay; leaked: {:?}",
        tight.hijacked.iter().map(|a| a.id()).collect::<Vec<_>>()
    );
    assert!(
        tight.detected > 0,
        "tight-mode replays must die as explicit PAC detections"
    );
}

#[test]
fn forgery_fails_against_full_width_tags() {
    let forges = by_technique(Technique::Forge);
    for (config, seed) in [(BuildConfig::Pac, 9), (BuildConfig::PacTight, 10)] {
        let tally = evaluate(&forges, &Profile::Levee(config), seed);
        assert_eq!(
            tally.successes(),
            0,
            "{}: a blind 16-bit tag guess must not authenticate; leaked: {:?}",
            config.name(),
            tally.hijacked.iter().map(|a| a.id()).collect::<Vec<_>>()
        );
        assert!(
            tally.detected > 0,
            "{}: forged words must surface as PAC detections",
            config.name()
        );
    }
}

#[test]
fn forgery_success_scales_with_tag_width() {
    use levee_ripe::{run_attack_with, AbuseFn, AttackResult, Location};
    use levee_vm::VmConfig;
    // With the tag narrowed to a single bit the blind guess lands with
    // probability 1/2 per victim seed: over a few seeds the forge must
    // both win and lose — the 2^-bits detection probability the PAC
    // family models (full-width tags are pinned to zero wins above).
    let attack = by_technique(Technique::Forge)
        .into_iter()
        .find(|a| a.location == Location::Bss && a.abuse == AbuseFn::ReadInput)
        .expect("bss/readinput forge exists");
    let narrow = VmConfig::default().with_pac_tag_bits(1);
    let (mut wins, mut losses) = (0, 0);
    for seed in 0..16 {
        match run_attack_with(&attack, &Profile::Levee(BuildConfig::Pac), seed, narrow) {
            AttackResult::Hijacked => wins += 1,
            _ => losses += 1,
        }
    }
    assert!(wins > 0, "a 1-bit tag must be guessable sometimes");
    assert!(losses > 0, "but a guess must not always land");
}

#[test]
fn cpi_prevents_every_attack_across_seeds() {
    // Determinism of the guarantee, not of the dice: any seed, zero wins.
    let attacks = all_attacks();
    for seed in [11, 222, 3333] {
        let tally = evaluate(&attacks, &Profile::Levee(BuildConfig::Cpi), seed);
        assert_eq!(tally.successes(), 0, "seed {seed}");
    }
}
