//! The "simple array" safe-pointer-store organization.
//!
//! The slot for the pointer stored at regular address `A` lives at a
//! fixed linear offset `(A / 8) * SLOT_SIZE` from the store base —
//! exactly one memory access per operation. The organization relies on
//! sparse address-space support: only touched pages materialize. The
//! paper found this the fastest organization once backed by 2 MB
//! superpages (fewer page faults and less TLB pressure than 4 KB pages),
//! at the price of the highest memory overhead (105% for CPI on SPEC).
//!
//! Compact 16-byte slots double the slot density of every metadata page
//! (a 4 KB page covers 256 pointer slots instead of 128), which both
//! halves the simulated footprint of a dense working set and halves the
//! page-fault/TLB pressure the 4 KB configuration suffers from.

use std::collections::HashMap;
use std::sync::Arc;

use crate::fasthash::FastHash;
use crate::store::{aligned_slots, PtrStore, Slot, Touched, SLOT_SIZE};

/// One materialized metadata page, shared copy-on-write with the
/// captured baseline: `Arc::strong_count > 1` means the page is
/// clean-shared with the snapshot, and the first write after a capture
/// splits it (recording the page index in the dirty list).
type PageArc = Arc<Vec<Option<Slot>>>;

/// The post-`load()` baseline: every then-resident page (both tiers,
/// keyed by page index) plus the accounting scalars.
#[derive(Clone)]
struct Baseline {
    pages: HashMap<u64, PageArc, FastHash>,
    resident: usize,
    live: usize,
}

/// Address span covered by the direct-indexed low tier: the whole low
/// 4 GB regular region (code, globals, heap, stacks — see the VM's
/// layout). Keys in this span are looked up through a direct-indexed
/// table instead of the hash map: safe-store operations run on every
/// instrumented memory access, so the lookup is hot.
const LOW_SPAN: u64 = 1 << 32;

/// Sparse linear array of slots, with configurable page size.
///
/// Cloning (for [`PtrStore::boxed_clone`]) shares both live and
/// baseline pages `Arc`-CoW with the original; each clone keeps its own
/// dirty list, so divergence tracking stays per machine.
#[derive(Clone)]
pub struct ArrayStore {
    base: u64,
    page_size: u64,
    slots_per_page: u64,
    /// Page indices below this bound (`LOW_SPAN` divided by the address
    /// span one metadata page covers) use the direct tier.
    low_pages: u64,
    /// Direct-indexed storage for the low tier (grown on demand).
    low: Vec<Option<PageArc>>,
    /// Hash-mapped storage for the sparse high remainder.
    pages: HashMap<u64, PageArc, FastHash>,
    /// Resident page count across both tiers (memory accounting).
    resident: usize,
    live: usize,
    /// The captured post-load image ([`PtrStore::capture_snapshot`]).
    baseline: Option<Baseline>,
    /// Page indices diverged from the baseline since the last capture
    /// or restore. Maintained only while a baseline exists; no page
    /// index repeats (a page is pushed exactly when it stops being
    /// clean-shared: on materialization or on its first CoW split).
    dirty: Vec<u64>,
}

impl ArrayStore {
    /// Creates an array store based at simulated address `base` with the
    /// given backing page size in bytes (4 KB or 2 MB in the paper).
    pub fn new(base: u64, page_size: u64) -> Self {
        assert!(page_size >= SLOT_SIZE && page_size.is_multiple_of(SLOT_SIZE));
        let slots_per_page = page_size / SLOT_SIZE;
        // One metadata page covers slots_per_page 8-byte slots of the
        // regular address space.
        let low_pages = LOW_SPAN / (slots_per_page * 8);
        ArrayStore {
            base,
            page_size,
            slots_per_page,
            low_pages,
            low: Vec::new(),
            pages: HashMap::default(),
            resident: 0,
            live: 0,
            baseline: None,
            dirty: Vec::new(),
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    fn slot_of(addr: u64) -> u64 {
        addr >> 3
    }

    /// Simulated safe-region address of the slot for `addr`.
    fn slot_addr(&self, addr: u64) -> u64 {
        self.base + Self::slot_of(addr) * SLOT_SIZE
    }

    #[inline]
    fn page(&self, page_idx: u64) -> Option<&Vec<Option<Slot>>> {
        if page_idx < self.low_pages {
            self.low.get(page_idx as usize)?.as_deref()
        } else {
            self.pages.get(&page_idx).map(|p| &**p)
        }
    }

    /// Returns the page for `page_idx` write-ready, materializing it if
    /// needed; `true` when this touch faulted it in. The write path of
    /// the dirty tracking: a page still clean-shared with the baseline
    /// (`Arc::strong_count > 1`) is recorded dirty and split before the
    /// caller mutates it; a freshly materialized page is dirty by
    /// definition.
    fn ensure(&mut self, page_idx: u64) -> (&mut Vec<Option<Slot>>, bool) {
        let spp = self.slots_per_page as usize;
        let mut fault = false;
        let tracking = self.baseline.is_some();
        let page: &mut PageArc = if page_idx < self.low_pages {
            let i = page_idx as usize;
            if self.low.len() <= i {
                self.low.resize_with(i + 1, || None);
            }
            let slot = &mut self.low[i];
            if slot.is_none() {
                *slot = Some(Arc::new(vec![None; spp]));
                fault = true;
                self.resident += 1;
                if tracking {
                    self.dirty.push(page_idx);
                }
            }
            slot.as_mut().expect("just ensured")
        } else {
            let resident = &mut self.resident;
            let dirty = &mut self.dirty;
            self.pages.entry(page_idx).or_insert_with(|| {
                fault = true;
                *resident += 1;
                if tracking {
                    dirty.push(page_idx);
                }
                Arc::new(vec![None; spp])
            })
        };
        if tracking && !fault && Arc::strong_count(page) > 1 {
            self.dirty.push(page_idx);
        }
        (Arc::make_mut(page), fault)
    }

    fn slot_ref(&self, addr: u64, touched: &mut Touched) -> Option<Slot> {
        touched.push(self.slot_addr(addr));
        let slot = Self::slot_of(addr);
        let page_idx = slot / self.slots_per_page;
        let in_page = (slot % self.slots_per_page) as usize;
        self.page(page_idx).and_then(|p| p[in_page])
    }

    fn set_slot(&mut self, addr: u64, value: Option<Slot>, t: &mut Touched) {
        t.push(self.slot_addr(addr));
        let slot = Self::slot_of(addr);
        let page_idx = slot / self.slots_per_page;
        let in_page = (slot % self.slots_per_page) as usize;
        if value.is_none() && self.page(page_idx).is_none() {
            // Never fault a page in just to record an absence.
            return;
        }
        let (page, fault) = self.ensure(page_idx);
        let delta = match (&page[in_page], &value) {
            (None, Some(_)) => 1,
            (Some(_), None) => -1,
            _ => 0,
        };
        page[in_page] = value;
        self.live = (self.live as isize + delta) as usize;
        t.page_fault |= fault;
    }
}

impl PtrStore for ArrayStore {
    fn boxed_clone(&self) -> Box<dyn PtrStore> {
        Box::new(self.clone())
    }

    fn set(&mut self, addr: u64, slot: Slot) -> Touched {
        let mut t = Touched::default();
        self.set_slot(addr, Some(slot), &mut t);
        t
    }

    fn get(&mut self, addr: u64) -> (Option<Slot>, Touched) {
        let mut t = Touched::default();
        let s = self.slot_ref(addr, &mut t);
        (s, t)
    }

    fn clear(&mut self, addr: u64) -> Touched {
        let mut t = Touched::default();
        self.set_slot(addr, None, &mut t);
        t
    }

    fn clear_range(&mut self, start: u64, len: u64) -> Touched {
        let mut t = Touched::default();
        for a in aligned_slots(start, len) {
            let sub = self.clear(a);
            t.absorb(&sub);
        }
        t
    }

    fn copy_range(&mut self, dst: u64, src: u64, len: u64) -> (u64, Touched) {
        let mut t = Touched::default();
        let mut copied = 0;
        // Gather first so overlapping ranges behave like memmove. Each
        // element is a plain 16-byte (word, handle) move.
        let slots: Vec<(u64, Option<Slot>)> = aligned_slots(src, len)
            .map(|a| {
                let mut sub = Touched::default();
                let s = self.slot_ref(a, &mut sub);
                t.absorb(&sub);
                (a - (src & !7), s)
            })
            .collect();
        for (off, s) in slots {
            let target = (dst & !7) + off;
            if s.is_some() {
                copied += 1;
            }
            let mut sub = Touched::default();
            self.set_slot(target, s, &mut sub);
            t.absorb(&sub);
        }
        (copied, t)
    }

    fn entry_count(&self) -> usize {
        self.live
    }

    fn memory_bytes(&self) -> u64 {
        self.resident as u64 * self.page_size
    }

    fn base(&self) -> u64 {
        self.base
    }

    fn reset(&mut self) {
        self.low.clear();
        self.pages.clear();
        self.resident = 0;
        self.live = 0;
        self.baseline = None;
        self.dirty.clear();
    }

    fn capture_snapshot(&mut self) {
        let mut pages: HashMap<u64, PageArc, FastHash> = HashMap::default();
        for (i, page) in self.low.iter().enumerate() {
            if let Some(p) = page {
                pages.insert(i as u64, Arc::clone(p));
            }
        }
        for (&i, p) in &self.pages {
            pages.insert(i, Arc::clone(p));
        }
        self.baseline = Some(Baseline {
            pages,
            resident: self.resident,
            live: self.live,
        });
        self.dirty.clear();
    }

    fn restore_snapshot(&mut self) -> u64 {
        let baseline = self.baseline.as_ref().expect("no baseline captured");
        let mut reverted = 0u64;
        for idx in std::mem::take(&mut self.dirty) {
            let restored = baseline.pages.get(&idx).cloned();
            if restored.is_some() {
                reverted += 1;
            }
            if idx < self.low_pages {
                self.low[idx as usize] = restored;
            } else {
                match restored {
                    Some(p) => {
                        self.pages.insert(idx, p);
                    }
                    None => {
                        self.pages.remove(&idx);
                    }
                }
            }
        }
        self.resident = baseline.resident;
        self.live = baseline.live;
        reverted * self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::MetaId;

    const BASE: u64 = 0x7000_0000_0000;

    /// A distinct live-looking handle for tests (the store never
    /// resolves handles, it only moves them).
    fn meta(tag: u64) -> Slot {
        Slot::new(tag, MetaId::NONE)
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut s = ArrayStore::new(BASE, 4096);
        let e = meta(0x1000);
        let _ = s.set(0x5008, e);
        assert_eq!(s.get(0x5008).0, Some(e));
        assert_eq!(s.get(0x5010).0, None);
        assert_eq!(s.entry_count(), 1);
        let _ = s.clear(0x5008);
        assert_eq!(s.get(0x5008).0, None);
        assert_eq!(s.entry_count(), 0);
    }

    #[test]
    fn slot_addresses_are_linear_in_key() {
        let mut s = ArrayStore::new(BASE, 4096);
        let (_, t1) = s.get(0x1000);
        let (_, t2) = s.get(0x1008);
        let a1 = t1.iter().next().unwrap();
        let a2 = t2.iter().next().unwrap();
        assert_eq!(a2 - a1, SLOT_SIZE);
        assert_eq!(a1, BASE + (0x1000 >> 3) * SLOT_SIZE);
    }

    #[test]
    fn page_fault_on_first_touch_only() {
        let mut s = ArrayStore::new(BASE, 4096);
        let t = s.set(0x9000, meta(0x40));
        assert!(t.page_fault);
        let t = s.set(0x9008, meta(0x40));
        assert!(!t.page_fault);
    }

    #[test]
    fn superpages_fault_less() {
        let mut small = ArrayStore::new(BASE, 4096);
        let mut big = ArrayStore::new(BASE, 2 << 20);
        let mut faults_small = 0;
        let mut faults_big = 0;
        for i in 0..1024u64 {
            // Spread keys across 64 KB of key space.
            let addr = i * 64 * 8;
            if small.set(addr, meta(1)).page_fault {
                faults_small += 1;
            }
            if big.set(addr, meta(1)).page_fault {
                faults_big += 1;
            }
        }
        assert!(faults_big < faults_small);
    }

    #[test]
    fn memory_is_page_granular() {
        let mut s = ArrayStore::new(BASE, 4096);
        let _ = s.set(0x0, meta(1));
        assert_eq!(s.memory_bytes(), 4096);
        // Same page (slots_per_page = 256 → keys 0..2048 share a page).
        let _ = s.set(0x7f8, meta(1));
        assert_eq!(s.memory_bytes(), 4096);
        // Next page.
        let _ = s.set(0x800, meta(1));
        assert_eq!(s.memory_bytes(), 8192);
    }

    /// The compact-slot payoff for the 4 KB configuration: the same
    /// dense working set materializes half the pages the 32-byte
    /// inline-entry geometry needed (one page now covers 2048 bytes of
    /// key space instead of 1024).
    #[test]
    fn compact_slots_halve_dense_footprint() {
        let mut s = ArrayStore::new(BASE, 4096);
        // 2048 contiguous pointer slots = 16 KB of key space.
        for i in 0..2048u64 {
            let _ = s.set(i * 8, meta(i));
        }
        // 2048 slots * 16 B = 32 KB = 8 pages (the seed layout needed 16).
        assert_eq!(s.memory_bytes(), 8 * 4096);
        assert_eq!(s.memory_bytes() / s.entry_count() as u64, SLOT_SIZE);
    }

    #[test]
    fn clear_range_covers_partial_slots() {
        let mut s = ArrayStore::new(BASE, 4096);
        let _ = s.set(0x1000, meta(1));
        let _ = s.set(0x1008, meta(2));
        let _ = s.set(0x1010, meta(3));
        // A 1-byte write at 0x100c invalidates the slot at 0x1008 only.
        let _ = s.clear_range(0x100c, 1);
        assert!(s.get(0x1000).0.is_some());
        assert!(s.get(0x1008).0.is_none());
        assert!(s.get(0x1010).0.is_some());
    }

    #[test]
    fn copy_range_transfers_and_clears() {
        let mut s = ArrayStore::new(BASE, 4096);
        let _ = s.set(0x1000, meta(0xAA));
        let _ = s.set(0x1010, meta(0xBB));
        let _ = s.set(0x2008, meta(0xCC)); // stale slot in destination
        let (copied, _) = s.copy_range(0x2000, 0x1000, 24);
        assert_eq!(copied, 2);
        assert_eq!(s.get(0x2000).0, Some(meta(0xAA)));
        assert_eq!(s.get(0x2008).0, None); // cleared: src slot had none
        assert_eq!(s.get(0x2010).0, Some(meta(0xBB)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = ArrayStore::new(BASE, 4096);
        let _ = s.set(0x1000, meta(1));
        s.reset();
        assert_eq!(s.entry_count(), 0);
        assert_eq!(s.memory_bytes(), 0);
        assert_eq!(s.get(0x1000).0, None);
    }

    #[test]
    fn snapshot_restore_reverts_only_dirtied_pages() {
        let mut s = ArrayStore::new(BASE, 4096);
        let _ = s.set(0x1000, meta(1)); // "loader" slot
        s.capture_snapshot();

        // A clean restore copies nothing back.
        assert_eq!(s.restore_snapshot(), 0);
        assert_eq!(s.get(0x1000).0, Some(meta(1)));

        // Dirty the baseline page and materialize a fresh one.
        let _ = s.set(0x1008, meta(2));
        let _ = s.clear(0x1000);
        let _ = s.set(0x80_0000, meta(3));
        assert_eq!(s.entry_count(), 2);

        // Exactly one page came back from the baseline (the fresh one
        // is dropped, not copied).
        assert_eq!(s.restore_snapshot(), 4096);
        assert_eq!(s.get(0x1000).0, Some(meta(1)));
        assert_eq!(s.get(0x1008).0, None);
        assert_eq!(s.get(0x80_0000).0, None);
        assert_eq!(s.entry_count(), 1);
        assert_eq!(s.memory_bytes(), 4096);
    }

    #[test]
    fn snapshot_restore_is_repeatable_and_observably_fresh() {
        // Restored state must be bit-identical to the captured one in
        // every observable, round after round.
        let mut s = ArrayStore::new(BASE, 2 << 20);
        let _ = s.set(0x2000, meta(7));
        s.capture_snapshot();
        let baseline_bytes = s.memory_bytes();
        for round in 0..3u64 {
            let _ = s.set(0x2000, meta(100 + round));
            let _ = s.set(0x9_0000, meta(round));
            assert!(s.restore_snapshot() > 0);
            assert_eq!(s.get(0x2000).0, Some(meta(7)));
            assert_eq!(s.get(0x9_0000).0, None);
            assert_eq!(s.entry_count(), 1);
            assert_eq!(s.memory_bytes(), baseline_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "no baseline captured")]
    fn restore_without_capture_is_a_lifecycle_bug() {
        let mut s = ArrayStore::new(BASE, 4096);
        let _ = s.restore_snapshot();
    }
}
