//! Based-on metadata records: `(value, lower, upper, id)`.
//!
//! This is the record of Fig. 2 in the paper: the bounds and temporal id
//! of the target object a sensitive pointer is based on, plus the
//! pointer value. Records no longer live *inside* the safe pointer
//! store: each distinct record is interned once in a
//! [`crate::meta::MetaTable`] and referenced by a 4-byte
//! [`crate::meta::MetaId`] handle, both from in-register values and from
//! the compact [`crate::store::Slot`]s of every
//! [`crate::store::PtrStore`] organization ([`crate::store::SLOT_SIZE`]
//! = 16 simulated bytes, half the inline-entry layout).

/// Metadata for one sensitive pointer.
///
/// `Hash` hashes all four fields; the [`crate::meta::MetaTable`] dedup
/// index relies on it agreeing with `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Entry {
    /// The pointer value itself (the safe region holds the authoritative
    /// copy; the regular-region location stays unused, per Fig. 2).
    pub value: u64,
    /// Lowest address of the target object this pointer is based on.
    pub lower: u64,
    /// One past the highest address of the target object.
    pub upper: u64,
    /// Temporal allocation id of the target object (CETS-style). Zero is
    /// reserved for "static" objects that are never deallocated
    /// (functions, globals).
    pub id: u64,
}

impl Entry {
    /// An entry for a code pointer: a control-flow destination has no
    /// extent, so bounds degenerate to the exact entry address (§3.3:
    /// "the pointer value must always match the destination exactly").
    pub fn code(addr: u64) -> Self {
        Entry {
            value: addr,
            lower: addr,
            upper: addr,
            id: 0,
        }
    }

    /// An entry for a data pointer based on the object `[lower, upper)`.
    pub fn data(value: u64, lower: u64, upper: u64, id: u64) -> Self {
        Entry {
            value,
            lower,
            upper,
            id,
        }
    }

    /// The paper's "invalid" metadata marker: lower bound greater than
    /// the upper bound. Universal pointers holding non-sensitive values
    /// carry this, and it never authorizes any access.
    pub fn invalid(value: u64) -> Self {
        Entry {
            value,
            lower: 1,
            upper: 0,
            id: 0,
        }
    }

    /// True if the metadata can ever authorize a dereference.
    pub fn is_valid(&self) -> bool {
        self.lower <= self.upper
    }

    /// True if this entry describes a control-flow destination.
    pub fn is_code(&self) -> bool {
        self.is_valid() && self.lower == self.upper && self.value == self.lower
    }

    /// Spatial check: may `[addr, addr+size)` be accessed through this
    /// pointer? (Temporal liveness is checked separately by the VM,
    /// which owns the live-id set.)
    pub fn allows_access(&self, addr: u64, size: u64) -> bool {
        self.is_valid() && addr >= self.lower && addr <= self.upper && size <= self.upper - addr
    }

    /// Does this *based-on* metadata authorize a control transfer to
    /// exactly `addr`? Unlike [`Entry::is_code`] it ignores the `value`
    /// field, so it works on interned provenance records (whose `value`
    /// is normalized) with the current pointer word supplied by the
    /// caller — the §3.3 rule that the pointer value must match the
    /// destination exactly.
    pub fn authorizes_code(&self, addr: u64) -> bool {
        self.lower == self.upper && addr == self.lower
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_entries_are_exact() {
        let e = Entry::code(0x40_0000);
        assert!(e.is_valid());
        assert!(e.is_code());
        assert!(e.allows_access(0x40_0000, 0));
        assert!(!e.allows_access(0x40_0001, 0));
        assert!(!e.allows_access(0x40_0000, 1));
    }

    #[test]
    fn data_entry_bounds() {
        let e = Entry::data(0x1000, 0x1000, 0x1040, 7);
        assert!(e.allows_access(0x1000, 8));
        assert!(e.allows_access(0x1038, 8));
        assert!(!e.allows_access(0x1039, 8)); // crosses upper
        assert!(!e.allows_access(0x0ff8, 8)); // below lower
        assert!(!e.is_code());
    }

    #[test]
    fn invalid_entry_authorizes_nothing() {
        let e = Entry::invalid(0xdead);
        assert!(!e.is_valid());
        assert!(!e.allows_access(0xdead, 0));
        assert!(!e.allows_access(0, u64::MAX));
    }

    #[test]
    fn zero_sized_object_allows_only_exact_pointer() {
        let e = Entry::data(0x2000, 0x2000, 0x2000, 1);
        assert!(e.allows_access(0x2000, 0));
        assert!(!e.allows_access(0x2000, 1));
    }

    #[test]
    fn authorizes_code_ignores_value() {
        // Provenance records normalize `value`, so the check must rely
        // only on bounds plus the caller-supplied pointer word.
        let mut e = Entry::code(0x40_0000);
        e.value = 0; // normalized form
        assert!(e.authorizes_code(0x40_0000));
        assert!(!e.authorizes_code(0x40_0010));
        let d = Entry::data(0x1000, 0x1000, 0x1040, 7);
        assert!(!d.authorizes_code(0x1000));
    }

    #[test]
    fn overflow_resistant_check() {
        // addr near u64::MAX must not wrap the bound comparison.
        let e = Entry::data(0x1000, 0x1000, 0x2000, 1);
        assert!(!e.allows_access(u64::MAX, 8));
        assert!(!e.allows_access(0x1ff8, u64::MAX));
    }
}
