//! A multiply-shift hasher for simulator-internal integer keys.
//!
//! The default SipHash dominates execution profiles: the VM performs a
//! hash-map lookup for nearly every simulated memory access, safe-store
//! operation and control transfer. Those maps are keyed by simulated
//! addresses and ids that need no DoS resistance, so a two-instruction
//! Fibonacci hash is the right trade.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher for integer keys.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for composite keys (tuples hash as byte streams).
        for b in bytes {
            self.0 = (self.0 ^ *b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, i: u64) {
        // Fibonacci multiply, then fold the high bits into the low ones
        // the hashmap actually uses.
        let h = (self.0 ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap`/`HashSet` build-hasher for integer keys.
pub type FastHash = BuildHasherDefault<FastHasher>;

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::FastHash;

    #[test]
    fn map_roundtrip() {
        let mut m: HashMap<u64, u64, FastHash> = HashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 8, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 8)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn spreads_aligned_keys() {
        // 8-aligned keys must not collide in the low bits.
        use std::hash::{BuildHasher, Hasher};
        let bh = FastHash::default();
        let mut low = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = bh.build_hasher();
            h.write_u64(i * 8);
            low.insert(h.finish() & 63);
        }
        assert!(low.len() > 16, "low bits collapse: {}", low.len());
    }
}
