//! The hash-table safe-pointer-store organization.
//!
//! Open addressing with linear probing and tombstone-free backward-shift
//! deletion. Memory-frugal (the paper measured 13.9% CPI memory overhead
//! for the hash table vs 105% for the array) but with the worst cache
//! behaviour: the hash scatters adjacent pointer slots across the table,
//! destroying the spatial locality the array organization preserves.

use crate::store::{aligned_slots, PtrStore, Slot, Touched};

/// Simulated bytes per bucket: 8-byte key tag + 8-byte pointer word +
/// 4-byte provenance handle, tightly packed. Unlike the array
/// organizations — whose [`crate::store::SLOT_SIZE`] stays a 16-byte
/// power of two so slot addresses compute with a shift — hash buckets
/// are only ever reached through a probe, so nothing forces padding the
/// handle out to a full word; the simulated layout packs the triple
/// into 20 bytes (the seed's inline-entry bucket was 8 + 32 = 40).
const BUCKET_BYTES: u64 = 8 + 8 + 4;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Key (the regular-region slot address).
    key: u64,
    slot: Slot,
}

/// The post-`load()` baseline image: the whole table (it is tiny at
/// load time — the loader's protected initializer slots in the initial
/// 64-bucket geometry) plus the geometry scalars. Restoring the
/// capacity and mask keeps probe addresses bit-identical to a fresh
/// load.
#[derive(Clone)]
struct Baseline {
    buckets: Vec<Option<Bucket>>,
    mask: u64,
    live: usize,
    max_capacity: usize,
}

/// Open-addressing hash table keyed by pointer slot address.
///
/// Cloning (for [`PtrStore::boxed_clone`]) deep-copies the table —
/// it is small (geometry scalars plus resident buckets) and has no
/// page substructure worth sharing.
#[derive(Clone)]
pub struct HashStore {
    base: u64,
    buckets: Vec<Option<Bucket>>,
    mask: u64,
    live: usize,
    /// High-water mark of resident buckets, for memory accounting.
    max_capacity: usize,
    /// The captured post-load image ([`PtrStore::capture_snapshot`]).
    /// Unlike the page/leaf organizations there is no useful sub-
    /// structure to track dirt at — growth rehashes every bucket — so
    /// the dirty granularity is the whole (tiny) baseline table.
    baseline: Option<Box<Baseline>>,
    /// Whether any mutation diverged the table from the baseline.
    dirty: bool,
}

impl HashStore {
    /// Creates a hash store based at simulated address `base`. Starts
    /// small and grows; memory accounting reflects the high-water mark.
    pub fn new(base: u64) -> Self {
        let cap = 64;
        HashStore {
            base,
            buckets: vec![None; cap],
            mask: cap as u64 - 1,
            live: 0,
            max_capacity: cap,
            baseline: None,
            dirty: false,
        }
    }

    /// Fibonacci hashing of the slot address.
    fn hash(&self, key: u64) -> u64 {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask
    }

    fn bucket_addr(&self, idx: u64) -> u64 {
        self.base + idx * BUCKET_BYTES
    }

    fn grow(&mut self) {
        let new_cap = self.buckets.len() * 2;
        self.max_capacity = self.max_capacity.max(new_cap);
        let old = std::mem::replace(&mut self.buckets, vec![None; new_cap]);
        self.mask = new_cap as u64 - 1;
        self.live = 0;
        for b in old.into_iter().flatten() {
            self.insert_no_trace(b.key, b.slot);
        }
    }

    fn insert_no_trace(&mut self, key: u64, slot: Slot) {
        let mut idx = self.hash(key);
        loop {
            match &mut self.buckets[idx as usize] {
                bucket @ None => {
                    *bucket = Some(Bucket { key, slot });
                    self.live += 1;
                    return;
                }
                Some(b) if b.key == key => {
                    b.slot = slot;
                    return;
                }
                Some(_) => idx = (idx + 1) & self.mask,
            }
        }
    }

    /// Probes for `key`; returns (bucket index if found, probe count).
    fn probe(&self, key: u64, t: &mut Touched) -> (Option<u64>, u32) {
        let mut idx = self.hash(key);
        let mut probes = 0;
        loop {
            probes += 1;
            // Probe chains are unbounded by design: sample + spill.
            t.push_sampled(self.bucket_addr(idx));
            match &self.buckets[idx as usize] {
                None => return (None, probes),
                Some(b) if b.key == key => return (Some(idx), probes),
                Some(_) => idx = (idx + 1) & self.mask,
            }
        }
    }

    /// Backward-shift deletion starting at a vacated index, preserving
    /// probe-sequence invariants without tombstones.
    fn backward_shift(&mut self, mut hole: u64) {
        let mut idx = (hole + 1) & self.mask;
        loop {
            match self.buckets[idx as usize] {
                None => return,
                Some(b) => {
                    let home = self.hash(b.key);
                    // Can `b` legally move into the hole? Yes iff the hole
                    // lies cyclically between its home and current position.
                    let between = if home <= idx {
                        home <= hole && hole < idx
                    } else {
                        home <= hole || hole < idx
                    };
                    if between {
                        self.buckets[hole as usize] = Some(b);
                        self.buckets[idx as usize] = None;
                        hole = idx;
                    }
                    idx = (idx + 1) & self.mask;
                }
            }
        }
    }
}

impl PtrStore for HashStore {
    fn boxed_clone(&self) -> Box<dyn PtrStore> {
        Box::new(self.clone())
    }

    fn set(&mut self, addr: u64, slot: Slot) -> Touched {
        if (self.live + 1) * 10 > self.buckets.len() * 7 {
            self.grow();
        }
        let key = addr & !7;
        let mut t = Touched::default();
        let (found, _) = self.probe(key, &mut t);
        self.dirty = true;
        match found {
            Some(idx) => {
                self.buckets[idx as usize].as_mut().expect("probed").slot = slot;
            }
            None => self.insert_no_trace(key, slot),
        }
        t
    }

    fn get(&mut self, addr: u64) -> (Option<Slot>, Touched) {
        let key = addr & !7;
        let mut t = Touched::default();
        let (found, _) = self.probe(key, &mut t);
        (
            found.map(|idx| self.buckets[idx as usize].expect("probed").slot),
            t,
        )
    }

    fn clear(&mut self, addr: u64) -> Touched {
        let key = addr & !7;
        let mut t = Touched::default();
        let (found, _) = self.probe(key, &mut t);
        if let Some(idx) = found {
            self.dirty = true;
            self.buckets[idx as usize] = None;
            self.live -= 1;
            self.backward_shift(idx);
        }
        t
    }

    fn clear_range(&mut self, start: u64, len: u64) -> Touched {
        let mut t = Touched::default();
        for a in aligned_slots(start, len) {
            let sub = self.clear(a);
            t.absorb(&sub);
        }
        t
    }

    fn copy_range(&mut self, dst: u64, src: u64, len: u64) -> (u64, Touched) {
        let mut t = Touched::default();
        let mut copied = 0;
        // Gather first so overlapping ranges behave like memmove. Each
        // element is a plain (word, handle) move.
        let slots: Vec<(u64, Option<Slot>)> = aligned_slots(src, len)
            .map(|a| {
                let (s, sub) = self.get(a);
                t.absorb(&sub);
                (a - (src & !7), s)
            })
            .collect();
        for (off, s) in slots {
            let target = (dst & !7) + off;
            match s {
                Some(slot) => {
                    let sub = self.set(target, slot);
                    t.absorb(&sub);
                    copied += 1;
                }
                None => {
                    let sub = self.clear(target);
                    t.absorb(&sub);
                }
            }
        }
        (copied, t)
    }

    fn entry_count(&self) -> usize {
        self.live
    }

    fn memory_bytes(&self) -> u64 {
        self.max_capacity as u64 * BUCKET_BYTES
    }

    fn base(&self) -> u64 {
        self.base
    }

    fn reset(&mut self) {
        // Back to the pristine geometry, not just empty buckets: a
        // reset store must behave bit-identically to a fresh one
        // (probe addresses depend on capacity via the mask, and the
        // memory high-water mark restarts).
        *self = HashStore::new(self.base);
    }

    fn capture_snapshot(&mut self) {
        self.baseline = Some(Box::new(Baseline {
            buckets: self.buckets.clone(),
            mask: self.mask,
            live: self.live,
            max_capacity: self.max_capacity,
        }));
        self.dirty = false;
    }

    fn restore_snapshot(&mut self) -> u64 {
        let baseline = self.baseline.as_ref().expect("no baseline captured");
        if !self.dirty {
            return 0;
        }
        self.buckets = baseline.buckets.clone();
        self.mask = baseline.mask;
        self.live = baseline.live;
        // Restoring the high-water mark too: a restored store must
        // report the same memory_bytes as a freshly loaded one.
        self.max_capacity = baseline.max_capacity;
        self.dirty = false;
        baseline.max_capacity as u64 * BUCKET_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::MetaId;

    const BASE: u64 = 0x7200_0000_0000;

    fn slot(word: u64) -> Slot {
        Slot::new(word, MetaId::NONE)
    }

    #[test]
    fn roundtrip() {
        let mut s = HashStore::new(BASE);
        let e = slot(1);
        let _ = s.set(0x1000, e);
        assert_eq!(s.get(0x1000).0, Some(e));
        assert_eq!(s.get(0x1008).0, None);
        let _ = s.clear(0x1000);
        assert_eq!(s.get(0x1000).0, None);
    }

    #[test]
    fn overwrite_does_not_duplicate() {
        let mut s = HashStore::new(BASE);
        let _ = s.set(0x10, slot(1));
        let _ = s.set(0x10, slot(2));
        assert_eq!(s.entry_count(), 1);
        assert_eq!(s.get(0x10).0, Some(slot(2)));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = HashStore::new(BASE);
        for i in 0..4096u64 {
            let _ = s.set(i * 8, slot(i));
        }
        assert_eq!(s.entry_count(), 4096);
        for i in 0..4096u64 {
            assert_eq!(s.get(i * 8).0, Some(slot(i)), "key {i}");
        }
    }

    #[test]
    fn deletion_preserves_probe_chains() {
        let mut s = HashStore::new(BASE);
        // Insert enough keys to force collisions, then delete half and
        // verify the rest are still findable.
        for i in 0..512u64 {
            let _ = s.set(i * 8, slot(i));
        }
        for i in (0..512u64).step_by(2) {
            let _ = s.clear(i * 8);
        }
        for i in 0..512u64 {
            let expect = if i % 2 == 0 { None } else { Some(slot(i)) };
            assert_eq!(s.get(i * 8).0, expect, "key {i}");
        }
    }

    #[test]
    fn memory_is_capacity_based_not_page_based() {
        let mut s = HashStore::new(BASE);
        let _ = s.set(0x0, slot(1));
        let _ = s.set(0xde_adbe_ef00, slot(2)); // far-apart keys, same table
        assert_eq!(s.memory_bytes(), 64 * BUCKET_BYTES);
        for i in 0..256u64 {
            let _ = s.set(i * 8, slot(i));
        }
        assert!(s.memory_bytes() >= 256 * BUCKET_BYTES); // grew
    }

    /// The compact-slot payoff: a packed bucket is 20 simulated bytes
    /// — exactly half the seed's 40-byte (key + inline entry) bucket.
    #[test]
    fn buckets_are_half_the_seed_size() {
        assert_eq!(BUCKET_BYTES, 20);
        assert_eq!(40 / BUCKET_BYTES, 2);
    }

    /// Reset restores the pristine geometry: capacity, probe mask and
    /// the memory high-water mark — a reset store must be
    /// indistinguishable from a fresh one (probe addresses depend on
    /// the mask, so retained growth would change the touch trace of a
    /// replayed run).
    #[test]
    fn reset_restores_pristine_geometry() {
        let mut s = HashStore::new(BASE);
        for i in 0..4096u64 {
            let _ = s.set(i * 8, slot(i));
        }
        assert!(s.memory_bytes() > 64 * BUCKET_BYTES); // grew
        s.reset();
        assert_eq!(s.entry_count(), 0);
        assert_eq!(s.memory_bytes(), 64 * BUCKET_BYTES);
        // Probe addresses match a fresh store's.
        let mut fresh = HashStore::new(BASE);
        let (_, t_reset) = s.get(0x1000);
        let (_, t_fresh) = fresh.get(0x1000);
        assert_eq!(
            t_reset.iter().collect::<Vec<_>>(),
            t_fresh.iter().collect::<Vec<_>>()
        );
    }

    /// Snapshot restore must recover pristine geometry exactly like
    /// reset does — including the capacity/mask a run's growth changed,
    /// since probe addresses (the simulated touch trace) depend on it.
    #[test]
    fn snapshot_restore_recovers_geometry_and_contents() {
        let mut s = HashStore::new(BASE);
        let _ = s.set(0x1000, slot(7)); // "loader" slot
        s.capture_snapshot();
        assert_eq!(s.restore_snapshot(), 0, "clean restore copies nothing");
        assert_eq!(s.get(0x1000).0, Some(slot(7)));

        // Grow the table past the baseline geometry, then restore.
        for i in 0..4096u64 {
            let _ = s.set(0x10_0000 + i * 8, slot(i));
        }
        assert!(s.memory_bytes() > 64 * BUCKET_BYTES);
        assert_eq!(s.restore_snapshot(), 64 * BUCKET_BYTES);
        assert_eq!(s.entry_count(), 1);
        assert_eq!(s.get(0x1000).0, Some(slot(7)));
        assert_eq!(s.memory_bytes(), 64 * BUCKET_BYTES);

        // Probe addresses match a fresh store carrying the same slot.
        let mut fresh = HashStore::new(BASE);
        let _ = fresh.set(0x1000, slot(7));
        let (_, t_restored) = s.get(0x2000);
        let (_, t_fresh) = fresh.get(0x2000);
        assert_eq!(
            t_restored.iter().collect::<Vec<_>>(),
            t_fresh.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn unaligned_addresses_share_slot() {
        let mut s = HashStore::new(BASE);
        let _ = s.set(0x1000, slot(7));
        // Key normalization: 0x1003 falls in the 0x1000 slot.
        assert_eq!(s.get(0x1003).0, Some(slot(7)));
    }
}
