//! # levee-rt — the Levee runtime support library
//!
//! The runtime half of the CPI/CPS enforcement mechanism (§4 of the
//! paper): the **safe pointer store**, which maps the regular-region
//! address of each sensitive pointer to a compact [`store::Slot`] — the
//! pointer word plus a 4-byte [`meta::MetaId`] handle to its interned
//! based-on metadata `(value, lower, upper, id)` — in the three
//! organizations the paper implemented and benchmarked:
//!
//! * [`array_store::ArrayStore`] — a linear array over the sparse
//!   address space (4 KB pages or 2 MB superpages; the latter was the
//!   paper's fastest configuration),
//! * [`twolevel::TwoLevelStore`] — an MPX-style directory + leaf tables,
//! * [`hash_store::HashStore`] — an open-addressing hash table (lowest
//!   memory overhead, worst locality).
//!
//! Every operation reports the simulated safe-region addresses it
//! touched ([`store::Touched`]) so the VM's cache model can account for
//! the locality differences between organizations, plus a page-fault
//! flag feeding the paper's superpage observation.
//!
//! The provenance interner behind those handles is [`meta::MetaTable`]:
//! based-on metadata is stored once per distinct record and referenced
//! by a generation-checked 4-byte [`meta::MetaId`] — from in-register
//! values and from store slots alike, so a store→load round trip (and
//! `copy_range`) moves 16-byte `(word, handle)` pairs with no metadata
//! materialization, and every organization simulates half the
//! safe-region bytes the 32-byte inline-entry layout needed.
//!
//! ## Example
//!
//! ```
//! use levee_rt::{Entry, MetaTable, PtrStore, Slot, StoreKind};
//!
//! let mut meta = MetaTable::new();
//! let mut store = StoreKind::ArraySuperpage.instantiate(0x7000_0000_0000);
//! // A function pointer stored at regular address 0x1000: the slot
//! // carries the word plus the interned provenance handle.
//! let prov = meta.intern(Entry::code(0x40_0000));
//! let t = store.set(0x1000, Slot::new(0x40_0000, prov));
//! assert_eq!(t.len(), 1); // one simulated safe-region touch
//! let (slot, _) = store.get(0x1000);
//! assert!(meta.resolve(slot.unwrap().meta).authorizes_code(0x40_0000));
//! // A stray memset over that location wipes the metadata.
//! let _ = store.clear_range(0x0ff8, 64);
//! assert_eq!(store.get(0x1000).0, None);
//! ```

pub mod array_store;
pub mod entry;
pub mod fasthash;
pub mod hash_store;
pub mod meta;
pub mod store;
pub mod twolevel;

pub use array_store::ArrayStore;
pub use entry::Entry;
pub use fasthash::{FastHash, FastHasher};
pub use hash_store::HashStore;
pub use meta::{MetaId, MetaMark, MetaTable, META_CAPACITY};
pub use store::{PtrStore, Slot, StoreKind, Touched, SLOT_SIZE};
pub use twolevel::TwoLevelStore;
