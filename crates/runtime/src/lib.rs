//! # levee-rt — the Levee runtime support library
//!
//! The runtime half of the CPI/CPS enforcement mechanism (§4 of the
//! paper): the **safe pointer store**, which maps the regular-region
//! address of each sensitive pointer to its value and based-on metadata
//! `(value, lower, upper, id)`, in the three organizations the paper
//! implemented and benchmarked:
//!
//! * [`array_store::ArrayStore`] — a linear array over the sparse
//!   address space (4 KB pages or 2 MB superpages; the latter was the
//!   paper's fastest configuration),
//! * [`twolevel::TwoLevelStore`] — an MPX-style directory + leaf tables,
//! * [`hash_store::HashStore`] — an open-addressing hash table (lowest
//!   memory overhead, worst locality).
//!
//! Every operation reports the simulated safe-region addresses it
//! touched ([`store::Touched`]) so the VM's cache model can account for
//! the locality differences between organizations, plus a page-fault
//! flag feeding the paper's superpage observation.
//!
//! The crate also provides [`meta::MetaTable`], the provenance interner
//! behind the VM's compact 16-byte tagged values: based-on metadata is
//! stored once per distinct record and referenced by a generation-checked
//! 4-byte [`meta::MetaId`] instead of riding inline in every value.
//!
//! ## Example
//!
//! ```
//! use levee_rt::{Entry, PtrStore, StoreKind};
//!
//! let mut store = StoreKind::ArraySuperpage.instantiate(0x7000_0000_0000);
//! // A function pointer stored at regular address 0x1000.
//! store.set(0x1000, Entry::code(0x40_0000));
//! assert!(store.get(0x1000).0.unwrap().is_code());
//! // A stray memset over that location wipes the metadata.
//! store.clear_range(0x0ff8, 64);
//! assert_eq!(store.get(0x1000).0, None);
//! ```

pub mod array_store;
pub mod entry;
pub mod fasthash;
pub mod hash_store;
pub mod meta;
pub mod store;
pub mod twolevel;

pub use array_store::ArrayStore;
pub use entry::{Entry, ENTRY_SIZE};
pub use fasthash::{FastHash, FastHasher};
pub use hash_store::HashStore;
pub use meta::{MetaId, MetaTable, META_CAPACITY};
pub use store::{PtrStore, StoreKind, Touched};
pub use twolevel::TwoLevelStore;
