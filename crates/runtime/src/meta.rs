//! Interned based-on metadata: the provenance arena behind compact
//! tagged values.
//!
//! The paper's safe-region design (§3.2) keeps pointer metadata out of
//! the regular data path; the interpreter mirrors that by keeping it out
//! of the *register* path. Instead of hauling a full 32-byte [`Entry`]
//! inside every runtime value, the VM stores each distinct based-on
//! record once in a [`MetaTable`] and carries a 4-byte [`MetaId`] handle
//! in the value — the same provenance-compression move LIPPEN and
//! PACTight make in hardware by folding metadata into the pointer word.
//!
//! Identical metadata is deduplicated: interning the same [`Entry`]
//! twice yields the same [`MetaId`], so derived pointers that stay based
//! on one object share one record. Handles are generation-checked — a
//! [`MetaTable::reset`] invalidates every outstanding [`MetaId`], and
//! resolving a stale handle is reported rather than silently yielding
//! unrelated metadata.
//!
//! Handles do not only ride in registers: every safe-pointer-store
//! organization ([`crate::store::PtrStore`]) holds them inside its
//! compact [`crate::store::Slot`]s, so the table and the store form one
//! lifecycle unit. An owner resetting both must clear the store *before*
//! bumping the table generation (see [`crate::store::PtrStore::reset`]),
//! or its slots would dangle.

use std::collections::HashMap;

use crate::entry::Entry;
use crate::fasthash::FastHash;

/// Bits of a [`MetaId`] holding the arena index (biased by one so the
/// all-zero word stays free for [`MetaId::NONE`]).
const INDEX_BITS: u32 = 28;
const INDEX_MASK: u32 = (1 << INDEX_BITS) - 1;

/// Maximum number of live entries one table generation can hold
/// (~268M).
///
/// The VM interns at most one record per executed instruction (plus a
/// handful at load time), and its default fuel limit is 200M
/// instructions, so a default-configured run cannot exhaust a
/// generation — even a pathological malloc/free loop (every allocation
/// has a fresh temporal id, hence fresh provenance) runs out of fuel
/// first. Runs configured with much larger fuel budgets share the fate
/// of any interning design: the arena grows with distinct provenance
/// and the capacity assert in [`MetaTable::intern`] is the bound.
pub const META_CAPACITY: usize = (INDEX_MASK - 1) as usize;

/// A compact, generation-checked handle to an interned [`Entry`].
///
/// The niche `MetaId::NONE` (the all-zero word) marks values with no
/// provenance — plain integers — so a runtime value is just
/// `(u64 word, MetaId)`: 16 bytes instead of the 48 the inline
/// `Option<Entry>` representation needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetaId(u32);

impl MetaId {
    /// The "no metadata" niche: what integer values carry.
    pub const NONE: MetaId = MetaId(0);

    /// True if this handle names no metadata.
    #[inline(always)]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// True if this handle names an interned entry.
    #[inline(always)]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The arena index this handle points at.
    #[inline(always)]
    fn index(self) -> usize {
        ((self.0 & INDEX_MASK) - 1) as usize
    }

    /// The table generation this handle was minted in.
    #[inline(always)]
    fn generation(self) -> u32 {
        self.0 >> INDEX_BITS
    }
}

impl Default for MetaId {
    fn default() -> Self {
        MetaId::NONE
    }
}

/// The provenance interner: an arena of [`Entry`] records with a dedup
/// index, handing out generation-checked [`MetaId`]s.
///
/// ## Example
///
/// ```
/// use levee_rt::{Entry, MetaTable};
///
/// let mut t = MetaTable::new();
/// let a = t.intern(Entry::data(0x1000, 0x1000, 0x1040, 7));
/// let b = t.intern(Entry::data(0x1000, 0x1000, 0x1040, 7));
/// assert_eq!(a, b); // identical metadata is stored once
/// assert_eq!(t.get(a), Some(Entry::data(0x1000, 0x1000, 0x1040, 7)));
/// t.reset();
/// assert_eq!(t.get(a), None); // stale handles are rejected
/// ```
/// Slots in the direct-mapped front-cache ahead of the dedup map.
const RECENT_SLOTS: usize = 16;

#[derive(Clone)]
pub struct MetaTable {
    entries: Vec<Entry>,
    dedup: HashMap<Entry, MetaId, FastHash>,
    generation: u32,
    /// Direct-mapped front-cache over the dedup map: hot loops cycle
    /// through a handful of provenances (a vtable or two, the current
    /// frame's allocas, a few heap objects), and re-interning those
    /// should not pay a full map probe. Empty slots carry
    /// [`MetaId::NONE`].
    recent: [(Entry, MetaId); RECENT_SLOTS],
}

impl MetaTable {
    /// An empty table at generation zero.
    pub fn new() -> Self {
        MetaTable {
            entries: Vec::new(),
            dedup: HashMap::default(),
            generation: 0,
            recent: [(Entry::invalid(0), MetaId::NONE); RECENT_SLOTS],
        }
    }

    /// The front-cache slot for one record.
    #[inline(always)]
    fn recent_slot(entry: &Entry) -> usize {
        ((entry.lower >> 3) ^ entry.upper ^ entry.id) as usize & (RECENT_SLOTS - 1)
    }

    /// Interns `entry`, returning the handle of its unique record.
    ///
    /// Interning the same entry again returns the same handle; the
    /// caller is expected to *normalize* fields that should not affect
    /// identity (the VM normalizes `value` to `lower` so every pointer
    /// based on one object shares one record regardless of its current
    /// word).
    ///
    /// # Panics
    ///
    /// Panics when a generation exceeds [`META_CAPACITY`] distinct
    /// entries.
    pub fn intern(&mut self, entry: Entry) -> MetaId {
        let slot = Self::recent_slot(&entry);
        let (ce, cid) = self.recent[slot];
        if cid.is_some() && ce == entry {
            return cid;
        }
        let id = match self.dedup.get(&entry) {
            Some(id) => *id,
            None => {
                let index = self.entries.len();
                assert!(index < META_CAPACITY, "MetaTable generation overflow");
                self.entries.push(entry);
                let id = MetaId((self.generation << INDEX_BITS) | (index as u32 + 1));
                self.dedup.insert(entry, id);
                id
            }
        };
        self.recent[slot] = (entry, id);
        id
    }

    /// Looks up a handle: `None` for [`MetaId::NONE`], for handles
    /// minted before the last [`MetaTable::reset`], and for handles
    /// dropped by a [`MetaTable::truncate_to`] rewind (same generation,
    /// index past the truncated extent).
    #[inline(always)]
    pub fn get(&self, id: MetaId) -> Option<Entry> {
        if id.is_none() || id.generation() != self.generation {
            return None;
        }
        self.entries.get(id.index()).copied()
    }

    /// Resolves a handle that is known to be live.
    ///
    /// # Panics
    ///
    /// Panics on [`MetaId::NONE`] and on stale handles — resolving
    /// metadata across a reset is a lifecycle bug, never a data-driven
    /// condition.
    #[inline]
    pub fn resolve(&self, id: MetaId) -> Entry {
        assert!(
            id.is_some() && id.generation() == self.generation && id.index() < self.entries.len(),
            "stale or empty MetaId {:?} (table generation {}, {} entries)",
            id,
            self.generation,
            self.entries.len()
        );
        self.entries[id.index()]
    }

    /// Number of distinct entries interned in the current generation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current generation (bumped by every reset).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Host memory used by the arena (excluding the dedup index) — the
    /// denominator when comparing against inline metadata storage.
    pub fn arena_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Entry>()
    }

    /// Drops every entry and invalidates all outstanding handles:
    /// subsequent [`MetaTable::get`] on an old handle returns `None`.
    ///
    /// Generations wrap after 16 resets; a handle held across exactly
    /// 16 resets would alias. The VM never resets a live machine's
    /// table, so in practice resets only occur between runs with no
    /// handles outstanding.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.dedup.clear();
        self.recent = [(Entry::invalid(0), MetaId::NONE); RECENT_SLOTS];
        self.generation = (self.generation + 1) & 0xf;
    }

    /// Records the table's current extent so a later
    /// [`MetaTable::truncate_to`] can rewind to it.
    ///
    /// This is the snapshot-restore half of the lifecycle: unlike
    /// [`MetaTable::reset`], rewinding does *not* bump the generation,
    /// so every handle minted **before** the mark (the loader's
    /// `func_meta` / `global_meta` handles and the baseline slots held
    /// by the safe-pointer store) stays valid across the rewind.
    pub fn mark(&self) -> MetaMark {
        MetaMark {
            len: self.entries.len(),
            recent: self.recent,
        }
    }

    /// Rewinds the arena to a previously taken [`MetaMark`]: every
    /// entry interned after the mark is dropped (and removed from the
    /// dedup index), the front-cache is restored to its state at the
    /// mark, and the generation is left untouched. Returns the number
    /// of entries dropped.
    ///
    /// Post-mark entries are necessarily distinct from pre-mark ones
    /// (interning dedups), so removing them from the index can never
    /// evict a surviving record.
    pub fn truncate_to(&mut self, mark: &MetaMark) -> u64 {
        debug_assert!(mark.len <= self.entries.len(), "mark is from this table");
        let dropped = (self.entries.len() - mark.len) as u64;
        for entry in self.entries.drain(mark.len..) {
            self.dedup.remove(&entry);
        }
        self.recent = mark.recent;
        dropped
    }
}

/// An opaque rewind point for [`MetaTable::truncate_to`]: the arena
/// length plus a copy of the front-cache at the moment of the mark.
/// Taken by the VM right after `load()` as part of its post-load
/// snapshot (see `levee_vm`'s `Machine::reset`).
#[derive(Debug, Clone)]
pub struct MetaMark {
    len: usize,
    recent: [(Entry, MetaId); RECENT_SLOTS],
}

impl Default for MetaTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_the_zero_word() {
        assert!(MetaId::NONE.is_none());
        assert!(!MetaId::NONE.is_some());
        assert_eq!(MetaId::default(), MetaId::NONE);
        assert_eq!(std::mem::size_of::<MetaId>(), 4);
    }

    #[test]
    fn intern_resolve_roundtrip() {
        let mut t = MetaTable::new();
        let e = Entry::data(0x10, 0x10, 0x50, 3);
        let id = t.intern(e);
        assert!(id.is_some());
        assert_eq!(t.get(id), Some(e));
        assert_eq!(t.resolve(id), e);
    }

    #[test]
    fn dedup_shares_records() {
        let mut t = MetaTable::new();
        let a = t.intern(Entry::code(0x40));
        let b = t.intern(Entry::data(0x10, 0x10, 0x50, 3));
        let c = t.intern(Entry::code(0x40));
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn front_cache_does_not_leak_across_reset() {
        let mut t = MetaTable::new();
        let e = Entry::code(0x40);
        let old = t.intern(e);
        t.reset();
        let new = t.intern(e);
        assert_ne!(old, new, "reset invalidates even front-cached entries");
        assert_eq!(t.get(new), Some(e));
        assert_eq!(t.get(old), None);
    }

    #[test]
    fn front_cache_collisions_stay_correct() {
        // Entries that share a front-cache slot must still dedup to
        // their own handles.
        let mut t = MetaTable::new();
        let a = Entry::data(0x1000, 0x1000, 0x1000, 0);
        let b = Entry::data(0x1000 + (16 << 3), 0x1000 + (16 << 3), 0x1000, 0);
        let ia = t.intern(a);
        let ib = t.intern(b);
        for _ in 0..4 {
            assert_eq!(t.intern(a), ia);
            assert_eq!(t.intern(b), ib);
        }
        assert_ne!(ia, ib);
    }

    #[test]
    fn get_rejects_stale_handles() {
        let mut t = MetaTable::new();
        let id = t.intern(Entry::code(0x40));
        t.reset();
        assert_eq!(t.get(id), None);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.generation(), 1);
    }

    #[test]
    #[should_panic(expected = "stale or empty MetaId")]
    fn resolve_panics_on_stale() {
        let mut t = MetaTable::new();
        let id = t.intern(Entry::code(0x40));
        t.reset();
        t.resolve(id);
    }

    #[test]
    #[should_panic(expected = "stale or empty MetaId")]
    fn resolve_panics_on_none() {
        let t = MetaTable::new();
        t.resolve(MetaId::NONE);
    }

    #[test]
    fn truncate_to_keeps_pre_mark_handles_valid() {
        let mut t = MetaTable::new();
        let loader = t.intern(Entry::code(0x40));
        let mark = t.mark();
        let run = t.intern(Entry::data(0x10, 0x10, 0x50, 3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.truncate_to(&mark), 1);
        // Pre-mark handles survive (generation untouched)…
        assert_eq!(t.get(loader), Some(Entry::code(0x40)));
        assert_eq!(t.generation(), 0);
        // …post-mark ones are gone, from the arena and the index.
        assert_eq!(t.get(run), None);
        assert_eq!(t.len(), 1);
        // Re-interning the dropped record mints a fresh (post-mark)
        // handle rather than resurrecting the dropped one.
        let again = t.intern(Entry::data(0x10, 0x10, 0x50, 3));
        assert_eq!(again, run, "same arena position, same generation");
        assert_eq!(t.get(again), Some(Entry::data(0x10, 0x10, 0x50, 3)));
    }

    #[test]
    fn truncate_to_restores_the_front_cache() {
        let mut t = MetaTable::new();
        let e_pre = Entry::code(0x40);
        let pre = t.intern(e_pre);
        let mark = t.mark();
        // Evict e_pre's front-cache slot with a colliding post-mark
        // entry, then rewind: the cache must serve the pre-mark
        // mapping again, not the dropped one.
        let e_post = Entry::code(0x40 ^ (16 << 3));
        t.intern(e_post);
        t.truncate_to(&mark);
        assert_eq!(t.intern(e_pre), pre);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn repeated_rewinds_are_idempotent() {
        let mut t = MetaTable::new();
        t.intern(Entry::code(1));
        let mark = t.mark();
        for round in 0..4 {
            t.intern(Entry::code(100 + round));
            t.intern(Entry::code(200 + round));
            assert_eq!(t.truncate_to(&mark), 2);
            assert_eq!(t.len(), 1);
        }
        assert_eq!(t.truncate_to(&mark), 0, "clean rewind drops nothing");
    }

    #[test]
    fn arena_bytes_track_entries() {
        let mut t = MetaTable::new();
        assert_eq!(t.arena_bytes(), 0);
        t.intern(Entry::code(1));
        t.intern(Entry::code(2));
        assert_eq!(t.arena_bytes(), 2 * std::mem::size_of::<Entry>());
    }
}
