//! The safe-pointer-store interface and its access-trace machinery.
//!
//! §4 of the paper: "We implemented and benchmarked several versions of
//! the safe pointer store map in our runtime support library: a simple
//! array, a two-level lookup table, and a hashtable." All three live in
//! this crate behind the [`PtrStore`] trait. Every operation reports the
//! *simulated safe-region addresses it touched* so the VM's cache model
//! can reproduce the locality differences the paper observed (the sparse
//! array with superpages being fastest).
//!
//! Slots are **compact**: instead of a full 32-byte [`crate::entry::Entry`]
//! record per pointer, a slot is a [`Slot`] — the pointer word plus a
//! 4-byte [`MetaId`] handle into the [`crate::meta::MetaTable`] that owns
//! the based-on record. This halves simulated safe-region memory
//! ([`SLOT_SIZE`] = 16 vs the 32 bytes of the inline-entry layout) and
//! makes `copy_range` a plain handle move. The table and the store share
//! a lifecycle: handles stored here are generation-checked, so resetting
//! the table without clearing the store first would leave dangling slots
//! — owners (the VM's `Machine`) must always reset the store *before*
//! the table.

use crate::meta::MetaId;

/// Size of one safe-pointer-store slot in (simulated) bytes: the 8-byte
/// pointer word plus the 4-byte provenance handle, kept at a 16-byte
/// power-of-two so the array organizations can index with a shift.
/// Replaces the 32-byte inline-entry layout (`value + lower + upper +
/// id`) the seed stored per slot.
pub const SLOT_SIZE: u64 = 16;

/// One compact safe-pointer-store slot: the authoritative pointer word
/// plus the interned based-on handle.
///
/// The handle references the owning machine's
/// [`crate::meta::MetaTable`]; a slot whose `meta` is
/// [`MetaId::NONE`] is the paper's *invalid* metadata marker — the word
/// is authoritative (the safe region holds the value) but no bounds
/// record backs it, so it never authorizes any access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    /// The pointer value itself (the safe region holds the
    /// authoritative copy; the regular-region location stays unused,
    /// per Fig. 2).
    pub word: u64,
    /// Handle to the interned based-on record, or [`MetaId::NONE`] for
    /// a sensitive-typed location holding a non-pointer value.
    pub meta: MetaId,
}

impl Slot {
    /// A slot carrying a word with live provenance.
    #[inline(always)]
    pub fn new(word: u64, meta: MetaId) -> Self {
        Slot { word, meta }
    }

    /// The *invalid*-metadata slot: word only, no based-on record.
    #[inline(always)]
    pub fn invalid(word: u64) -> Self {
        Slot {
            word,
            meta: MetaId::NONE,
        }
    }
}

/// Addresses touched by one store operation.
///
/// Point operations record at most 4 concrete addresses (e.g. a
/// two-level lookup touches a directory slot and a leaf entry); paths
/// that legitimately touch an unbounded number of addresses — range
/// operations, long hash probe chains — record the first 4 and count
/// the remainder in [`Touched::spill`], which the VM charges as
/// additional sequential accesses. Nothing is silently dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Touched {
    addrs: [u64; 4],
    n: u8,
    /// Touches beyond the recorded sample. The VM's cost model charges
    /// these as additional slot-sized sequential accesses following the
    /// last recorded address.
    pub spill: u32,
    /// Whether the operation faulted in a fresh page (first touch); the
    /// cost model charges a page-fault penalty, which is how the paper's
    /// "many page faults at startup / TLB pressure" observation for the
    /// 4 KB array shows up.
    pub page_fault: bool,
}

impl Touched {
    /// Records one touched address of a *point* operation.
    ///
    /// The capacity bounds the addresses one point operation may touch;
    /// an organization that exceeds it would under-report traffic to the
    /// cache model, so overflow here is a bug in the organization: it
    /// debug-asserts rather than dropping the touch. (In release builds
    /// the touch is still accounted, via [`Touched::spill`].) Paths that
    /// touch unboundedly many addresses by design must use
    /// [`Touched::push_sampled`] instead.
    pub fn push(&mut self, addr: u64) {
        debug_assert!(
            (self.n as usize) < self.addrs.len(),
            "Touched overflow: point store op touched more than {} addresses ({addr:#x}); \
             use push_sampled for range/probe paths",
            self.addrs.len(),
        );
        self.push_sampled(addr);
    }

    /// Records a touch from an unbounded path (range operation, probe
    /// chain): the first addresses are kept exactly, the rest are
    /// counted in [`Touched::spill`] so the cost model still charges
    /// them.
    pub fn push_sampled(&mut self, addr: u64) {
        if (self.n as usize) < self.addrs.len() {
            self.addrs[self.n as usize] = addr;
            self.n += 1;
        } else {
            self.spill += 1;
        }
    }

    /// Folds the touches of a sub-operation into this record (range
    /// operations are built from point operations).
    pub fn absorb(&mut self, sub: &Touched) {
        for a in sub.iter() {
            self.push_sampled(a);
        }
        self.spill += sub.spill;
        self.page_fault |= sub.page_fault;
    }

    /// Total number of touches represented, including spilled ones.
    pub fn total(&self) -> u64 {
        self.n as u64 + self.spill as u64
    }

    /// The touched addresses.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.addrs[..self.n as usize].iter().copied()
    }

    /// Number of touched addresses.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// The first touched address, if any.
    pub fn first(&self) -> Option<u64> {
        (self.n > 0).then(|| self.addrs[0])
    }

    /// True when no address was touched.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Which safe-pointer-store organization to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Simple array over the sparse address space, 4 KB pages.
    Array4K,
    /// Simple array with 2 MB superpages — the paper's fastest choice.
    ArraySuperpage,
    /// Two-level lookup table (MPX-style directory + leaf tables).
    TwoLevel,
    /// Open-addressing hash table.
    Hash,
}

impl StoreKind {
    /// All organizations, for comparison benches (experiment E6).
    pub fn all() -> &'static [StoreKind] {
        &[
            StoreKind::Array4K,
            StoreKind::ArraySuperpage,
            StoreKind::TwoLevel,
            StoreKind::Hash,
        ]
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Array4K => "array-4K",
            StoreKind::ArraySuperpage => "array-2M",
            StoreKind::TwoLevel => "two-level",
            StoreKind::Hash => "hashtable",
        }
    }

    /// Instantiates the organization with its safe region based at
    /// `base` (a simulated address chosen by the isolation layer).
    pub fn instantiate(self, base: u64) -> Box<dyn PtrStore> {
        match self {
            StoreKind::Array4K => Box::new(crate::array_store::ArrayStore::new(base, 4 << 10)),
            StoreKind::ArraySuperpage => {
                Box::new(crate::array_store::ArrayStore::new(base, 2 << 20))
            }
            StoreKind::TwoLevel => Box::new(crate::twolevel::TwoLevelStore::new(base)),
            StoreKind::Hash => Box::new(crate::hash_store::HashStore::new(base)),
        }
    }
}

/// The safe pointer store: a map from the regular-region address of a
/// sensitive pointer to its compact [`Slot`].
///
/// Keys are pointer-aligned (8-byte) regular addresses. The store itself
/// lives at simulated safe-region addresses — the `Touched` values —
/// which by construction are never representable in regular memory
/// (§3.2.3's leak-proof indexing).
///
/// Every mutating/probing method returns [`Touched`], and dropping one
/// silently is unaccounted cache traffic in the VM's cost model — hence
/// the `#[must_use]` on every method that reports touches. Callers that
/// genuinely do not charge (the loader populating initializer slots
/// before execution starts) must opt out with an explicit `let _ =`.
///
/// Stores are plain owned data with no interior mutability or shared
/// handles: the `Send` supertrait lets a whole `Machine` migrate to a
/// worker thread, and [`PtrStore::boxed_clone`] forks the store for a
/// new machine. Cloned stores share baseline pages copy-on-write
/// (`Arc`-backed), but each clone's dirty tracking is private — the
/// clean-page invariant (`Arc::strong_count > 1` ⟺ shared with *a*
/// baseline) holds per machine regardless of how many machines share
/// the pages.
pub trait PtrStore: Send {
    /// Forks this store for a new machine: identical contents and
    /// geometry, baseline pages shared copy-on-write with the original.
    fn boxed_clone(&self) -> Box<dyn PtrStore>;

    /// Inserts or overwrites the slot for `addr`.
    #[must_use = "dropping a Touched loses safe-store cache traffic; charge it or bind `let _ =`"]
    fn set(&mut self, addr: u64, slot: Slot) -> Touched;

    /// Looks up the slot for `addr` (`None` is the paper's `none`
    /// marker: no sensitive value currently stored there).
    #[must_use = "dropping a Touched loses safe-store cache traffic; charge it or bind `let _ =`"]
    fn get(&mut self, addr: u64) -> (Option<Slot>, Touched);

    /// Removes the slot for `addr`, if any.
    #[must_use = "dropping a Touched loses safe-store cache traffic; charge it or bind `let _ =`"]
    fn clear(&mut self, addr: u64) -> Touched;

    /// Removes all slots with `addr ∈ [start, start+len)` — used when
    /// plain memory writes (memset, frees, unsafe-stack reuse) overwrite
    /// regions that used to hold sensitive pointers.
    #[must_use = "dropping a Touched loses safe-store cache traffic; charge it or bind `let _ =`"]
    fn clear_range(&mut self, start: u64, len: u64) -> Touched;

    /// Copies slots for each pointer-aligned slot address from `src` to
    /// `dst` (the type-aware `cpi_memcpy` of §3.2.2) — with compact
    /// slots this is a plain `(word, handle)` move, no metadata
    /// materialization. Destination slots whose source has no slot are
    /// cleared. Returns the number of slots copied.
    #[must_use = "dropping a Touched loses safe-store cache traffic; charge it or bind `let _ =`"]
    fn copy_range(&mut self, dst: u64, src: u64, len: u64) -> (u64, Touched);

    /// Number of live slots.
    fn entry_count(&self) -> usize;

    /// Simulated bytes of safe-region memory materialized by this store
    /// — the numerator of the paper's memory-overhead numbers (§5.2).
    fn memory_bytes(&self) -> u64;

    /// The store's base address in the simulated safe region.
    fn base(&self) -> u64;

    /// Removes every slot (used when resetting between runs).
    ///
    /// Owners that also reset the [`crate::meta::MetaTable`] must clear
    /// the store *first*: slots hold generation-checked [`MetaId`]s, and
    /// bumping the table generation while slots are still live would
    /// leave them dangling. Also discards any baseline captured by
    /// [`PtrStore::capture_snapshot`].
    fn reset(&mut self);

    /// Captures the store's current contents as its immutable baseline:
    /// the per-structure half of the VM's post-`load()` memory-image
    /// snapshot (see `levee_vm`'s `Machine::reset`). At capture time a
    /// store holds only the loader's protected initializer slots, so
    /// the baseline is small; the handles inside it are minted *before*
    /// the owning `MetaTable`'s mark and therefore survive the
    /// snapshot rewind (`MetaTable::truncate_to`).
    fn capture_snapshot(&mut self);

    /// Rewinds the store to the captured baseline, returning the number
    /// of simulated safe-region bytes that had to be copied back (0
    /// when the last run never dirtied the structure). Restoring is
    /// bit-identical to a freshly loaded store in every observable:
    /// slot contents, entry count, memory footprint *and* geometry-
    /// derived simulated addresses (leaf sequence numbers, hash
    /// capacity, probe order).
    ///
    /// # Panics
    ///
    /// Panics when no baseline was captured — restoring without a
    /// snapshot is an owner lifecycle bug.
    fn restore_snapshot(&mut self) -> u64;
}

/// Shared helper: iterate the 8-aligned slots that overlap
/// `[start, start+len)`.
pub(crate) fn aligned_slots(start: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = start & !7;
    let end = start.saturating_add(len);
    (0..)
        .map(move |i| first + 8 * i)
        .take_while(move |a| *a < end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_capacity() {
        let mut t = Touched::default();
        for i in 0..4 {
            t.push(i);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(t.first(), Some(0));
        assert!(!t.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "Touched overflow")]
    fn touched_overflow_is_a_bug() {
        let mut t = Touched::default();
        for i in 0..5 {
            t.push(i);
        }
    }

    /// In release builds (no debug assertions) overflow still caps
    /// rather than corrupting state.
    #[test]
    #[cfg(not(debug_assertions))]
    fn touched_overflow_caps_in_release() {
        let mut t = Touched::default();
        for i in 0..6 {
            t.push(i);
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn aligned_slot_iteration() {
        let slots: Vec<u64> = aligned_slots(0x1004, 8).collect();
        // Covers the slot containing 0x1004 and the one containing 0x100b.
        assert_eq!(slots, vec![0x1000, 0x1008]);
        let exact: Vec<u64> = aligned_slots(0x2000, 16).collect();
        assert_eq!(exact, vec![0x2000, 0x2008]);
        let empty: Vec<u64> = aligned_slots(0x2000, 0).collect();
        assert!(empty.is_empty());
    }

    /// The representation guarantee behind the slot compaction: a host
    /// `Slot` fits the simulated [`SLOT_SIZE`], so the simulated
    /// geometry (16 bytes per slot, half the 32-byte inline-entry
    /// layout) matches what the host actually moves.
    #[test]
    fn slot_is_compact() {
        assert!(std::mem::size_of::<Slot>() as u64 <= SLOT_SIZE);
        assert_eq!(SLOT_SIZE, 16);
        let s = Slot::invalid(0xdead);
        assert_eq!(s.word, 0xdead);
        assert!(s.meta.is_none());
    }

    #[test]
    fn store_kind_names_unique() {
        let mut names: Vec<_> = StoreKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StoreKind::all().len());
    }
}
