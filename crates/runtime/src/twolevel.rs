//! The two-level lookup-table safe-pointer-store organization.
//!
//! An MPX-style layout (§4, "Future MPX-based implementation"): a
//! directory indexed by the high bits of the pointer slot selects a leaf
//! table indexed by the low bits. Every operation costs two dependent
//! memory accesses — one directory probe, one leaf probe — which is why
//! the paper found it slower than the superpage-backed array.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::fasthash::FastHash;
use crate::store::{aligned_slots, PtrStore, Slot, Touched, SLOT_SIZE};

/// Number of entries per leaf table.
const LEAF_SLOTS: u64 = 512;
/// Simulated size of one leaf table in bytes. Compact 16-byte slots
/// halve it (8 KB instead of the 16 KB the inline-entry layout needed),
/// so a leaf's hot half fits in half as many cache lines.
const LEAF_BYTES: u64 = LEAF_SLOTS * SLOT_SIZE;
/// Simulated size of the (lazily materialized) directory in bytes per
/// resident directory page.
const DIR_PAGE_BYTES: u64 = 4096;

/// One leaf table, shared copy-on-write with the captured baseline
/// (`Arc::strong_count > 1` ⟺ clean-shared; the first mutation after
/// a capture splits it and records the directory index dirty).
type LeafArc = Arc<Vec<Option<Slot>>>;

/// The post-`load()` baseline image: leaves (with their sequence
/// numbers — restoring them keeps simulated leaf addresses
/// bit-identical to a fresh load), directory pages and the scalars.
#[derive(Clone)]
struct Baseline {
    leaves: HashMap<u64, (u64, LeafArc), FastHash>,
    dir_pages: HashSet<u64>,
    next_leaf_seq: u64,
    live: usize,
}

/// Two-level directory + leaf-table store.
///
/// Cloning (for [`PtrStore::boxed_clone`]) shares leaves `Arc`-CoW with
/// the original; sequence numbers and dirty tracking stay per clone, so
/// simulated leaf addresses remain deterministic per machine.
#[derive(Clone)]
pub struct TwoLevelStore {
    base: u64,
    /// Directory index → (leaf sequence number, leaf storage).
    leaves: HashMap<u64, (u64, LeafArc), FastHash>,
    next_leaf_seq: u64,
    live: usize,
    /// Resident directory pages (for memory accounting).
    dir_pages: HashSet<u64>,
    /// The captured post-load image ([`PtrStore::capture_snapshot`]).
    baseline: Option<Baseline>,
    /// Directory indices whose leaves diverged from the baseline.
    dirty: Vec<u64>,
    /// Whether the directory itself grew since the capture — set when a
    /// probe (reads included) materializes a new directory page.
    dir_dirty: bool,
}

impl TwoLevelStore {
    /// Creates a two-level store based at simulated address `base`.
    pub fn new(base: u64) -> Self {
        TwoLevelStore {
            base,
            leaves: HashMap::default(),
            next_leaf_seq: 0,
            live: 0,
            dir_pages: HashSet::new(),
            baseline: None,
            dirty: Vec::new(),
            dir_dirty: false,
        }
    }

    fn split(addr: u64) -> (u64, u64) {
        let slot = addr >> 3;
        (slot / LEAF_SLOTS, slot % LEAF_SLOTS)
    }

    /// Simulated address of directory slot `dir_idx`.
    fn dir_addr(&self, dir_idx: u64) -> u64 {
        self.base + dir_idx * 8
    }

    /// Simulated address of slot `leaf_idx` in leaf number `seq`.
    fn leaf_addr(&self, seq: u64, leaf_idx: u64) -> u64 {
        // Leaves live above a 1 GB directory window.
        self.base + (1 << 30) + seq * LEAF_BYTES + leaf_idx * SLOT_SIZE
    }

    fn touch_dir(&mut self, dir_idx: u64, t: &mut Touched) {
        t.push(self.dir_addr(dir_idx));
        if self.dir_pages.insert(dir_idx * 8 / DIR_PAGE_BYTES) && self.baseline.is_some() {
            // Even reads grow the directory (a probe materializes its
            // page), so the baseline divergence is flagged here, not
            // just on the leaf write paths.
            self.dir_dirty = true;
        }
    }
}

impl PtrStore for TwoLevelStore {
    fn boxed_clone(&self) -> Box<dyn PtrStore> {
        Box::new(self.clone())
    }

    fn set(&mut self, addr: u64, slot: Slot) -> Touched {
        let mut t = Touched::default();
        let (dir_idx, leaf_idx) = Self::split(addr);
        self.touch_dir(dir_idx, &mut t);
        let seq = match self.leaves.get(&dir_idx) {
            Some((seq, _)) => *seq,
            None => {
                let seq = self.next_leaf_seq;
                self.next_leaf_seq += 1;
                self.leaves
                    .insert(dir_idx, (seq, Arc::new(vec![None; LEAF_SLOTS as usize])));
                if self.baseline.is_some() {
                    self.dirty.push(dir_idx);
                }
                t.page_fault = true;
                seq
            }
        };
        t.push(self.leaf_addr(seq, leaf_idx));
        let tracking = self.baseline.is_some();
        let leaf_arc = &mut self.leaves.get_mut(&dir_idx).expect("leaf just ensured").1;
        if tracking && Arc::strong_count(leaf_arc) > 1 {
            self.dirty.push(dir_idx);
        }
        let leaf = Arc::make_mut(leaf_arc);
        if leaf[leaf_idx as usize].is_none() {
            self.live += 1;
        }
        leaf[leaf_idx as usize] = Some(slot);
        t
    }

    fn get(&mut self, addr: u64) -> (Option<Slot>, Touched) {
        let mut t = Touched::default();
        let (dir_idx, leaf_idx) = Self::split(addr);
        self.touch_dir(dir_idx, &mut t);
        match self.leaves.get(&dir_idx) {
            Some((seq, leaf)) => {
                t.push(self.leaf_addr(*seq, leaf_idx));
                (leaf[leaf_idx as usize], t)
            }
            None => (None, t),
        }
    }

    fn clear(&mut self, addr: u64) -> Touched {
        let mut t = Touched::default();
        let (dir_idx, leaf_idx) = Self::split(addr);
        self.touch_dir(dir_idx, &mut t);
        let tracking = self.baseline.is_some();
        if let Some((seq, leaf_arc)) = self.leaves.get_mut(&dir_idx) {
            let seq = *seq;
            // Split the leaf only when there is something to remove: a
            // clear over an empty span (memset, stack reuse) must not
            // un-share clean baseline leaves.
            if leaf_arc[leaf_idx as usize].is_some() {
                if tracking && Arc::strong_count(leaf_arc) > 1 {
                    self.dirty.push(dir_idx);
                }
                Arc::make_mut(leaf_arc)[leaf_idx as usize] = None;
                self.live -= 1;
            }
            t.push(self.leaf_addr(seq, leaf_idx));
        }
        t
    }

    fn clear_range(&mut self, start: u64, len: u64) -> Touched {
        let mut t = Touched::default();
        for a in aligned_slots(start, len) {
            let sub = self.clear(a);
            t.absorb(&sub);
        }
        t
    }

    fn copy_range(&mut self, dst: u64, src: u64, len: u64) -> (u64, Touched) {
        let mut t = Touched::default();
        let mut copied = 0;
        // Gather first so overlapping ranges behave like memmove. Each
        // element is a plain 16-byte (word, handle) move.
        let slots: Vec<(u64, Option<Slot>)> = aligned_slots(src, len)
            .map(|a| {
                let (s, sub) = self.get(a);
                t.absorb(&sub);
                (a - (src & !7), s)
            })
            .collect();
        for (off, s) in slots {
            let target = (dst & !7) + off;
            match s {
                Some(slot) => {
                    let sub = self.set(target, slot);
                    t.absorb(&sub);
                    copied += 1;
                }
                None => {
                    let sub = self.clear(target);
                    t.absorb(&sub);
                }
            }
        }
        (copied, t)
    }

    fn entry_count(&self) -> usize {
        self.live
    }

    fn memory_bytes(&self) -> u64 {
        self.dir_pages.len() as u64 * DIR_PAGE_BYTES + self.leaves.len() as u64 * LEAF_BYTES
    }

    fn base(&self) -> u64 {
        self.base
    }

    fn reset(&mut self) {
        self.leaves.clear();
        self.dir_pages.clear();
        self.next_leaf_seq = 0;
        self.live = 0;
        self.baseline = None;
        self.dirty.clear();
        self.dir_dirty = false;
    }

    fn capture_snapshot(&mut self) {
        let leaves = self
            .leaves
            .iter()
            .map(|(&d, (seq, leaf))| (d, (*seq, Arc::clone(leaf))))
            .collect();
        self.baseline = Some(Baseline {
            leaves,
            dir_pages: self.dir_pages.clone(),
            next_leaf_seq: self.next_leaf_seq,
            live: self.live,
        });
        self.dirty.clear();
        self.dir_dirty = false;
    }

    fn restore_snapshot(&mut self) -> u64 {
        let baseline = self.baseline.as_ref().expect("no baseline captured");
        let mut bytes = 0u64;
        for dir_idx in std::mem::take(&mut self.dirty) {
            match baseline.leaves.get(&dir_idx) {
                Some((seq, leaf)) => {
                    self.leaves.insert(dir_idx, (*seq, Arc::clone(leaf)));
                    bytes += LEAF_BYTES;
                }
                None => {
                    self.leaves.remove(&dir_idx);
                }
            }
        }
        if self.dir_dirty {
            self.dir_pages = baseline.dir_pages.clone();
            bytes += baseline.dir_pages.len() as u64 * DIR_PAGE_BYTES;
            self.dir_dirty = false;
        }
        // Rewinding the sequence counter keeps simulated leaf addresses
        // of post-restore allocations bit-identical to a fresh load.
        self.next_leaf_seq = baseline.next_leaf_seq;
        self.live = baseline.live;
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::MetaId;

    const BASE: u64 = 0x7100_0000_0000;

    fn slot(word: u64) -> Slot {
        Slot::new(word, MetaId::NONE)
    }

    #[test]
    fn roundtrip() {
        let mut s = TwoLevelStore::new(BASE);
        let e = slot(0x10);
        let _ = s.set(0x8000, e);
        assert_eq!(s.get(0x8000).0, Some(e));
        let _ = s.clear(0x8000);
        assert_eq!(s.get(0x8000).0, None);
        assert_eq!(s.entry_count(), 0);
    }

    #[test]
    fn every_op_touches_two_levels() {
        let mut s = TwoLevelStore::new(BASE);
        let t = s.set(0x4000, slot(1));
        assert_eq!(t.len(), 2); // directory + leaf
        let (_, t) = s.get(0x4000);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_of_absent_leaf_touches_directory_only() {
        let mut s = TwoLevelStore::new(BASE);
        let (e, t) = s.get(0xdead_0000);
        assert_eq!(e, None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn leaf_allocation_faults_once() {
        let mut s = TwoLevelStore::new(BASE);
        assert!(s.set(0x0, slot(1)).page_fault);
        assert!(!s.set(0x8, slot(1)).page_fault);
        // Different leaf (slot 512 → byte address 512*8).
        assert!(s.set(512 * 8, slot(1)).page_fault);
    }

    #[test]
    fn memory_counts_directory_and_leaves() {
        let mut s = TwoLevelStore::new(BASE);
        let _ = s.set(0x0, slot(1));
        assert_eq!(s.memory_bytes(), DIR_PAGE_BYTES + LEAF_BYTES);
        let _ = s.set(512 * 8, slot(1)); // second leaf, same dir page
        assert_eq!(s.memory_bytes(), DIR_PAGE_BYTES + 2 * LEAF_BYTES);
    }

    /// The compact-slot payoff: one leaf is 512 × 16 B = 8 KB, half the
    /// 16 KB the 32-byte inline-entry layout materialized per leaf.
    #[test]
    fn leaves_are_half_the_seed_size() {
        assert_eq!(LEAF_BYTES, 512 * SLOT_SIZE);
        assert_eq!(LEAF_BYTES, 8 << 10);
    }

    #[test]
    fn copy_range_moves_slots() {
        let mut s = TwoLevelStore::new(BASE);
        let _ = s.set(0x1000, slot(0xAA));
        let (copied, _) = s.copy_range(0x2000, 0x1000, 8);
        assert_eq!(copied, 1);
        assert_eq!(s.get(0x2000).0, Some(slot(0xAA)));
    }

    /// Leaf sequence numbers feed simulated leaf addresses, so restore
    /// must rewind the allocator: a leaf allocated after a restore must
    /// land at the same simulated address as after a fresh load.
    #[test]
    fn snapshot_restore_rewinds_leaf_sequencing() {
        let mut s = TwoLevelStore::new(BASE);
        let _ = s.set(0x1000, slot(1)); // loader leaf, seq 0
        s.capture_snapshot();
        assert_eq!(s.restore_snapshot(), 0, "clean restore copies nothing");

        // Run 1: dirty the loader leaf, allocate a run-only leaf
        // (0x4000 is 2048 slots in — a different directory entry).
        let _ = s.set(0x1008, slot(2));
        let run1 = s.set(0x4000, slot(3));
        let run1_leaf = run1.iter().nth(1).unwrap();
        assert!(s.restore_snapshot() > 0);
        assert_eq!(s.get(0x1000).0, Some(slot(1)));
        assert_eq!(s.get(0x1008).0, None);
        assert_eq!(s.get(0x4000).0, None);
        assert_eq!(s.entry_count(), 1);

        // Run 2: the same allocation sequence reproduces the same
        // simulated leaf address.
        let run2 = s.set(0x4000, slot(3));
        let run2_leaf = run2.iter().nth(1).unwrap();
        assert_eq!(run1_leaf, run2_leaf);
    }

    /// Reads materialize directory pages; a restore must revert that
    /// growth so `memory_bytes` matches a fresh load.
    #[test]
    fn snapshot_restore_reverts_read_grown_directory() {
        let mut s = TwoLevelStore::new(BASE);
        let _ = s.set(0x1000, slot(1));
        s.capture_snapshot();
        let baseline_bytes = s.memory_bytes();
        // A miss probe far away touches a fresh directory page.
        let (absent, _) = s.get(0x4000_0000);
        assert_eq!(absent, None);
        assert!(s.memory_bytes() > baseline_bytes);
        assert!(s.restore_snapshot() > 0);
        assert_eq!(s.memory_bytes(), baseline_bytes);
    }
}
