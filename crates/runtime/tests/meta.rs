//! Property tests for the provenance interner: intern→resolve is the
//! identity, dedup never splits equal records, and handles die with
//! their generation.

use levee_rt::{Entry, MetaId, MetaTable};
use proptest::prelude::*;

fn entry_strategy() -> impl Strategy<Value = Entry> {
    // A mix of realistic records: code entries, data objects (lower
    // normalized into `value` the way the VM interns provenance), and
    // the paper's invalid marker. Small windows make collisions common.
    prop_oneof![
        (0x40_0000u64..0x40_0100).prop_map(Entry::code),
        (0x1000u64..0x1040, 1u64..256, 0u64..8).prop_map(|(lower, len, id)| Entry::data(
            lower,
            lower,
            lower + len,
            id
        )),
        Just(Entry::invalid(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// intern → resolve (and get) reproduces the interned record
    /// exactly, for every entry of an arbitrary batch.
    #[test]
    fn intern_resolve_is_identity(entries in proptest::collection::vec(entry_strategy(), 1..64)) {
        let mut t = MetaTable::new();
        let ids: Vec<MetaId> = entries.iter().map(|e| t.intern(*e)).collect();
        for (e, id) in entries.iter().zip(&ids) {
            prop_assert!(id.is_some());
            prop_assert_eq!(t.resolve(*id), *e);
            prop_assert_eq!(t.get(*id), Some(*e));
        }
    }

    /// Equal entries always receive equal handles, distinct entries
    /// distinct handles, and the arena holds exactly the distinct set.
    #[test]
    fn dedup_partitions_by_equality(entries in proptest::collection::vec(entry_strategy(), 1..64)) {
        let mut t = MetaTable::new();
        let ids: Vec<MetaId> = entries.iter().map(|e| t.intern(*e)).collect();
        for (i, (ea, ia)) in entries.iter().zip(&ids).enumerate() {
            for (eb, ib) in entries.iter().zip(&ids).skip(i + 1) {
                prop_assert_eq!(ea == eb, ia == ib, "dedup must mirror equality");
            }
        }
        let mut distinct = entries.clone();
        distinct.sort_by_key(|e| (e.value, e.lower, e.upper, e.id));
        distinct.dedup();
        prop_assert_eq!(t.len(), distinct.len());
    }

    /// After a reset every pre-reset handle is rejected by `get`, while
    /// re-interned entries work under fresh handles.
    #[test]
    fn reset_invalidates_stale_handles(entries in proptest::collection::vec(entry_strategy(), 1..32)) {
        let mut t = MetaTable::new();
        let stale: Vec<MetaId> = entries.iter().map(|e| t.intern(*e)).collect();
        t.reset();
        for id in &stale {
            prop_assert_eq!(t.get(*id), None, "stale handle must not resolve");
        }
        for e in &entries {
            let fresh = t.intern(*e);
            prop_assert!(!stale.contains(&fresh), "fresh handles are generation-tagged");
            prop_assert_eq!(t.get(fresh), Some(*e));
        }
    }
}
