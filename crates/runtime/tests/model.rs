//! Model-based property tests: every store organization must agree with
//! a reference `BTreeMap` model over arbitrary operation sequences.
//!
//! The model is deliberately tiny — an ordered map from 8-aligned slot
//! address to [`Slot`] plus the trait's range semantics spelled out in
//! straight-line code — so any divergence indicts the organization, not
//! the oracle. Slots carry real [`MetaId`] handles minted from a
//! [`MetaTable`] (not just `MetaId::NONE`): the organizations must move
//! handles around *opaquely*, and a handle surviving a
//! `set → copy_range → get` round trip must still resolve to the record
//! it was interned from.

use std::collections::BTreeMap;

use levee_rt::{Entry, MetaId, MetaTable, Slot, StoreKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set { addr: u64, word: u64, prov: u64 },
    Get { addr: u64 },
    Clear { addr: u64 },
    ClearRange { start: u64, len: u64 },
    CopyRange { dst: u64, src: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Keep addresses in a small window so operations collide often.
    let addr = (0u64..64).prop_map(|s| 0x1_0000 + s * 8);
    prop_oneof![
        (addr.clone(), 1u64..100, 0u64..8).prop_map(|(addr, word, prov)| Op::Set {
            addr,
            word,
            prov
        }),
        addr.clone().prop_map(|addr| Op::Get { addr }),
        addr.clone().prop_map(|addr| Op::Clear { addr }),
        (addr.clone(), 0u64..128).prop_map(|(start, len)| Op::ClearRange { start, len }),
        (addr.clone(), addr, 0u64..96).prop_map(|(dst, src, len)| Op::CopyRange { dst, src, len }),
    ]
}

/// Reference semantics, mirroring the PtrStore contract over 8-aligned
/// slots with an ordered-map oracle.
#[derive(Default)]
struct Model {
    map: BTreeMap<u64, Slot>,
}

impl Model {
    fn slots(start: u64, len: u64) -> Vec<u64> {
        let first = start & !7;
        let end = start.saturating_add(len);
        let mut v = Vec::new();
        let mut a = first;
        while a < end {
            v.push(a);
            a += 8;
        }
        v
    }

    fn apply(&mut self, op: &Op, slot_of: impl Fn(u64, u64) -> Slot) {
        match op {
            Op::Set { addr, word, prov } => {
                self.map.insert(*addr, slot_of(*word, *prov));
            }
            Op::Get { .. } => {}
            Op::Clear { addr } => {
                self.map.remove(addr);
            }
            Op::ClearRange { start, len } => {
                for a in Self::slots(*start, *len) {
                    self.map.remove(&a);
                }
            }
            Op::CopyRange { dst, src, len } => {
                let pairs: Vec<(u64, Option<Slot>)> = Self::slots(*src, *len)
                    .into_iter()
                    .map(|a| (a - (src & !7), self.map.get(&a).copied()))
                    .collect();
                for (off, s) in pairs {
                    let target = (dst & !7) + off;
                    match s {
                        Some(s) => {
                            self.map.insert(target, s);
                        }
                        None => {
                            self.map.remove(&target);
                        }
                    }
                }
            }
        }
    }
}

/// A small palette of distinct interned provenance records; ops pick
/// handles from it so the stores shuttle several different live
/// handles (and `MetaId::NONE`) around at once.
fn mint_handles(meta: &mut MetaTable) -> Vec<MetaId> {
    let mut v = vec![MetaId::NONE];
    for i in 0..7u64 {
        let base = 0x4000 + i * 0x100;
        v.push(meta.intern(Entry::data(base, base, base + 0x80, i)));
    }
    v
}

fn check_kind(kind: StoreKind, ops: &[Op]) {
    let mut meta = MetaTable::new();
    let handles = mint_handles(&mut meta);
    let slot_of = |word: u64, prov: u64| Slot::new(word, handles[prov as usize]);
    let mut store = kind.instantiate(0x7000_0000_0000);
    let mut model = Model::default();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Set { addr, word, prov } => {
                let _ = store.set(*addr, slot_of(*word, *prov));
            }
            Op::Get { addr } => {
                let got = store.get(*addr).0;
                let want = model.map.get(addr).copied();
                assert_eq!(got, want, "{kind:?} op {i}: get({addr:#x}) diverged");
            }
            Op::Clear { addr } => {
                let _ = store.clear(*addr);
            }
            Op::ClearRange { start, len } => {
                let _ = store.clear_range(*start, *len);
            }
            Op::CopyRange { dst, src, len } => {
                let _ = store.copy_range(*dst, *src, *len);
            }
        }
        model.apply(op, slot_of);
        assert_eq!(
            store.entry_count(),
            model.map.len(),
            "{kind:?} op {i}: live-count diverged after {op:?}"
        );
    }
    // Full final sweep: words, handle identity, and handle liveness.
    for a in (0x1_0000u64..0x1_0000 + 64 * 8).step_by(8) {
        let got = store.get(a).0;
        assert_eq!(
            got,
            model.map.get(&a).copied(),
            "{kind:?} final sweep at {a:#x}"
        );
        if let Some(slot) = got {
            if slot.meta.is_some() {
                // Handles that came back out must still resolve.
                assert!(
                    meta.get(slot.meta).is_some(),
                    "{kind:?}: slot at {a:#x} holds a dangling handle"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn array4k_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_kind(StoreKind::Array4K, &ops);
    }

    #[test]
    fn array_superpage_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_kind(StoreKind::ArraySuperpage, &ops);
    }

    #[test]
    fn twolevel_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_kind(StoreKind::TwoLevel, &ops);
    }

    #[test]
    fn hash_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_kind(StoreKind::Hash, &ops);
    }
}

#[test]
fn all_kinds_agree_on_a_fixed_trace() {
    let ops = vec![
        Op::Set {
            addr: 0x1_0000,
            word: 5,
            prov: 1,
        },
        Op::Set {
            addr: 0x1_0008,
            word: 6,
            prov: 2,
        },
        Op::CopyRange {
            dst: 0x1_0020,
            src: 0x1_0000,
            len: 16,
        },
        Op::ClearRange {
            start: 0x1_0004,
            len: 8,
        },
        Op::Get { addr: 0x1_0020 },
        Op::Get { addr: 0x1_0000 },
    ];
    for kind in StoreKind::all() {
        check_kind(*kind, &ops);
    }
}
