//! Model-based property tests: every store organization must agree with
//! a reference `HashMap` model over arbitrary operation sequences.

use std::collections::HashMap;

use levee_rt::{Entry, StoreKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set { addr: u64, code: u64 },
    Get { addr: u64 },
    Clear { addr: u64 },
    ClearRange { start: u64, len: u64 },
    CopyRange { dst: u64, src: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Keep addresses in a small window so operations collide often.
    let addr = (0u64..64).prop_map(|s| 0x1_0000 + s * 8);
    prop_oneof![
        (addr.clone(), 1u64..100).prop_map(|(addr, code)| Op::Set { addr, code }),
        addr.clone().prop_map(|addr| Op::Get { addr }),
        addr.clone().prop_map(|addr| Op::Clear { addr }),
        (addr.clone(), 0u64..128).prop_map(|(start, len)| Op::ClearRange { start, len }),
        (addr.clone(), addr, 0u64..96).prop_map(|(dst, src, len)| Op::CopyRange { dst, src, len }),
    ]
}

/// Reference semantics, mirroring the PtrStore contract over 8-aligned
/// slots.
#[derive(Default)]
struct Model {
    map: HashMap<u64, Entry>,
}

impl Model {
    fn slots(start: u64, len: u64) -> Vec<u64> {
        let first = start & !7;
        let end = start.saturating_add(len);
        let mut v = Vec::new();
        let mut a = first;
        while a < end {
            v.push(a);
            a += 8;
        }
        v
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Set { addr, code } => {
                self.map.insert(*addr, Entry::code(*code));
            }
            Op::Get { .. } => {}
            Op::Clear { addr } => {
                self.map.remove(addr);
            }
            Op::ClearRange { start, len } => {
                for a in Self::slots(*start, *len) {
                    self.map.remove(&a);
                }
            }
            Op::CopyRange { dst, src, len } => {
                let pairs: Vec<(u64, Option<Entry>)> = Self::slots(*src, *len)
                    .into_iter()
                    .map(|a| (a - (src & !7), self.map.get(&a).copied()))
                    .collect();
                for (off, e) in pairs {
                    let target = (dst & !7) + off;
                    match e {
                        Some(e) => {
                            self.map.insert(target, e);
                        }
                        None => {
                            self.map.remove(&target);
                        }
                    }
                }
            }
        }
    }
}

fn check_kind(kind: StoreKind, ops: &[Op]) {
    let mut store = kind.instantiate(0x7000_0000_0000);
    let mut model = Model::default();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Set { addr, code } => {
                store.set(*addr, Entry::code(*code));
            }
            Op::Get { addr } => {
                let got = store.get(*addr).0;
                let want = model.map.get(addr).copied();
                assert_eq!(got, want, "{kind:?} op {i}: get({addr:#x}) diverged");
            }
            Op::Clear { addr } => {
                store.clear(*addr);
            }
            Op::ClearRange { start, len } => {
                store.clear_range(*start, *len);
            }
            Op::CopyRange { dst, src, len } => {
                store.copy_range(*dst, *src, *len);
            }
        }
        model.apply(op);
        assert_eq!(
            store.entry_count(),
            model.map.len(),
            "{kind:?} op {i}: live-count diverged after {op:?}"
        );
    }
    // Full final sweep.
    for a in (0x1_0000u64..0x1_0000 + 64 * 8).step_by(8) {
        assert_eq!(
            store.get(a).0,
            model.map.get(&a).copied(),
            "{kind:?} final sweep at {a:#x}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn array4k_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_kind(StoreKind::Array4K, &ops);
    }

    #[test]
    fn array_superpage_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_kind(StoreKind::ArraySuperpage, &ops);
    }

    #[test]
    fn twolevel_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_kind(StoreKind::TwoLevel, &ops);
    }

    #[test]
    fn hash_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_kind(StoreKind::Hash, &ops);
    }
}

#[test]
fn all_kinds_agree_on_a_fixed_trace() {
    let ops = vec![
        Op::Set {
            addr: 0x1_0000,
            code: 5,
        },
        Op::Set {
            addr: 0x1_0008,
            code: 6,
        },
        Op::CopyRange {
            dst: 0x1_0020,
            src: 0x1_0000,
            len: 16,
        },
        Op::ClearRange {
            start: 0x1_0004,
            len: 8,
        },
        Op::Get { addr: 0x1_0020 },
        Op::Get { addr: 0x1_0000 },
    ];
    for kind in StoreKind::all() {
        check_kind(*kind, &ops);
    }
}
