//! A small L1-data-cache model.
//!
//! The paper's overheads are dominated by the *extra memory accesses*
//! instrumentation adds and by locality effects (the safe stack got
//! *faster* than baseline on namd because hot values became denser;
//! the hash-table store got slower because hashing scatters accesses).
//! A set-associative LRU cache turns those effects into cycles.

use crate::probe::{TouchKind, TouchRecord};

/// Set-associative LRU cache over 64-byte lines.
///
/// Tags live in one flat array (`sets × ways`, most-recent last within
/// each set) — the cache is consulted on every simulated memory access,
/// so the lookup must not chase per-set heap pointers.
#[derive(Clone)]
pub struct Cache {
    tags: Vec<u64>, // sets × ways, EMPTY_TAG = invalid
    ways: usize,
    set_mask: u64,
    hits: u64,
    misses: u64,
    /// When enabled, every touch in access order as a tagged
    /// [`TouchRecord`]. Every simulated memory touch — program
    /// loads/stores, frame slots, safe-store traffic charged via
    /// `Touched` — funnels through [`Cache::access`], so the trace is
    /// the machine's complete memory touch log. Differential tests diff
    /// its address projection to prove two executions performed the
    /// *same accesses in the same order*, which is a strictly stronger
    /// claim than equal totals; the read/write + width tags classify
    /// the traffic for attribution.
    trace: Option<Vec<TouchRecord>>,
}

/// Tag value marking an empty way (no valid line has this tag because
/// line numbers are addresses shifted right by 6).
const EMPTY_TAG: u64 = u64::MAX;

/// Default L1D geometry: 32 KB, 8-way, 64-byte lines → 64 sets.
pub const DEFAULT_SETS: usize = 64;
/// Default associativity.
pub const DEFAULT_WAYS: usize = 8;
/// Line size in bytes.
pub const LINE: u64 = 64;

impl Cache {
    /// Creates a cache with the given geometry.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two());
        Cache {
            tags: vec![EMPTY_TAG; sets * ways],
            ways,
            set_mask: sets as u64 - 1,
            hits: 0,
            misses: 0,
            trace: None,
        }
    }

    /// Default geometry.
    pub fn default_l1() -> Self {
        Cache::new(DEFAULT_SETS, DEFAULT_WAYS)
    }

    /// Starts recording the touch log (see [`Cache::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded touch log, if tracing was enabled.
    pub fn trace(&self) -> Option<&[TouchRecord]> {
        self.trace.as_deref()
    }

    /// Touches `addr`; returns true on hit. `kind` and `width` tag the
    /// touch-log record and have no effect on the cache state.
    #[inline]
    pub fn access(&mut self, addr: u64, kind: TouchKind, width: u8) -> bool {
        if let Some(t) = &mut self.trace {
            t.push(TouchRecord { addr, kind, width });
        }
        let line = addr / LINE;
        let set = (line & self.set_mask) as usize;
        let tags = &mut self.tags[set * self.ways..(set + 1) * self.ways];
        // Most-recently-used fast path: repeated accesses to one line
        // (loop-local traffic) skip the LRU reshuffle entirely.
        if tags[self.ways - 1] == line {
            self.hits += 1;
            return true;
        }
        if let Some(pos) = tags.iter().position(|t| *t == line) {
            // Move to most-recent (slot ways-1), shifting the rest down.
            tags.copy_within(pos + 1.., pos);
            tags[self.ways - 1] = line;
            self.hits += 1;
            true
        } else {
            // Evict the LRU way (slot 0; empty ways drain first because
            // they start at the front and shift down like real tags).
            tags.copy_within(1.., 0);
            tags[self.ways - 1] = line;
            self.misses += 1;
            false
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in [0, 1]; 1.0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears contents, counters, and any recorded touch log —
    /// tracing stays *enabled* so a machine recycled by snapshot
    /// restore (`Machine::reset` in `levee-vm`) keeps logging exactly
    /// like a freshly booted one with tracing turned on.
    pub fn reset(&mut self) {
        self.tags.fill(EMPTY_TAG);
        self.hits = 0;
        self.misses = 0;
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::touch_addrs;

    /// Shorthand: an 8-byte read (tags don't affect cache behavior).
    fn acc(c: &mut Cache, addr: u64) -> bool {
        c.access(addr, TouchKind::Read, 8)
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::default_l1();
        assert!(!acc(&mut c, 0x1000)); // cold miss
        assert!(acc(&mut c, 0x1000));
        assert!(acc(&mut c, 0x1038)); // same 64-byte line
        assert!(!acc(&mut c, 0x1040)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut c = Cache::new(1, 2); // one set, two ways
        acc(&mut c, 0);
        acc(&mut c, LINE);
        acc(&mut c, 0); // refresh line 0
        acc(&mut c, 2 * LINE); // evicts line 1 (LRU)
        assert!(acc(&mut c, 0)); // still resident
        assert!(!acc(&mut c, LINE)); // was evicted
    }

    #[test]
    fn streaming_misses() {
        let mut c = Cache::default_l1();
        for i in 0..10_000u64 {
            acc(&mut c, i * LINE * (DEFAULT_SETS as u64)); // all map to set 0
        }
        assert!(c.hit_rate() < 0.01);
    }

    #[test]
    fn dense_loop_hits() {
        let mut c = Cache::default_l1();
        // 1 KB working set fits easily.
        for _ in 0..100 {
            for a in (0..1024u64).step_by(8) {
                acc(&mut c, a);
            }
        }
        assert!(c.hit_rate() > 0.95);
    }

    #[test]
    fn reset_clears() {
        let mut c = Cache::default_l1();
        acc(&mut c, 0);
        c.reset();
        assert_eq!(c.stats(), (0, 0));
        assert!(!acc(&mut c, 0));
    }

    #[test]
    fn reset_empties_trace_but_keeps_it_enabled() {
        let mut c = Cache::default_l1();
        c.enable_trace();
        acc(&mut c, 0x40);
        c.reset();
        assert_eq!(c.trace().unwrap(), &[]);
        acc(&mut c, 0x80); // still recording after reset
        assert_eq!(touch_addrs(c.trace().unwrap()), vec![0x80]);
    }

    #[test]
    fn trace_records_tagged_touches_in_order() {
        let mut c = Cache::default_l1();
        acc(&mut c, 0x10); // before enabling: not recorded
        c.enable_trace();
        c.access(0x1000, TouchKind::Read, 8);
        c.access(0x1000, TouchKind::Write, 4);
        c.access(0x2008, TouchKind::Read, 1);
        let trace = c.trace().unwrap();
        assert_eq!(touch_addrs(trace), vec![0x1000, 0x1000, 0x2008]);
        assert_eq!(
            trace[1],
            TouchRecord {
                addr: 0x1000,
                kind: TouchKind::Write,
                width: 4
            }
        );
        let untraced = Cache::default_l1();
        assert!(untraced.trace().is_none());
    }
}
