//! VM configuration: isolation model, runtime defenses and knobs.

use levee_rt::StoreKind;

use crate::cost::CostModel;

/// How the safe region is isolated from regular memory (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    /// No isolation — an ablation showing that CPI's guarantees
    /// *depend* on isolation: regular writes may touch the safe region.
    None,
    /// x86-32-style segment limits: regular accesses to the safe region
    /// trap deterministically, at zero per-access cost.
    Segmentation,
    /// x86-64-style information hiding: the safe-region base is
    /// randomized; regular accesses only reach it by guessing the base,
    /// and wrong guesses crash (unmapped).
    InfoHiding,
    /// Software fault isolation: every regular memory access is masked
    /// (one extra ALU op), making safe-region access impossible.
    Sfi,
}

/// Which execution engine runs the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The reference engine: walks CFG instructions one step at a time.
    /// Kept for differential testing against the bytecode tier.
    Walk,
    /// The compiled-bytecode tier: the module is compiled once to a
    /// linear bytecode (`levee-bc`) and executed by a fast dispatch
    /// loop. Observable semantics and cost accounting are identical to
    /// [`Engine::Walk`]; only wall-clock time differs.
    #[default]
    Bytecode,
}

impl Engine {
    /// Both engines, for differential suites and benches.
    pub fn all() -> &'static [Engine] {
        &[Engine::Walk, Engine::Bytecode]
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Walk => "walk",
            Engine::Bytecode => "bytecode",
        }
    }
}

/// How `Machine::reset` re-arms a machine between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetMode {
    /// Restore from the copy-on-write memory-image snapshot captured
    /// right after `load()`: only pages and store entries the last run
    /// dirtied are copied back. Observable semantics are bit-identical
    /// to [`ResetMode::Loader`] (the differential suites enforce it);
    /// only host wall-clock differs.
    #[default]
    Snapshot,
    /// Re-run the loader from the module image (the pre-snapshot
    /// behavior). Kept as the reference for differential testing and
    /// as the fallback when no snapshot exists.
    Loader,
}

impl ResetMode {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ResetMode::Snapshot => "snapshot",
            ResetMode::Loader => "loader",
        }
    }
}

/// Pointer-authentication mode for the `-fpac` defense family.
///
/// Under PAC, sensitive code pointers are sealed *in place*: a MAC tag
/// over the pointer's low 48 bits (and a binding context) is packed
/// into the spare high bits of the 64-bit word at memory-write
/// boundaries, and authenticated (tag recomputed and compared, then
/// stripped) at memory-read boundaries. Registers always hold raw
/// pointers. A mismatch raises [`crate::Trap::Pac`]. Contrast with
/// CPI/CPS, which *segregate* sensitive pointers into the safe store
/// instead of sealing them in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacMode {
    /// No pointer authentication (all non-PAC configurations).
    #[default]
    Off,
    /// `-fpac`: tags bind to the pointer value only (context 0). A
    /// sealed word copied between slots still authenticates —
    /// vulnerable to substitution attacks.
    Plain,
    /// `-fpac-tight`: PACTight-style per-context binding — the tag also
    /// covers the address of the memory slot holding the pointer, so a
    /// sealed word replayed at a different slot fails authentication.
    Tight,
}

impl PacMode {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PacMode::Off => "off",
            PacMode::Plain => "pac",
            PacMode::Tight => "pac-tight",
        }
    }
}

/// Hardware model for metadata operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardwareModel {
    /// Software-only Levee (the paper's evaluated prototype).
    Software,
    /// MPX-like hardware assist (§4 "Future MPX-based implementation"):
    /// cheaper checks and metadata bookkeeping, two-level table.
    Mpx,
}

/// Full VM configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Safe-region isolation mechanism.
    pub isolation: Isolation,
    /// Safe-pointer-store organization.
    pub store_kind: StoreKind,
    /// DEP/NX: writable memory is never executable.
    pub nx: bool,
    /// ASLR for the regular region (heap/stack/global bases).
    pub aslr: bool,
    /// Enforce temporal id checks on sensitive-pointer dereferences
    /// (the paper's design supports it; its prototype is spatial-only,
    /// so this defaults to off).
    pub temporal: bool,
    /// Debug mode (§3.2.2): sensitive pointers are stored in *both*
    /// regions and compared on load.
    pub debug_dual_store: bool,
    /// Protect `setjmp` buffers and other runtime-created code pointers
    /// through the safe store (on when the module is CPI/CPS
    /// instrumented; the driver sets this).
    pub protect_runtime_code_ptrs: bool,
    /// Pointer-authentication mode (the `-fpac` / `-fpac-tight`
    /// defense family). Orthogonal to CPI instrumentation; the driver
    /// sets it for PAC builds. The per-machine MAC key is derived from
    /// [`seed`](VmConfig::seed).
    pub pac: PacMode,
    /// MAC tag width in bits for PAC sealing, clamped to `1..=16` (the
    /// pointer's spare high bits). Narrower tags model weaker keys:
    /// forgery-by-guess succeeds with probability `2^-tag_bits`.
    pub pac_tag_bits: u8,
    /// Deterministic seed (layout randomization, cookies).
    pub seed: u64,
    /// Fuel: maximum instructions before `Trap::OutOfFuel`.
    pub max_insts: u64,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Hardware model for metadata ops.
    pub hardware: HardwareModel,
    /// Execution engine (bytecode tier by default; the step walker is
    /// the reference for differential testing).
    pub engine: Engine,
    /// Superinstruction fusion in the bytecode tier (`levee_bc::fuse`):
    /// adjacent pairs like compare+branch, gep+load and check+use
    /// collapse into one dispatch. Observable semantics and cycle
    /// accounting are identical either way (the `diff_fuzz` suite
    /// cross-checks engine × fusion); the knob exists for differential
    /// testing and overhead attribution. Ignored by [`Engine::Walk`].
    pub fusion: bool,
    /// Attach the execution profiler ([`crate::probe`]): per-opcode,
    /// per-function and per-check-site attribution plus a trace-event
    /// ring. Host-side observation only — a profiled run is
    /// bit-identical in simulated cycles, insts, traps and touch
    /// sequences to an unprofiled one (the differential suites enforce
    /// this).
    pub profile: bool,
    /// How [`Machine::reset`](crate::Machine::reset) re-arms the
    /// machine between runs: copy-on-write snapshot restore (default)
    /// or a full loader re-boot. Bit-identical observable behavior
    /// either way.
    pub reset_mode: ResetMode,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            isolation: Isolation::InfoHiding,
            store_kind: StoreKind::ArraySuperpage,
            nx: true,
            aslr: false,
            temporal: false,
            debug_dual_store: false,
            protect_runtime_code_ptrs: false,
            pac: PacMode::default(),
            pac_tag_bits: 16,
            seed: 0,
            max_insts: 200_000_000,
            cost: CostModel::default(),
            hardware: HardwareModel::Software,
            engine: Engine::default(),
            fusion: true,
            profile: false,
            reset_mode: ResetMode::default(),
        }
    }
}

impl VmConfig {
    /// A configuration modelling a completely undefended legacy system
    /// (pre-DEP, pre-ASLR): the "vanilla Ubuntu 6.06" row of §5.1.
    pub fn legacy_unprotected() -> Self {
        VmConfig {
            nx: false,
            aslr: false,
            ..Default::default()
        }
    }

    /// A configuration modelling a modern deployed baseline:
    /// DEP + ASLR on (stack cookies are a per-function pass).
    pub fn modern_baseline() -> Self {
        VmConfig {
            nx: true,
            aslr: true,
            ..Default::default()
        }
    }

    /// Returns self with the given seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns self with the given execution engine (builder style).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns self with superinstruction fusion on or off (builder
    /// style).
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Returns self with the execution profiler on or off (builder
    /// style).
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Returns self with the given reset mode (builder style).
    pub fn with_reset_mode(mut self, reset_mode: ResetMode) -> Self {
        self.reset_mode = reset_mode;
        self
    }

    /// Returns self with the given pointer-authentication mode (builder
    /// style).
    pub fn with_pac(mut self, pac: PacMode) -> Self {
        self.pac = pac;
        self
    }

    /// Returns self with the given PAC tag width (builder style),
    /// clamped to `1..=16`.
    pub fn with_pac_tag_bits(mut self, bits: u8) -> Self {
        self.pac_tag_bits = bits.clamp(1, 16);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let legacy = VmConfig::legacy_unprotected();
        assert!(!legacy.nx && !legacy.aslr);
        let modern = VmConfig::modern_baseline();
        assert!(modern.nx && modern.aslr);
        let seeded = VmConfig::default().with_seed(42);
        assert_eq!(seeded.seed, 42);
    }

    #[test]
    fn bytecode_engine_is_the_default() {
        assert_eq!(VmConfig::default().engine, Engine::Bytecode);
        let walk = VmConfig::default().with_engine(Engine::Walk);
        assert_eq!(walk.engine, Engine::Walk);
        assert_eq!(Engine::all().len(), 2);
        assert_ne!(Engine::Walk.name(), Engine::Bytecode.name());
    }

    #[test]
    fn fusion_defaults_on_and_toggles() {
        assert!(VmConfig::default().fusion);
        assert!(!VmConfig::default().with_fusion(false).fusion);
    }

    #[test]
    fn profile_defaults_off_and_toggles() {
        assert!(!VmConfig::default().profile);
        assert!(VmConfig::default().with_profile(true).profile);
    }

    #[test]
    fn pac_defaults_off_and_tag_bits_clamp() {
        let d = VmConfig::default();
        assert_eq!(d.pac, PacMode::Off);
        assert_eq!(d.pac_tag_bits, 16);
        let p = VmConfig::default().with_pac(PacMode::Tight);
        assert_eq!(p.pac, PacMode::Tight);
        assert_eq!(VmConfig::default().with_pac_tag_bits(0).pac_tag_bits, 1);
        assert_eq!(VmConfig::default().with_pac_tag_bits(8).pac_tag_bits, 8);
        assert_eq!(VmConfig::default().with_pac_tag_bits(64).pac_tag_bits, 16);
        assert_ne!(PacMode::Plain.name(), PacMode::Tight.name());
    }

    #[test]
    fn snapshot_reset_is_the_default() {
        assert_eq!(VmConfig::default().reset_mode, ResetMode::Snapshot);
        let loader = VmConfig::default().with_reset_mode(ResetMode::Loader);
        assert_eq!(loader.reset_mode, ResetMode::Loader);
        assert_ne!(ResetMode::Snapshot.name(), ResetMode::Loader.name());
    }
}
