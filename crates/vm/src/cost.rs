//! The cycle cost model.
//!
//! Deterministic per-operation cycle charges, tuned so the *relative*
//! overheads of instrumented runs land in the regime the paper reports
//! (checks are a branch, safe-pointer-store traffic is ordinary cached
//! memory traffic, page faults are expensive, SFI masking is one ALU op
//! per memory access).

/// Per-operation cycle costs.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Base cost of any executed instruction.
    pub inst: u64,
    /// Extra cost of multiply.
    pub mul: u64,
    /// Extra cost of divide/remainder.
    pub div: u64,
    /// Cost of a memory access that hits in L1.
    pub mem_hit: u64,
    /// Additional cost of an L1 miss.
    pub mem_miss: u64,
    /// Additional cost of a page fault (first touch of a page).
    pub page_fault: u64,
    /// Extra cost of a call (register shuffle + frame setup).
    pub call: u64,
    /// Extra cost of a return.
    pub ret: u64,
    /// Cost of a bounds/validity check (compare + predicted branch).
    pub check: u64,
    /// Bookkeeping cost of a safe-pointer-store operation on top of its
    /// memory traffic (address arithmetic, metadata packing).
    pub store_op: u64,
    /// Extra unsafe-stack frame setup/teardown cost for functions that
    /// need a second stack frame (§3.2.4: "the overhead of setting up
    /// the extra stack frame is non-negligible" for short functions).
    pub unsafe_frame: u64,
    /// SFI mask cost added to every regular memory access when SFI
    /// isolation is selected (§3.2.3: "as small as a single and").
    pub sfi_mask: u64,
    /// Hardware-assisted (MPX-like) discount: bounds checks and
    /// metadata ops run in dedicated units. Expressed as alternative
    /// check/store costs used when the MPX model is on.
    pub mpx_check: u64,
    /// MPX bounds-table access bookkeeping.
    pub mpx_store_op: u64,
    /// Cost of sealing a MAC tag into a code pointer (`pac_sign`) — the
    /// PAC defense family's analogue of ARMv8.3 `PACIA` (a few cycles
    /// of QARMA latency).
    pub pac_sign: u64,
    /// Cost of authenticating a sealed code pointer (`pac_auth`) —
    /// the `AUTIA` analogue; same MAC computation plus the compare.
    pub pac_auth: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            inst: 1,
            mul: 2,
            div: 20,
            mem_hit: 1,
            mem_miss: 24,
            page_fault: 400,
            call: 3,
            ret: 2,
            check: 2,
            store_op: 5,
            unsafe_frame: 6,
            sfi_mask: 1,
            mpx_check: 1,
            mpx_store_op: 2,
            pac_sign: 4,
            pac_auth: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.mem_miss > c.mem_hit);
        assert!(c.page_fault > c.mem_miss);
        assert!(c.mpx_check <= c.check);
        assert!(c.mpx_store_op <= c.store_op);
        // Sign and auth model the same MAC primitive; auth is at least
        // as expensive (MAC + compare) and both beat a memory miss.
        assert!(c.pac_auth >= c.pac_sign);
        assert!(c.pac_sign > 0 && c.pac_auth < c.mem_miss);
    }
}
