//! A simple heap allocator with allocation ids for temporal safety.
//!
//! Bump allocation with per-size-class free lists; every allocation gets
//! a fresh temporal id (CETS-style), and freeing retires the id, so the
//! machine can detect use-after-free on sensitive pointers when temporal
//! checking is enabled. Freeing an array and allocating a new one at the
//! same address creates a *different* target object, exactly as §3
//! defines object lifetimes.

use std::collections::HashMap;

use levee_rt::FastHash;

/// One live or retired allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Base address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Temporal id (unique per allocation event; never reused).
    pub id: u64,
    /// Liveness.
    pub live: bool,
}

/// Heap state.
#[derive(Clone)]
pub struct Heap {
    base: u64,
    limit: u64,
    brk: u64,
    next_id: u64,
    /// Free lists keyed by rounded size class.
    free: HashMap<u64, Vec<u64>, FastHash>,
    /// All allocations ever made, keyed by base address of the most
    /// recent allocation at that address.
    by_addr: HashMap<u64, Allocation, FastHash>,
    /// Retired ids (freed allocations), for temporal checks.
    dead_ids: std::collections::HashSet<u64>,
    /// Peak bytes in use.
    peak: u64,
    in_use: u64,
    /// Post-load baseline for snapshot resets; see
    /// [`capture_snapshot`](Self::capture_snapshot).
    baseline: Option<Box<HeapBaseline>>,
    /// True once `malloc`/`free` ran after the last capture/restore.
    dirty: bool,
}

/// Complete allocator state at capture time. The heap right after
/// `load()` holds at most a handful of loader allocations, so a full
/// clone is cheap — and restores are cheaper still: a run that never
/// touched the allocator restores nothing (see the `dirty` flag).
#[derive(Clone)]
struct HeapBaseline {
    brk: u64,
    next_id: u64,
    free: HashMap<u64, Vec<u64>, FastHash>,
    by_addr: HashMap<u64, Allocation, FastHash>,
    dead_ids: std::collections::HashSet<u64>,
    peak: u64,
    in_use: u64,
}

/// Heap errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// Allocation would exceed the heap limit.
    OutOfMemory,
    /// `free` of an address that is not a live allocation base.
    InvalidFree { addr: u64 },
}

fn size_class(size: u64) -> u64 {
    size.max(8).next_power_of_two()
}

impl Heap {
    /// Creates a heap spanning `[base, base+limit)`.
    pub fn new(base: u64, limit: u64) -> Self {
        Heap {
            base,
            limit,
            brk: base,
            next_id: 1,
            free: HashMap::default(),
            by_addr: HashMap::default(),
            dead_ids: std::collections::HashSet::new(),
            peak: 0,
            in_use: 0,
            baseline: None,
            dirty: false,
        }
    }

    /// Captures the complete allocator state as the restore baseline.
    ///
    /// Called once right after `load()`, when the heap holds only the
    /// loader's allocations (usually none), so the clone is tiny.
    pub fn capture_snapshot(&mut self) {
        self.baseline = Some(Box::new(HeapBaseline {
            brk: self.brk,
            next_id: self.next_id,
            free: self.free.clone(),
            by_addr: self.by_addr.clone(),
            dead_ids: self.dead_ids.clone(),
            peak: self.peak,
            in_use: self.in_use,
        }));
        self.dirty = false;
    }

    /// Reverts the allocator to the captured baseline; a run that never
    /// called `malloc`/`free` restores nothing. Rewinding `next_id`
    /// deliberately reissues the same temporal ids the previous run
    /// drew — that is what makes a restored machine's use-after-free
    /// verdicts bit-identical to a fresh boot's. Returns whether any
    /// state was copied back.
    ///
    /// # Panics
    ///
    /// Panics if [`capture_snapshot`](Self::capture_snapshot) never ran.
    pub fn restore_snapshot(&mut self) -> bool {
        let baseline = self.baseline.as_ref().expect("no baseline captured");
        if !self.dirty {
            return false;
        }
        self.brk = baseline.brk;
        self.next_id = baseline.next_id;
        self.free = baseline.free.clone();
        self.by_addr = baseline.by_addr.clone();
        self.dead_ids = baseline.dead_ids.clone();
        self.peak = baseline.peak;
        self.in_use = baseline.in_use;
        self.dirty = false;
        true
    }

    /// Allocates `size` bytes (8-aligned); returns the allocation record.
    pub fn malloc(&mut self, size: u64) -> Result<Allocation, HeapError> {
        self.dirty = true;
        let class = size_class(size);
        let addr = match self.free.get_mut(&class).and_then(|v| v.pop()) {
            Some(addr) => addr,
            None => {
                let addr = self.brk;
                let new_brk = addr.checked_add(class).ok_or(HeapError::OutOfMemory)?;
                if new_brk > self.base + self.limit {
                    return Err(HeapError::OutOfMemory);
                }
                self.brk = new_brk;
                addr
            }
        };
        let alloc = Allocation {
            addr,
            size,
            id: self.next_id,
            live: true,
        };
        self.next_id += 1;
        self.by_addr.insert(addr, alloc);
        self.in_use += class;
        self.peak = self.peak.max(self.in_use);
        Ok(alloc)
    }

    /// Frees the allocation at `addr`, retiring its temporal id.
    /// `free(0)` (NULL) is a no-op, per C semantics.
    pub fn free(&mut self, addr: u64) -> Result<(), HeapError> {
        if addr == 0 {
            return Ok(());
        }
        match self.by_addr.get_mut(&addr) {
            Some(a) if a.live => {
                self.dirty = true;
                a.live = false;
                let (id, size) = (a.id, a.size);
                self.dead_ids.insert(id);
                let class = size_class(size);
                self.free.entry(class).or_default().push(addr);
                self.in_use -= class;
                Ok(())
            }
            _ => Err(HeapError::InvalidFree { addr }),
        }
    }

    /// True if temporal id `id` refers to a freed allocation.
    pub fn id_is_dead(&self, id: u64) -> bool {
        self.dead_ids.contains(&id)
    }

    /// The live allocation whose range contains `addr`, if any.
    pub fn containing(&self, addr: u64) -> Option<Allocation> {
        // Linear scan is fine at our simulation scales only for tests;
        // use the base-address map first for the common exact case.
        if let Some(a) = self.by_addr.get(&addr) {
            if a.live {
                return Some(*a);
            }
        }
        self.by_addr
            .values()
            .find(|a| a.live && addr >= a.addr && addr < a.addr + a.size)
            .copied()
    }

    /// Peak heap bytes in use (size-class rounded).
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Current heap break (high-water address).
    pub fn brk(&self) -> u64 {
        self.brk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_returns_disjoint_regions() {
        let mut h = Heap::new(0x1000_0000, 1 << 20);
        let a = h.malloc(100).unwrap();
        let b = h.malloc(100).unwrap();
        assert!(a.addr + 128 <= b.addr || b.addr + 128 <= a.addr);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn free_and_reuse_changes_id() {
        let mut h = Heap::new(0x1000_0000, 1 << 20);
        let a = h.malloc(64).unwrap();
        h.free(a.addr).unwrap();
        assert!(h.id_is_dead(a.id));
        let b = h.malloc(64).unwrap();
        assert_eq!(b.addr, a.addr); // reused address
        assert_ne!(b.id, a.id); // … but a different object
        assert!(!h.id_is_dead(b.id));
    }

    #[test]
    fn double_free_is_an_error() {
        let mut h = Heap::new(0x1000_0000, 1 << 20);
        let a = h.malloc(8).unwrap();
        h.free(a.addr).unwrap();
        assert_eq!(h.free(a.addr), Err(HeapError::InvalidFree { addr: a.addr }));
    }

    #[test]
    fn free_null_is_noop() {
        let mut h = Heap::new(0x1000_0000, 1 << 20);
        assert_eq!(h.free(0), Ok(()));
    }

    #[test]
    fn out_of_memory() {
        let mut h = Heap::new(0x1000_0000, 1 << 10);
        assert!(h.malloc(512).is_ok());
        assert!(h.malloc(512).is_ok());
        assert_eq!(h.malloc(512), Err(HeapError::OutOfMemory));
    }

    #[test]
    fn containing_finds_interior_pointers() {
        let mut h = Heap::new(0x1000_0000, 1 << 20);
        let a = h.malloc(100).unwrap();
        let hit = h.containing(a.addr + 50).unwrap();
        assert_eq!(hit.id, a.id);
        assert!(h.containing(a.addr + 1000).is_none());
        h.free(a.addr).unwrap();
        assert!(h.containing(a.addr + 50).is_none());
    }

    #[test]
    fn snapshot_restore_reissues_identical_temporal_ids() {
        let mut h = Heap::new(0x1000_0000, 1 << 20);
        let loader = h.malloc(64).unwrap(); // a loader-time allocation
        h.capture_snapshot();
        assert!(!h.restore_snapshot()); // clean: nothing to copy back

        let a1 = h.malloc(100).unwrap();
        h.free(a1.addr).unwrap();
        let b1 = h.malloc(100).unwrap();
        assert!(h.restore_snapshot());

        // Replay the same allocation sequence: addresses, ids, and
        // dead-id verdicts must be bit-identical to the first run.
        let a2 = h.malloc(100).unwrap();
        assert_eq!(a2, a1);
        h.free(a2.addr).unwrap();
        let b2 = h.malloc(100).unwrap();
        assert_eq!(b2, b1);
        assert!(h.id_is_dead(a2.id));
        assert!(!h.id_is_dead(b2.id));
        assert_eq!(h.containing(loader.addr).unwrap().id, loader.id);
    }

    #[test]
    fn peak_accounting() {
        let mut h = Heap::new(0x1000_0000, 1 << 20);
        let a = h.malloc(1000).unwrap(); // class 1024
        h.malloc(1000).unwrap();
        h.free(a.addr).unwrap();
        assert_eq!(h.peak_bytes(), 2048);
    }
}
