//! The simulated address-space layout.
//!
//! Models an x86-64-like 48-bit virtual address space (§3.2.3). The
//! regular region (code, globals, heap, stacks) sits in the low
//! addresses; the safe region lives at a high base that is either fixed
//! (segmentation/SFI isolation) or randomized (information hiding). The
//! key invariant of the paper's leak-proof hiding — no safe-region
//! address is ever stored in regular memory — holds by construction: the
//! VM never materializes safe-region addresses as program values.

use rand::Rng;

/// Base of the code segment (function entries and return sites).
pub const CODE_BASE: u64 = 0x0040_0000;
/// Bytes reserved per function in the code segment.
pub const FUNC_STRIDE: u64 = 0x1000;
/// Base of the read-only data segment.
pub const RODATA_BASE: u64 = 0x0200_0000;
/// Base of the writable data/bss segment.
pub const DATA_BASE: u64 = 0x0400_0000;
/// Base of the heap (grows upward).
pub const HEAP_BASE: u64 = 0x1000_0000;
/// Heap size limit in bytes.
pub const HEAP_LIMIT: u64 = 0x4000_0000;
/// Top of the conventional/regular stack (grows downward).
pub const STACK_TOP: u64 = 0x7fff_f000;
/// Maximum regular stack size.
pub const STACK_LIMIT: u64 = 8 << 20;
/// Top of the unsafe stack used by the safe-stack transformation.
pub const UNSAFE_STACK_TOP: u64 = 0x7f00_0000;
/// Maximum unsafe stack size.
pub const UNSAFE_STACK_LIMIT: u64 = 8 << 20;

/// Lowest possible safe-region base (48-bit space, high half).
pub const SAFE_REGION_MIN: u64 = 0x4000_0000_0000;
/// Width of the window the randomized safe-region base is drawn from
/// (16 TB of the 48-bit space).
pub const SAFE_REGION_WINDOW: u64 = 0x1000_0000_0000;
/// Footprint of one safe region (sparse store span + safe stacks).
pub const SAFE_REGION_FOOTPRINT: u64 = 0x8_0000_0000;
/// Offset of the safe stack within the safe region.
pub const SAFE_STACK_OFFSET: u64 = 0x100_0000;
/// Offset of the safe pointer store within the safe region.
pub const PTR_STORE_OFFSET: u64 = 0x1_0000_0000;
/// Alignment of randomized safe-region bases; window ÷ alignment is the
/// guessing space that makes probing crash-prone (§3.2.3).
pub const SAFE_REGION_ALIGN: u64 = SAFE_REGION_FOOTPRINT;

/// Base offset of the "libc" (intrinsic) entry block inside the code
/// segment; placed above program functions so shifting it never
/// collides with them.
pub const LIBC_CODE_OFFSET: u64 = 0x100_0000;

/// The concrete layout of one execution, after ASLR decisions.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// Shift applied to heap/stack bases when ASLR is on.
    pub aslr_shift: u64,
    /// Shift applied to the libc (intrinsic) code block when ASLR is on
    /// — program code and globals stay fixed, modelling a non-PIE
    /// binary with a randomized libc, which is why code-reuse attacks
    /// against the *program's own* code survive ASLR.
    pub libc_shift: u64,
    /// Base address of the safe region for this execution.
    pub safe_base: u64,
    /// Top of the regular stack.
    pub stack_top: u64,
    /// Top of the unsafe stack.
    pub unsafe_stack_top: u64,
    /// Base of the heap.
    pub heap_base: u64,
    /// Base of writable globals.
    pub data_base: u64,
    /// Base of read-only globals.
    pub rodata_base: u64,
}

impl Layout {
    /// A fixed, predictable layout (no ASLR; fixed safe-region base).
    pub fn fixed() -> Self {
        Layout {
            aslr_shift: 0,
            libc_shift: 0,
            safe_base: SAFE_REGION_MIN,
            stack_top: STACK_TOP,
            unsafe_stack_top: UNSAFE_STACK_TOP,
            heap_base: HEAP_BASE,
            data_base: DATA_BASE,
            rodata_base: RODATA_BASE,
        }
    }

    /// A randomized layout. `aslr` shifts the regular-region bases (the
    /// deployed-defense model); the safe-region base is always drawn at
    /// random for information-hiding isolation.
    pub fn randomized<R: Rng>(rng: &mut R, aslr: bool) -> Self {
        let shift = if aslr {
            // Page-aligned shift of up to 16 MB, like mmap randomization.
            (rng.gen_range(0..4096u64)) * 4096
        } else {
            0
        };
        let slots = SAFE_REGION_WINDOW / SAFE_REGION_ALIGN;
        let safe_base = SAFE_REGION_MIN + rng.gen_range(0..slots) * SAFE_REGION_ALIGN;
        let libc_shift = if aslr {
            (rng.gen_range(0..2048u64)) * 4096
        } else {
            0
        };
        Layout {
            aslr_shift: shift,
            libc_shift,
            safe_base,
            stack_top: STACK_TOP - shift,
            unsafe_stack_top: UNSAFE_STACK_TOP - shift,
            heap_base: HEAP_BASE + shift,
            // Non-PIE model: globals (data/rodata) are not randomized.
            data_base: DATA_BASE,
            rodata_base: RODATA_BASE,
        }
    }

    /// Entry address of function number `idx`.
    pub fn func_entry(&self, idx: u32) -> u64 {
        CODE_BASE + idx as u64 * FUNC_STRIDE
    }

    /// Address of return site number `site` inside function `idx`
    /// (distinct from the entry, 16-byte spaced).
    pub fn ret_site(&self, idx: u32, site: u32) -> u64 {
        self.func_entry(idx) + 16 * (site as u64 + 1)
    }

    /// True if `addr` lies in the code segment.
    pub fn in_code(&self, addr: u64) -> bool {
        (CODE_BASE..self.rodata_base).contains(&addr)
    }

    /// True if `addr` lies in the safe region of this execution.
    pub fn in_safe_region(&self, addr: u64) -> bool {
        (self.safe_base..self.safe_base + SAFE_REGION_FOOTPRINT).contains(&addr)
    }

    /// Base of the safe stack.
    pub fn safe_stack_top(&self) -> u64 {
        self.safe_base + SAFE_STACK_OFFSET + (4 << 20)
    }

    /// Base of the safe pointer store.
    pub fn ptr_store_base(&self) -> u64 {
        self.safe_base + PTR_STORE_OFFSET
    }

    /// Number of distinct safe-region base candidates an attacker must
    /// guess among under information hiding.
    pub fn safe_base_candidates() -> u64 {
        SAFE_REGION_WINDOW / SAFE_REGION_ALIGN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_layout_is_deterministic() {
        let a = Layout::fixed();
        let b = Layout::fixed();
        assert_eq!(a.safe_base, b.safe_base);
        assert_eq!(a.func_entry(3), CODE_BASE + 3 * FUNC_STRIDE);
        assert!(a.ret_site(3, 0) > a.func_entry(3));
    }

    #[test]
    fn randomized_layout_varies_by_seed() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = Layout::randomized(&mut r1, true);
        let b = Layout::randomized(&mut r2, true);
        assert_ne!(a.safe_base, b.safe_base);
        // Same seed → same layout (reproducibility).
        let mut r1b = StdRng::seed_from_u64(1);
        let c = Layout::randomized(&mut r1b, true);
        assert_eq!(a.safe_base, c.safe_base);
        assert_eq!(a.aslr_shift, c.aslr_shift);
    }

    #[test]
    fn no_aslr_keeps_regular_bases_fixed() {
        let mut r = StdRng::seed_from_u64(7);
        let l = Layout::randomized(&mut r, false);
        assert_eq!(l.heap_base, HEAP_BASE);
        assert_eq!(l.stack_top, STACK_TOP);
        assert_eq!(l.libc_shift, 0);
        // Safe base still randomized.
        assert!(l.safe_base >= SAFE_REGION_MIN);
    }

    #[test]
    fn aslr_randomizes_libc_and_stack_but_not_globals() {
        let mut r = StdRng::seed_from_u64(3);
        let l = Layout::randomized(&mut r, true);
        assert_eq!(l.data_base, DATA_BASE); // non-PIE: globals fixed
        assert!(l.aslr_shift > 0 || l.libc_shift > 0);
    }

    #[test]
    fn region_predicates() {
        let l = Layout::fixed();
        assert!(l.in_code(l.func_entry(0)));
        assert!(!l.in_code(l.heap_base));
        assert!(l.in_safe_region(l.ptr_store_base()));
        assert!(l.in_safe_region(l.safe_stack_top() - 8));
        assert!(!l.in_safe_region(l.stack_top - 8));
    }

    #[test]
    fn guessing_space_is_large() {
        assert!(Layout::safe_base_candidates() >= 256);
    }
}
