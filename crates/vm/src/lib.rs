//! # levee-vm — the execution substrate
//!
//! A deterministic virtual machine for [`levee_ir`] modules, standing in
//! for the x86-64 testbed of the CPI paper (OSDI 2014). It provides:
//!
//! * a split memory model: the regular region (code, globals, heap,
//!   stacks) and the **safe region** (safe stacks + safe pointer store),
//!   with the isolation models of §3.2.3 ([`config::Isolation`]:
//!   segmentation, information hiding, SFI, or none),
//! * an explicit in-memory stack image — return addresses are real
//!   words at real addresses that buffer overflows can reach,
//! * a cycle + L1-cache cost model ([`cost::CostModel`], [`cache`])
//!   making instrumentation overheads measurable and reproducible,
//! * the attacker API of the paper's threat model (§2): arbitrary
//!   regular-memory reads/writes, address-guessing probes,
//! * attack goals: addresses whose reachability by an indirect control
//!   transfer terminates the run as a successful hijack
//!   ([`trap::Trap::Hijacked`]).
//!
//! ## Example: running a module
//!
//! ```
//! use levee_ir::prelude::*;
//! use levee_vm::{Machine, VmConfig};
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
//! b.intrinsic(Intrinsic::PrintInt, vec![Operand::Const(42)], Ty::Void);
//! b.ret(Some(0.into()));
//! m.add_func(b.finish());
//!
//! let mut vm = Machine::new(&m, VmConfig::default());
//! let out = vm.run(b"");
//! assert!(out.status.is_success());
//! assert_eq!(out.output, "42");
//! ```

pub mod cache;
pub mod config;
pub mod cost;
pub mod heap;
pub mod layout;
pub mod machine;
pub mod mem;
pub mod probe;
pub mod stats;
pub mod trap;

pub use config::{Engine, HardwareModel, Isolation, PacMode, ResetMode, VmConfig};
pub use levee_bc::FuseStats;
pub use levee_rt::StoreKind;
pub use machine::{AttackerError, GuessOutcome, Machine, RunOutcome, PAC_PTR_MASK, V};
pub use probe::{
    touch_addrs, CheckSiteProfile, FuncProfile, OpProfile, ProfileReport, TouchKind, TouchRecord,
    TraceEvent, TraceEventKind,
};
pub use stats::{ExecStats, ResetStats};
pub use trap::{CpiViolationKind, ExitStatus, GoalKind, Trap};

/// Rounds `x` up to a multiple of `align`.
pub(crate) fn ctx_align(x: u64, align: u64) -> u64 {
    x.div_ceil(align) * align
}
