//! The attacker API: the threat model of §2, made executable.
//!
//! The attacker has full control over *regular* process memory (arbitrary
//! reads and writes, modelling input-controlled corruption primitives),
//! but cannot modify the code segment and cannot name safe-region
//! addresses unless isolation is off or a guess happens to land.

use crate::config::Isolation;
use crate::trap::Trap;

use super::Machine;

/// Result of probing a guessed safe-region address under information
/// hiding (§3.2.3: "most failed guessing attempts would crash the
/// program").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuessOutcome {
    /// The guess hit inside the live safe region: hiding is breached.
    Hit,
    /// The guess landed on unmapped memory: the process crashes (and a
    /// deployment would notice the crash storm).
    Crash,
    /// The guess landed on ordinary regular memory: silently wrong.
    Miss,
}

/// Why an attacker memory operation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackerError {
    /// Target is in the write-protected code/rodata image.
    CodeImmutable,
    /// Target is inside the safe region and isolation blocks it.
    IsolationBlocked,
    /// Target address is unmapped (the "write" would crash the victim).
    Unmapped,
}

impl<'m> Machine<'m> {
    /// Arbitrary attacker write to regular memory (threat model §2).
    ///
    /// Fails against the code segment (read-executable, not writable),
    /// and against the safe region whenever any isolation mechanism is
    /// active — under information hiding the attacker cannot *name*
    /// these addresses, which this API models as a refusal.
    pub fn attacker_write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), AttackerError> {
        for (i, b) in bytes.iter().enumerate() {
            let a = addr + i as u64;
            if self.layout.in_safe_region(a) && self.config.isolation != Isolation::None {
                return Err(AttackerError::IsolationBlocked);
            }
            match self.mem.write_u8(a, *b) {
                Ok(()) => {}
                Err(crate::mem::MemError::WriteProtected { .. }) => {
                    return Err(AttackerError::CodeImmutable)
                }
                Err(crate::mem::MemError::Unmapped { .. }) => return Err(AttackerError::Unmapped),
            }
        }
        Ok(())
    }

    /// Arbitrary attacker read of regular memory (info-leak primitive).
    pub fn attacker_read(&self, addr: u64, len: u64) -> Result<Vec<u8>, AttackerError> {
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let a = addr + i;
            if self.layout.in_safe_region(a) && self.config.isolation != Isolation::None {
                return Err(AttackerError::IsolationBlocked);
            }
            match self.mem.read_u8(a) {
                Ok(b) => out.push(b),
                Err(_) => return Err(AttackerError::Unmapped),
            }
        }
        Ok(out)
    }

    /// One guessing attempt against the hidden safe region: the attacker
    /// picks an address and dereferences it through a corrupted pointer.
    pub fn attacker_guess(&self, addr: u64) -> GuessOutcome {
        if self.layout.in_safe_region(addr) {
            return GuessOutcome::Hit;
        }
        // Outside the safe region: mapped regular memory is a miss,
        // anything else crashes the process.
        if self.mem.read_u8(addr).is_ok() {
            GuessOutcome::Miss
        } else {
            GuessOutcome::Crash
        }
    }

    /// The number of equally likely safe-region bases under information
    /// hiding: the denominator of a guessing attack's success chance.
    pub fn guess_space(&self) -> u64 {
        crate::layout::Layout::safe_base_candidates()
    }

    /// Direct corruption helper for tests: overwrite the return-address
    /// slot of the *current deepest* frame, as a contiguous stack
    /// overflow would. Returns the slot address, or `None` when the slot
    /// is on the safe stack (immune by construction).
    pub fn smash_return_address(&mut self, value: u64) -> Option<u64> {
        let frame = self.frames.last()?;
        let slot = frame.ret_slot;
        if frame.desc.safestack {
            return None;
        }
        self.attacker_write(slot, &value.to_le_bytes()).ok()?;
        Some(slot)
    }

    /// Runs the machine until just before `main` returns, then lets a
    /// closure corrupt memory, then resumes. Used by unit tests that
    /// need surgical mid-execution corruption without a full exploit.
    ///
    /// Always executes on the step-walking reference engine regardless
    /// of `VmConfig::engine`: stopping after exactly `steps_before`
    /// instructions requires single-stepping, which the bytecode
    /// engine's dispatch loop does not expose (and the two engines are
    /// observationally identical, so verdicts are unaffected).
    pub fn run_with_midpoint_corruption<F>(
        &mut self,
        input: &[u8],
        steps_before: u64,
        corrupt: F,
    ) -> super::RunOutcome
    where
        F: FnOnce(&mut Machine<'m>),
    {
        self.input = input.to_vec();
        self.input_pos = 0;
        let main = self.module.func_by_name("main").expect("main exists");
        if let Err(trap) = self.enter_function(main, vec![], None, super::MAIN_RET_SENTINEL) {
            return super::RunOutcome {
                status: crate::trap::ExitStatus::Trapped(trap),
                stats: self.stats,
                output: self.output.join("\n"),
            };
        }
        let mut status = None;
        for _ in 0..steps_before {
            match self.step() {
                Ok(Some(exit)) => {
                    status = Some(exit);
                    break;
                }
                Ok(None) => {}
                Err(t) => {
                    status = Some(crate::trap::ExitStatus::Trapped(t));
                    break;
                }
            }
        }
        if status.is_none() {
            corrupt(self);
            status = Some(loop {
                match self.step() {
                    Ok(Some(exit)) => break exit,
                    Ok(None) => {}
                    Err(t) => break crate::trap::ExitStatus::Trapped(t),
                }
            });
        }
        let status = match status.expect("status set") {
            crate::trap::ExitStatus::Trapped(Trap::ProgramExit(c)) => {
                crate::trap::ExitStatus::Exited(c)
            }
            s => s,
        };
        self.finalize_stats();
        super::RunOutcome {
            status,
            stats: self.stats,
            output: self.output.join("\n"),
        }
    }
}
