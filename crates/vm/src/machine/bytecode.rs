//! The fast-dispatch engine: executes `levee-bc` bytecode.
//!
//! Semantics are bit-for-bit those of the step walker (`exec.rs`): the
//! same helper methods perform the same memory accesses, checks and
//! cost-model charges in the same order, so two runs of one module under
//! the two engines produce identical traps, output **and cycle counts**
//! — the differential suite in `tests/engines.rs` enforces this. What
//! changes is the interpreter overhead per instruction: blocks are flat,
//! jumps are pre-resolved word offsets, operands are direct register
//! slots or constant-pool loads, and type sizes were computed at
//! compile time.
//!
//! Two pieces of state are cached in locals across instructions and
//! synchronized at the points where other components can observe them:
//!
//! * `pc` mirrors `Frame::ip` (which, under this engine, holds the word
//!   offset into the function's code stream; `Frame::block` is unused).
//!   It is written back before calls (the resume point) and intrinsics
//!   (`setjmp` captures it, `longjmp` rewrites it).
//! * `regs` is the current frame's register file, *moved* out of the
//!   frame (a pointer-sized `Vec` move) so operand reads skip the
//!   frame-stack indirection, and moved back before any operation that
//!   can touch frames: calls, returns, intrinsics. If a trap ends the
//!   run mid-instruction the dead frame keeps its empty register file —
//!   nothing reads registers after a run ends.

use levee_bc::{BcModule, Op, OPERAND_CONST_BIT};
use levee_ir::prelude::*;
use levee_rt::{Entry, MetaId};

use crate::probe::TouchKind;
use crate::trap::{ExitStatus, Trap};

use super::exec::{bin_meta, truncate};
use super::{Machine, V};

/// Reads an operand word: a register slot or a constant-pool index.
///
/// # Safety
///
/// `word` must come from a stream produced by `levee_bc::compile`, whose
/// validator guarantees register words index inside the function's
/// register file (`regs.len()` equals the IR local count by frame
/// construction) and constant words index inside the pool.
#[inline(always)]
unsafe fn ev(regs: &[V], consts: &[u64], word: u32) -> V {
    if word & OPERAND_CONST_BIT == 0 {
        debug_assert!((word as usize) < regs.len());
        *regs.get_unchecked(word as usize)
    } else {
        let idx = (word & !OPERAND_CONST_BIT) as usize;
        debug_assert!(idx < consts.len());
        V::int(*consts.get_unchecked(idx))
    }
}

impl<'m> Machine<'m> {
    /// Compiles the module to bytecode — applying the superinstruction
    /// fusion pass when `VmConfig::fusion` is on — ahead of the first
    /// run. Runs lazily otherwise; benches call this explicitly to keep
    /// one-time compilation out of timed regions. Recompilation is
    /// never needed because module and config are immutable for the
    /// machine's lifetime. A no-op under [`crate::Engine::Walk`].
    pub fn precompile(&mut self) {
        if self.config.engine == crate::Engine::Bytecode && self.bc.is_none() {
            let mut bc = levee_bc::compile(self.module);
            let fuse_stats = if self.config.fusion {
                levee_bc::fuse(&mut bc)
            } else {
                levee_bc::FuseStats::default()
            };
            self.fuse_stats = Some(fuse_stats);
            self.bc = Some(bc);
        }
    }

    /// Runs the bytecode engine to completion, compiling on first use.
    pub(crate) fn run_bytecode(&mut self) -> ExitStatus {
        self.precompile();
        // Take ownership for the duration of the loop so the code
        // stream can be borrowed while `&mut self` methods run.
        let bc = self.bc.take().expect("just compiled");
        if let Some(p) = self.probe.as_deref_mut() {
            p.attach_bc(&bc);
        }
        let status = self.dispatch_loop(&bc);
        self.bc = Some(bc);
        status
    }

    fn dispatch_loop(&mut self, bc: &BcModule) -> ExitStatus {
        let mut fidx = self.frame().func.0 as usize;
        let mut pc = self.frame().ip;
        let mut code: &[u32] = &bc.funcs[fidx].code;
        let mut consts: &[u64] = &bc.funcs[fidx].consts;
        let mut regs: Vec<V> = std::mem::take(&mut self.frame_mut().regs);
        let cost_inst = self.config.cost.inst;
        let max_insts = self.config.max_insts;
        // Instruction and cycle counters accumulate in locals and flush
        // to `self.stats` before every point where another component
        // could observe them: helper calls (which add their own cycle
        // charges) and every exit from the loop. Totals at observation
        // points are therefore identical to the walk engine's.
        let mut insts_l = self.stats.insts;
        let mut cycles_l: u64 = 0;
        let mut mem_ops_l: u64 = 0;
        let cost_mem_hit = self.config.cost.mem_hit;
        let cost_mem_miss = self.config.cost.mem_miss;
        let cost_sfi = self.config.cost.sfi_mask;
        let cost_pac_sign = self.config.cost.pac_sign;
        let cost_pac_auth = self.config.cost.pac_auth;
        let sfi = self.config.isolation == crate::config::Isolation::Sfi;

        // Re-caches function state after any control transfer that may
        // have switched frames (call, return, longjmp).
        macro_rules! reload {
            () => {{
                let frame = self.frames.last_mut().expect("active frame");
                fidx = frame.func.0 as usize;
                pc = frame.ip;
                regs = std::mem::take(&mut frame.regs);
                code = &bc.funcs[fidx].code;
                consts = &bc.funcs[fidx].consts;
            }};
        }
        // Moves the register file back into its frame before an
        // operation that may read or write frames.
        macro_rules! sync_frame {
            () => {{
                let frame = self.frames.last_mut().expect("active frame");
                frame.ip = pc;
                frame.regs = regs;
            }};
        }
        // Unchecked stream/register accessors. SAFETY: the stream was
        // produced and validated by `levee_bc::compile` (see its
        // `validate` pass): `pc` only ever holds instruction-boundary
        // offsets (entry 0, post-call resume points, validated branch
        // targets), every instruction fits the stream, register words
        // index inside the frame's register file and constant words
        // inside the pool. Debug builds keep the assertions.
        macro_rules! w {
            ($i:expr) => {{
                debug_assert!(pc + $i < code.len());
                unsafe { *code.get_unchecked(pc + $i) }
            }};
        }
        macro_rules! rd {
            ($word:expr) => {{
                let word = $word;
                unsafe { ev(&regs, consts, word) }
            }};
        }
        macro_rules! cst {
            ($word:expr) => {{
                let i = $word as usize;
                debug_assert!(i < consts.len());
                unsafe { *consts.get_unchecked(i) }
            }};
        }
        macro_rules! wr {
            ($dest:expr, $v:expr) => {{
                let d = $dest as usize;
                debug_assert!(d < regs.len());
                unsafe { *regs.get_unchecked_mut(d) = $v };
            }};
        }
        // Publishes the locally-accumulated counters. (The resets are
        // dead when a flush directly precedes a return; the lint can't
        // see that only some expansions exit.)
        macro_rules! flush {
            () => {{
                self.stats.insts = insts_l;
                self.stats.cycles += cycles_l;
                self.stats.mem_ops += mem_ops_l;
                #[allow(unused_assignments)]
                {
                    cycles_l = 0;
                    mem_ops_l = 0;
                }
            }};
        }
        // Inline equivalent of `charge_mem` accumulating into the local
        // cycle counter (identical charges, enforced by the engines
        // differential suite). Kind/width only tag the touch log.
        macro_rules! charge_mem_local {
            ($addr:expr, $regular:expr, $kind:expr, $width:expr) => {{
                cycles_l += cost_mem_hit;
                if !self.cache.access($addr, $kind, $width) {
                    cycles_l += cost_mem_miss;
                }
                if $regular && sfi {
                    self.sfi_masked += 1;
                    if self.sfi_masked % 3 == 0 {
                        cycles_l += cost_sfi;
                    }
                }
            }};
        }
        // The per-instruction base charge + fuel check of `step()`.
        // Superinstruction arms invoke it once more between their two
        // constituents, so instruction counts, cycle totals and the
        // exact out-of-fuel cutoff point are identical to executing the
        // pair unfused (first constituent's effects land, second's
        // don't — just as the walker traps between two steps).
        macro_rules! fuel_step {
            () => {{
                insts_l += 1;
                cycles_l += cost_inst;
                if insts_l > max_insts {
                    flush!();
                    return ExitStatus::Trapped(Trap::OutOfFuel);
                }
            }};
        }
        // Runs a fallible helper with counters published, converting a
        // trap into the run's final status exactly like `run_loop`.
        macro_rules! bail {
            ($e:expr) => {{
                flush!();
                match $e {
                    Ok(v) => v,
                    Err(Trap::ProgramExit(code)) => return ExitStatus::Exited(code),
                    Err(trap) => return ExitStatus::Trapped(trap),
                }
            }};
        }

        loop {
            let op = Op::from_u32(w!(0));
            // Profiler dispatch seam: close the previous op's cycle
            // window at the current total (flushed + local) and open
            // this one's. Observation only — decoding the opcode before
            // the fuel check is semantically inert (the word is
            // re-matched below either way).
            if self.probe.is_some() {
                let now = self.stats.cycles + cycles_l;
                if let Some(p) = self.probe.as_deref_mut() {
                    p.dispatch(op as usize, now);
                }
            }
            // Per-instruction base charge + fuel, as in `step()`.
            fuel_step!();

            match op {
                Op::Alloca => {
                    let dest = w!(1);
                    let size = cst!(w!(2));
                    let stack = levee_bc::decode_stack(w!(3));
                    pc += 4;
                    let addr = bail!(self.do_alloca(size, stack));
                    let v = self.v_data(addr, addr, addr + size, 0);
                    wr!(dest, v);
                }
                Op::Load => {
                    let dest = w!(1);
                    let addr = rd!(w!(2)).raw;
                    let size = w!(3) as u64;
                    let space = levee_bc::decode_space(w!(4));
                    pc += 5;
                    mem_ops_l += 1;
                    bail!(self.isolation_check(addr, space));
                    charge_mem_local!(
                        addr,
                        space == MemSpace::Regular,
                        TouchKind::Read,
                        size as u8
                    );
                    let raw = bail!(self.mem.read_uint(addr, size).map_err(Self::mem_trap));
                    let meta = if space == MemSpace::SafeStack {
                        match self.safe_stack_meta.get(&addr) {
                            Some(&(spilled, m)) if spilled == raw => m,
                            _ => MetaId::NONE,
                        }
                    } else {
                        MetaId::NONE
                    };
                    wr!(dest, V { raw, meta });
                }
                Op::Store => {
                    let addr = rd!(w!(1)).raw;
                    let v = rd!(w!(2));
                    let size = w!(3) as u64;
                    let space = levee_bc::decode_space(w!(4));
                    pc += 5;
                    mem_ops_l += 1;
                    if space == MemSpace::SafeStack {
                        if v.meta.is_some() {
                            self.safe_stack_meta.insert(addr, (v.raw, v.meta));
                        } else {
                            self.safe_stack_meta.remove(&addr);
                        }
                    }
                    bail!(self.isolation_check(addr, space));
                    charge_mem_local!(
                        addr,
                        space == MemSpace::Regular,
                        TouchKind::Write,
                        size as u8
                    );
                    bail!(self
                        .mem
                        .write_uint(addr, v.raw, size)
                        .map_err(Self::mem_trap));
                }
                Op::Gep => {
                    let dest = w!(1);
                    let b = rd!(w!(2));
                    let i = rd!(w!(3)).raw;
                    let elem_size = cst!(w!(4));
                    let offset = cst!(w!(5));
                    let is_field = w!(6) != 0;
                    pc += 7;
                    let raw = b
                        .raw
                        .wrapping_add(i.wrapping_mul(elem_size))
                        .wrapping_add(offset);
                    // Derived pointers keep their provenance handle;
                    // field selection narrows to the sub-object, which
                    // is new provenance and interns a record.
                    let meta = match self.meta.get(b.meta) {
                        Some(prov) if is_field => {
                            self.intern_prov(Entry::data(raw, raw, raw + elem_size, prov.id))
                        }
                        _ => b.meta,
                    };
                    wr!(dest, V { raw, meta });
                }
                Op::GlobalAddr => {
                    let dest = w!(1);
                    let gid = w!(2) as usize;
                    pc += 3;
                    let raw = self.global_addrs[gid];
                    let meta = self.global_meta[gid];
                    wr!(dest, V { raw, meta });
                }
                Op::FuncAddr => {
                    let dest = w!(1);
                    let fid = w!(2) as usize;
                    pc += 3;
                    let raw = self.func_addrs[fid];
                    let meta = self.func_meta[fid];
                    wr!(dest, V { raw, meta });
                }
                Op::Bin => {
                    let dest = w!(1);
                    let op = levee_bc::decode_binop(w!(2));
                    let a = rd!(w!(3));
                    let b = rd!(w!(4));
                    pc += 5;
                    // Uncharged operators run inline; multiply/divide
                    // carry cycle charges (and div traps), so they go
                    // through the shared helper.
                    let raw = match op {
                        BinOp::Add => a.raw.wrapping_add(b.raw),
                        BinOp::Sub => a.raw.wrapping_sub(b.raw),
                        BinOp::And => a.raw & b.raw,
                        BinOp::Or => a.raw | b.raw,
                        BinOp::Xor => a.raw ^ b.raw,
                        BinOp::Shl => a.raw.wrapping_shl(b.raw as u32),
                        BinOp::Shr => a.raw.wrapping_shr(b.raw as u32),
                        BinOp::Mul | BinOp::Div | BinOp::Rem => {
                            bail!(self.eval_bin(op, a.raw, b.raw))
                        }
                    };
                    let meta = bin_meta(op, a.meta, b.meta);
                    wr!(dest, V { raw, meta });
                }
                Op::Cmp => {
                    let dest = w!(1);
                    let op = levee_bc::decode_cmpop(w!(2));
                    let a = rd!(w!(3)).raw as i64;
                    let b = rd!(w!(4)).raw as i64;
                    pc += 5;
                    let r = match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        CmpOp::Lt => a < b,
                        CmpOp::Le => a <= b,
                        CmpOp::Gt => a > b,
                        CmpOp::Ge => a >= b,
                    };
                    wr!(dest, V::int(r as u64));
                }
                Op::Cast => {
                    let dest = w!(1);
                    let kind = levee_bc::decode_cast(w!(2));
                    let v = rd!(w!(3));
                    let size = w!(4) as u64;
                    pc += 5;
                    let out = match kind {
                        CastKind::PtrToPtr | CastKind::PtrToInt | CastKind::IntToPtr => v,
                        CastKind::IntToInt => V::int(truncate(v.raw, size)),
                    };
                    wr!(dest, out);
                }
                Op::Call => {
                    let dest = w!(1);
                    let func = FuncId(w!(2));
                    let site = w!(3) as u64;
                    let nargs = w!(4) as usize;
                    // Descriptor-driven bulk frame push: the callee's
                    // register file is filled straight from the caller's
                    // operand words — no intermediate argument vector.
                    let desc = self.frame_descs[func.0 as usize];
                    debug_assert_eq!(nargs, desc.n_params as usize);
                    let mut nregs = self.take_vec();
                    nregs.extend((0..nargs).map(|i| rd!(w!(5 + i))));
                    nregs.resize(desc.n_regs as usize, V::int(0));
                    pc += 5 + nargs;
                    sync_frame!();
                    let ret_addr = self.func_addrs[fidx] + 16 * (site + 1);
                    let dest = (dest != 0).then(|| ValueId(dest - 1));
                    bail!(self.push_frame(func, desc, nregs, dest, ret_addr));
                    reload!();
                }
                Op::CallIndirect => {
                    let dest = w!(1);
                    let cv = rd!(w!(2));
                    let sig_entry = &bc.sigs[w!(3) as usize];
                    let site = w!(4) as u64;
                    let nargs = w!(5) as usize;
                    // Resolve (CFI check, goal semantics, arity) first;
                    // once the callee is known its descriptor drives the
                    // same direct register-file fill as a direct call.
                    let func =
                        bail!(self.resolve_indirect(cv.raw, &sig_entry.sig, sig_entry.cfi, nargs));
                    let desc = self.frame_descs[func.0 as usize];
                    let mut nregs = self.take_vec();
                    nregs.extend((0..nargs).map(|i| rd!(w!(6 + i))));
                    nregs.resize(desc.n_regs as usize, V::int(0));
                    pc += 6 + nargs;
                    sync_frame!();
                    let ret_addr = self.func_addrs[fidx] + 16 * (site + 1);
                    let dest = (dest != 0).then(|| ValueId(dest - 1));
                    bail!(self.push_frame(func, desc, nregs, dest, ret_addr));
                    reload!();
                }
                Op::IntrinsicCall => {
                    let dest = w!(1);
                    let which = levee_bc::decode_intrinsic(w!(2));
                    let nargs = w!(3) as usize;
                    let mut argv = self.take_vec();
                    argv.extend((0..nargs).map(|i| rd!(w!(4 + i))));
                    pc += 4 + nargs;
                    // Sync the resume point: setjmp captures it, longjmp
                    // rewrites it, and the intrinsic may write dest.
                    sync_frame!();
                    let dest = (dest != 0).then(|| ValueId(dest - 1));
                    bail!(self.exec_intrinsic(which, argv, dest));
                    reload!();
                }
                Op::PtrStore => {
                    let policy = levee_bc::decode_policy(w!(1));
                    let addr = rd!(w!(2)).raw;
                    let v = rd!(w!(3));
                    let universal = w!(4) != 0;
                    pc += 5;
                    self.stats.cpi_mem_ops += 1;
                    bail!(self.ptr_store(policy, addr, v, universal));
                }
                Op::PtrLoad => {
                    let policy = levee_bc::decode_policy(w!(1));
                    let dest = w!(2);
                    let addr = rd!(w!(3)).raw;
                    let universal = w!(4) != 0;
                    pc += 5;
                    self.stats.cpi_mem_ops += 1;
                    let v = bail!(self.ptr_load(policy, addr, universal));
                    wr!(dest, v);
                }
                Op::Check => {
                    let policy = levee_bc::decode_policy(w!(1));
                    let v = rd!(w!(2));
                    let size = cst!(w!(3));
                    let site_pc = pc as u32;
                    pc += 4;
                    flush!();
                    self.probe_check_attempt_bc(fidx as u32, site_pc);
                    self.charge_check();
                    bail!(self.cpi_check(v, size, policy));
                    self.probe_check_pass_bc(fidx as u32, site_pc);
                }
                Op::FnCheck => {
                    let policy = levee_bc::decode_policy(w!(1));
                    let v = rd!(w!(2));
                    let site_pc = pc as u32;
                    pc += 3;
                    flush!();
                    self.probe_check_attempt_bc(fidx as u32, site_pc);
                    self.charge_check();
                    match self.meta.get(v.meta) {
                        Some(prov) if prov.authorizes_code(v.raw) => {
                            self.probe_check_pass_bc(fidx as u32, site_pc);
                        }
                        _ => {
                            return ExitStatus::Trapped(self.violation(
                                policy,
                                crate::trap::CpiViolationKind::NotACodePointer,
                                v.raw,
                            ))
                        }
                    }
                }
                Op::SafeMemcpy => {
                    let d = rd!(w!(2)).raw;
                    let s = rd!(w!(3)).raw;
                    let n = rd!(w!(4)).raw;
                    let moving = w!(5) != 0;
                    pc += 6;
                    bail!(self.bulk_copy(d, s, n, moving));
                    let (copied, t) = self.store.copy_range(d, s, n);
                    self.charge_store_touches(t, TouchKind::Write);
                    self.stats.cycles += (n / 8) * self.config.cost.store_op + copied;
                }
                Op::SafeMemset => {
                    let d = rd!(w!(2)).raw;
                    let b = rd!(w!(3)).raw as u8;
                    let n = rd!(w!(4)).raw;
                    pc += 5;
                    bail!(self.bulk_fill(d, b, n));
                    let t = self.store.clear_range(d, n);
                    self.charge_store_touches(t, TouchKind::Write);
                    self.stats.cycles += (n / 8) * self.config.cost.store_op;
                }
                Op::PacSign => {
                    let dest = w!(1);
                    let v = rd!(w!(2));
                    let c = rd!(w!(3)).raw;
                    pc += 4;
                    // Same charge/count order as `charge_pac_sign` in
                    // the walker's `exec_cpi` arm; the cycle lands in
                    // the local accumulator like every inline charge.
                    self.stats.pac_signs += 1;
                    cycles_l += cost_pac_sign;
                    let sealed = self.pac_seal(v.raw, c);
                    wr!(
                        dest,
                        V {
                            raw: sealed,
                            meta: v.meta
                        }
                    );
                }
                Op::PacAuth => {
                    let dest = w!(1);
                    let v = rd!(w!(2));
                    let c = rd!(w!(3)).raw;
                    pc += 4;
                    self.stats.pac_auths += 1;
                    cycles_l += cost_pac_auth;
                    let raw = bail!(self.pac_auth_val(v.raw, c));
                    wr!(dest, V { raw, meta: v.meta });
                }
                Op::Jump => {
                    pc = w!(1) as usize;
                }
                Op::Branch => {
                    let c = rd!(w!(1)).raw;
                    pc = if c != 0 { w!(2) } else { w!(3) } as usize;
                }
                Op::Ret => {
                    let value = (w!(1) != 0).then(|| rd!(w!(2)));
                    flush!();
                    // The returning frame is popped by do_return with
                    // an empty (taken) register file; recycle the real
                    // buffer so the pool keeps serving future calls.
                    // The caller's file is intact inside its frame and
                    // re-taken below.
                    let spent = std::mem::take(&mut regs);
                    self.recycle_vec(spent);
                    match self.do_return(value) {
                        Ok(Some(exit)) => return exit,
                        Ok(None) => reload!(),
                        Err(Trap::ProgramExit(c)) => return ExitStatus::Exited(c),
                        Err(trap) => return ExitStatus::Trapped(trap),
                    }
                }
                Op::Unreachable => {
                    flush!();
                    return ExitStatus::Trapped(Trap::Unreachable);
                }
                // ---- superinstructions (emitted by `levee_bc::fuse`) ----
                //
                // Each arm is its two constituent arms spliced together:
                // same register writes, same helper calls, same charge
                // order, with `fuel_step!()` between them standing in
                // for the second constituent's dispatch. Only the fetch/
                // decode overhead of the second instruction disappears.
                Op::CmpBr => {
                    let dest = w!(1);
                    let op = levee_bc::decode_cmpop(w!(2));
                    let a = rd!(w!(3)).raw as i64;
                    let b = rd!(w!(4)).raw as i64;
                    let r = match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        CmpOp::Lt => a < b,
                        CmpOp::Le => a <= b,
                        CmpOp::Gt => a > b,
                        CmpOp::Ge => a >= b,
                    };
                    wr!(dest, V::int(r as u64));
                    fuel_step!();
                    pc = if r { w!(5) } else { w!(6) } as usize;
                }
                Op::GepLoad => {
                    let gdest = w!(1);
                    let b = rd!(w!(2));
                    let i = rd!(w!(3)).raw;
                    let elem_size = cst!(w!(4));
                    let offset = cst!(w!(5));
                    let is_field = w!(6) != 0;
                    let ldest = w!(7);
                    let size = w!(8) as u64;
                    let space = levee_bc::decode_space(w!(9));
                    pc += 10;
                    let addr = b
                        .raw
                        .wrapping_add(i.wrapping_mul(elem_size))
                        .wrapping_add(offset);
                    let meta = match self.meta.get(b.meta) {
                        Some(prov) if is_field => {
                            self.intern_prov(Entry::data(addr, addr, addr + elem_size, prov.id))
                        }
                        _ => b.meta,
                    };
                    wr!(gdest, V { raw: addr, meta });
                    fuel_step!();
                    mem_ops_l += 1;
                    bail!(self.isolation_check(addr, space));
                    charge_mem_local!(
                        addr,
                        space == MemSpace::Regular,
                        TouchKind::Read,
                        size as u8
                    );
                    let raw = bail!(self.mem.read_uint(addr, size).map_err(Self::mem_trap));
                    let meta = if space == MemSpace::SafeStack {
                        match self.safe_stack_meta.get(&addr) {
                            Some(&(spilled, m)) if spilled == raw => m,
                            _ => MetaId::NONE,
                        }
                    } else {
                        MetaId::NONE
                    };
                    wr!(ldest, V { raw, meta });
                }
                Op::GepStore => {
                    let gdest = w!(1);
                    let b = rd!(w!(2));
                    let i = rd!(w!(3)).raw;
                    let elem_size = cst!(w!(4));
                    let offset = cst!(w!(5));
                    let is_field = w!(6) != 0;
                    let addr = b
                        .raw
                        .wrapping_add(i.wrapping_mul(elem_size))
                        .wrapping_add(offset);
                    let meta = match self.meta.get(b.meta) {
                        Some(prov) if is_field => {
                            self.intern_prov(Entry::data(addr, addr, addr + elem_size, prov.id))
                        }
                        _ => b.meta,
                    };
                    wr!(gdest, V { raw: addr, meta });
                    fuel_step!();
                    // Value read after the gep dest write, exactly like
                    // the unfused store (the value may *be* that register).
                    let v = rd!(w!(7));
                    let size = w!(8) as u64;
                    let space = levee_bc::decode_space(w!(9));
                    pc += 10;
                    mem_ops_l += 1;
                    if space == MemSpace::SafeStack {
                        if v.meta.is_some() {
                            self.safe_stack_meta.insert(addr, (v.raw, v.meta));
                        } else {
                            self.safe_stack_meta.remove(&addr);
                        }
                    }
                    bail!(self.isolation_check(addr, space));
                    charge_mem_local!(
                        addr,
                        space == MemSpace::Regular,
                        TouchKind::Write,
                        size as u8
                    );
                    bail!(self
                        .mem
                        .write_uint(addr, v.raw, size)
                        .map_err(Self::mem_trap));
                }
                Op::CheckLoad => {
                    let policy = levee_bc::decode_policy(w!(1));
                    let pv = rd!(w!(2));
                    let size = cst!(w!(3));
                    let ldest = w!(4);
                    let lsize = w!(5) as u64;
                    let space = levee_bc::decode_space(w!(6));
                    let site_pc = pc as u32;
                    pc += 7;
                    flush!();
                    self.probe_check_attempt_bc(fidx as u32, site_pc);
                    self.charge_check();
                    bail!(self.cpi_check(pv, size, policy));
                    self.probe_check_pass_bc(fidx as u32, site_pc);
                    fuel_step!();
                    let addr = pv.raw;
                    mem_ops_l += 1;
                    bail!(self.isolation_check(addr, space));
                    charge_mem_local!(
                        addr,
                        space == MemSpace::Regular,
                        TouchKind::Read,
                        lsize as u8
                    );
                    let raw = bail!(self.mem.read_uint(addr, lsize).map_err(Self::mem_trap));
                    let meta = if space == MemSpace::SafeStack {
                        match self.safe_stack_meta.get(&addr) {
                            Some(&(spilled, m)) if spilled == raw => m,
                            _ => MetaId::NONE,
                        }
                    } else {
                        MetaId::NONE
                    };
                    wr!(ldest, V { raw, meta });
                }
                Op::CheckPtrLoad => {
                    let policy = levee_bc::decode_policy(w!(1));
                    let pv = rd!(w!(2));
                    let size = cst!(w!(3));
                    let dest = w!(4);
                    let universal = w!(5) != 0;
                    let site_pc = pc as u32;
                    pc += 6;
                    flush!();
                    self.probe_check_attempt_bc(fidx as u32, site_pc);
                    self.charge_check();
                    bail!(self.cpi_check(pv, size, policy));
                    self.probe_check_pass_bc(fidx as u32, site_pc);
                    fuel_step!();
                    self.stats.cpi_mem_ops += 1;
                    let v = bail!(self.ptr_load(policy, pv.raw, universal));
                    wr!(dest, v);
                }
                Op::CheckedCall => {
                    let policy = levee_bc::decode_policy(w!(1));
                    let dest = w!(2);
                    let cv = rd!(w!(3));
                    let sig_entry = &bc.sigs[w!(4) as usize];
                    let site = w!(5) as u64;
                    let nargs = w!(6) as usize;
                    let site_pc = pc as u32;
                    flush!();
                    self.probe_check_attempt_bc(fidx as u32, site_pc);
                    self.charge_check();
                    match self.meta.get(cv.meta) {
                        Some(prov) if prov.authorizes_code(cv.raw) => {
                            self.probe_check_pass_bc(fidx as u32, site_pc);
                        }
                        _ => {
                            return ExitStatus::Trapped(self.violation(
                                policy,
                                crate::trap::CpiViolationKind::NotACodePointer,
                                cv.raw,
                            ))
                        }
                    }
                    fuel_step!();
                    let func =
                        bail!(self.resolve_indirect(cv.raw, &sig_entry.sig, sig_entry.cfi, nargs));
                    let desc = self.frame_descs[func.0 as usize];
                    let mut nregs = self.take_vec();
                    nregs.extend((0..nargs).map(|i| rd!(w!(7 + i))));
                    nregs.resize(desc.n_regs as usize, V::int(0));
                    pc += 7 + nargs;
                    sync_frame!();
                    let ret_addr = self.func_addrs[fidx] + 16 * (site + 1);
                    let dest = (dest != 0).then(|| ValueId(dest - 1));
                    bail!(self.push_frame(func, desc, nregs, dest, ret_addr));
                    reload!();
                }
                Op::AuthCall => {
                    // PacAuth constituent: authenticate the sealed
                    // callee and land the raw pointer in the auth dest
                    // register (the call's callee operand, per the
                    // fusion condition) — the software analogue of
                    // ARMv8.3's `blraa`.
                    let adest = w!(1);
                    let av = rd!(w!(2));
                    let actx = rd!(w!(3)).raw;
                    self.stats.pac_auths += 1;
                    cycles_l += cost_pac_auth;
                    let raw = bail!(self.pac_auth_val(av.raw, actx));
                    let cv = V { raw, meta: av.meta };
                    wr!(adest, cv);
                    fuel_step!();
                    // CallIndirect constituent, reading the callee it
                    // just authenticated.
                    let dest = w!(4);
                    let sig_entry = &bc.sigs[w!(5) as usize];
                    let site = w!(6) as u64;
                    let nargs = w!(7) as usize;
                    let func =
                        bail!(self.resolve_indirect(cv.raw, &sig_entry.sig, sig_entry.cfi, nargs));
                    let desc = self.frame_descs[func.0 as usize];
                    let mut nregs = self.take_vec();
                    nregs.extend((0..nargs).map(|i| rd!(w!(8 + i))));
                    nregs.resize(desc.n_regs as usize, V::int(0));
                    pc += 8 + nargs;
                    sync_frame!();
                    let ret_addr = self.func_addrs[fidx] + 16 * (site + 1);
                    let dest = (dest != 0).then(|| ValueId(dest - 1));
                    bail!(self.push_frame(func, desc, nregs, dest, ret_addr));
                    reload!();
                }
            }
        }
    }
}
