//! Control flow: calls, returns, indirect-transfer resolution, and the
//! setjmp/longjmp machinery.
//!
//! This is where attacks succeed or die. Every indirect transfer (return,
//! indirect call, longjmp) resolves its raw target address through
//! [`Machine::resolve_transfer`], which applies — in order — the NX
//! policy, the attack-goal check, and finally legitimacy.

use levee_bc::FrameDesc;
use levee_ir::prelude::*;

use crate::config::Isolation;
use crate::layout;
use crate::probe::TouchKind;
use crate::trap::{ExitStatus, Trap};

use super::{Frame, Machine, SetjmpCtx, MAIN_RET_SENTINEL, V};

/// What a resolved indirect transfer may legitimately be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TransferKind {
    /// An indirect call (target should be a function entry).
    Call,
    /// A return (target should be the pushed return site).
    Ret { expected: u64 },
    /// A longjmp (target should be a live setjmp token).
    Longjmp,
}

impl<'m> Machine<'m> {
    /// Pushes a frame for `func` from an argument vector: builds the
    /// register file per the frame descriptor's move plan, then
    /// delegates to [`Machine::push_frame`]. (The engines' hot call
    /// paths fill the register file directly and skip this wrapper.)
    pub(crate) fn enter_function(
        &mut self,
        func: FuncId,
        args: Vec<V>,
        caller_dest: Option<ValueId>,
        ret_addr: u64,
    ) -> Result<(), Trap> {
        let desc = self.frame_descs[func.0 as usize];
        assert_eq!(
            args.len(),
            desc.n_params as usize,
            "verifier guarantees call arity"
        );
        let mut regs = self.take_vec();
        regs.extend_from_slice(&args);
        regs.resize(desc.n_regs as usize, V::int(0));
        self.recycle_vec(args);
        self.push_frame(func, desc, regs, caller_dest, ret_addr)
    }

    /// The descriptor-driven frame push shared by both engines: charges
    /// the call, runs the prologue the descriptor prescribes (return
    /// slot, cookie, shadow stack, unsafe-frame setup) and pushes the
    /// activation record. `regs` must already be the callee's complete
    /// register file (`desc.n_regs` entries, arguments in the leading
    /// slots).
    pub(crate) fn push_frame(
        &mut self,
        func: FuncId,
        desc: FrameDesc,
        regs: Vec<V>,
        caller_dest: Option<ValueId>,
        ret_addr: u64,
    ) -> Result<(), Trap> {
        debug_assert_eq!(regs.len(), desc.n_regs as usize);
        self.stats.calls += 1;
        self.stats.cycles += self.config.cost.call;
        if self.frames.len() > 4096 {
            return Err(Trap::StackOverflow);
        }

        let saved_sp = self.sp;
        let saved_unsafe_sp = self.unsafe_sp;
        let saved_safe_sp = self.safe_sp;

        // Push the return address. With the safe stack it lives in the
        // safe region; otherwise on the conventional stack in regular
        // memory, where overflows can reach it.
        let ret_slot = if desc.safestack {
            self.safe_sp -= 8;
            let slot = self.safe_sp;
            self.charge_mem(slot, false, TouchKind::Write, 8);
            self.mem
                .write_uint(slot, ret_addr, 8)
                .map_err(|_| Trap::StackOverflow)?;
            slot
        } else {
            self.sp -= 8;
            let slot = self.sp;
            self.check_stack_space()?;
            // Under PAC the prologue signs the return address before
            // spilling it (the `paciasp` idiom): the attackable stack
            // slot holds the sealed word, never the raw pointer. The
            // safe-stack branch above stays raw — its slot is already
            // unreachable by regular writes.
            let word = if self.pac_active() {
                self.charge_pac_sign();
                self.pac_seal(ret_addr, self.pac_ctx(slot))
            } else {
                ret_addr
            };
            self.charge_mem(slot, true, TouchKind::Write, 8);
            self.mem
                .write_uint(slot, word, 8)
                .map_err(|_| Trap::StackOverflow)?;
            slot
        };

        // Stack cookie sits between the return address and the locals.
        let cookie_slot = if desc.cookie {
            self.sp -= 8;
            let slot = self.sp;
            self.charge_mem(slot, true, TouchKind::Write, 8);
            self.mem
                .write_uint(slot, self.cookie, 8)
                .map_err(|_| Trap::StackOverflow)?;
            slot
        } else {
            0
        };

        if desc.shadow_stack {
            self.shadow_stack.push(ret_addr);
            self.stats.cycles += self.config.cost.mem_hit; // shadow push
        }

        // Functions that need an unsafe stack frame pay its setup cost.
        if desc.unsafe_frame {
            self.stats.cycles += self.config.cost.unsafe_frame;
            self.stats.unsafe_frames += 1;
        }

        self.frames.push(Frame {
            func,
            block: BlockId(0),
            ip: 0,
            regs,
            desc,
            ret_slot,
            expected_ret: ret_addr,
            cookie_slot,
            saved_sp,
            saved_unsafe_sp,
            saved_safe_sp,
            caller_dest,
        });
        // Profiler seam: the frame is live and all call-setup charges
        // have landed, so setup cost attributes to the caller.
        self.probe_enter(func.0);
        Ok(())
    }

    /// Executes a return: epilogue checks, then transfer resolution.
    /// The epilogue is driven entirely by the frame's descriptor — no
    /// IR lookups on the return path.
    pub(crate) fn do_return(&mut self, value: Option<V>) -> Result<Option<ExitStatus>, Trap> {
        self.stats.cycles += self.config.cost.ret;
        let frame = self.frames.last().expect("frame");
        let (desc, cookie_slot, slot, expected) = (
            frame.desc,
            frame.cookie_slot,
            frame.ret_slot,
            frame.expected_ret,
        );

        // 1. Cookie check (epilogue), on the conventional stack only.
        if cookie_slot != 0 {
            self.charge_check();
            self.charge_mem(cookie_slot, true, TouchKind::Read, 8);
            let got = self
                .mem
                .read_uint(cookie_slot, 8)
                .map_err(|_| Trap::Cookie)?;
            if got != self.cookie {
                return Err(Trap::Cookie);
            }
        }

        // 2. Load the return address from its memory slot. This is the
        // value an overflow may have corrupted (unless on safe stack).
        self.charge_mem(slot, !desc.safestack, TouchKind::Read, 8);
        let loaded = self
            .mem
            .read_uint(slot, 8)
            .map_err(|_| Trap::Unmapped { addr: slot })?;

        // 2½. PAC epilogue (`autiasp`): authenticate the reloaded word
        // before any use. A raw overwrite (classic hijack) or a sealed
        // word replayed from another slot under `-fpac-tight` fails
        // here with `Trap::Pac`.
        let loaded = if self.pac_active() && !desc.safestack {
            self.charge_pac_auth();
            self.pac_auth_val(loaded, self.pac_ctx(slot))?
        } else {
            loaded
        };

        // 3. Shadow-stack comparison.
        if desc.shadow_stack {
            self.charge_check();
            let top = self.shadow_stack.pop().unwrap_or(0);
            if top != loaded {
                return Err(Trap::ShadowStack {
                    expected: top,
                    got: loaded,
                });
            }
        }

        // 4. Coarse CFI return policy: target must be *some* return site.
        if desc.ret_cfi {
            self.charge_check();
            if loaded != MAIN_RET_SENTINEL && !self.ret_sites.contains_key(&loaded) {
                return Err(Trap::Cfi { addr: loaded });
            }
        }

        // 5. Resolve the transfer.
        if loaded == MAIN_RET_SENTINEL && expected == MAIN_RET_SENTINEL {
            // Clean exit from main.
            let code = value.map(|v| v.raw as i64).unwrap_or(0);
            self.pop_frame();
            return Ok(Some(ExitStatus::Exited(code)));
        }
        match self.resolve_transfer(loaded, TransferKind::Ret { expected })? {
            ResolvedTarget::ReturnTo => {
                let caller_dest = self.frame().caller_dest;
                self.pop_frame();
                if let (Some(dest), Some(v)) = (caller_dest, value) {
                    self.set_reg(dest, v);
                }
                Ok(None)
            }
            ResolvedTarget::Function(_) => unreachable!("rets never resolve to calls"),
        }
    }

    fn pop_frame(&mut self) {
        // Profiler seam: all return-sequence charges (cookie check,
        // return-slot load, CFI) have landed, so they attribute to the
        // exiting callee. Covers returns, longjmp unwinds and the clean
        // exit from `main` alike.
        self.probe_exit();
        let frame = self.frames.pop().expect("frame");
        self.recycle_vec(frame.regs);
        self.sp = frame.saved_sp;
        self.unsafe_sp = frame.saved_unsafe_sp;
        self.safe_sp = frame.saved_safe_sp;
        // Invalidate setjmp contexts belonging to the popped frame.
        if !self.setjmp_ctxs.is_empty() {
            let depth = self.frames.len();
            self.setjmp_ctxs.retain(|_, ctx| ctx.frame_depth <= depth);
        }
    }

    /// Returns a spent value vector (argument list, register file) to
    /// the pool for reuse by the next call.
    #[inline]
    pub(crate) fn recycle_vec(&mut self, mut v: Vec<V>) {
        if v.capacity() > 0 && self.reg_pool.len() < 64 {
            v.clear();
            self.reg_pool.push(v);
        }
    }

    /// Takes an empty value vector from the pool (or a fresh one) for
    /// building an argument list.
    #[inline]
    pub(crate) fn take_vec(&mut self) -> Vec<V> {
        self.reg_pool.pop().unwrap_or_default()
    }

    /// Resolves an indirect control transfer to `addr`.
    ///
    /// Order matters and mirrors real hardware + deployed defenses:
    /// 1. If the target is not executable (writable data) and NX is on →
    ///    [`Trap::Nx`]. With NX off, injected shellcode *runs* if it is
    ///    an attack goal.
    /// 2. If the target is a registered attack goal → the attacker wins:
    ///    [`Trap::Hijacked`].
    /// 3. Otherwise the target must be legitimate for the transfer kind,
    ///    or the program crashes.
    pub(crate) fn resolve_transfer(
        &mut self,
        addr: u64,
        kind: TransferKind,
    ) -> Result<ResolvedTarget, Trap> {
        let executable = self.layout.in_code(addr);
        if !executable {
            if self.config.nx {
                return Err(Trap::Nx { addr });
            }
            if let Some(goal) = self.goals.get(&addr) {
                return Err(Trap::Hijacked { goal: *goal, addr });
            }
            return Err(Trap::BadControl { addr });
        }
        if let Some(goal) = self.goals.get(&addr) {
            return Err(Trap::Hijacked { goal: *goal, addr });
        }
        match kind {
            TransferKind::Call => match self.entry_to_func.get(&addr) {
                Some(f) => Ok(ResolvedTarget::Function(*f)),
                None => Err(Trap::BadControl { addr }),
            },
            TransferKind::Ret { expected } => {
                if addr == expected {
                    Ok(ResolvedTarget::ReturnTo)
                } else {
                    // Divergent return to a non-goal address: the ROP
                    // chain fizzles — a crash, not a compromise.
                    Err(Trap::BadControl { addr })
                }
            }
            TransferKind::Longjmp => Err(Trap::BadControl { addr }),
        }
    }

    /// Resolves an indirect call target, including CFI and goal
    /// semantics, down to a callee the caller can push a frame for.
    /// Argument evaluation stays with the caller so the register file
    /// can be filled directly once the callee (and its frame
    /// descriptor) is known.
    pub(crate) fn resolve_indirect(
        &mut self,
        target: u64,
        sig: &FnSig,
        cfi: Option<CfiPolicy>,
        nargs: usize,
    ) -> Result<FuncId, Trap> {
        // CFI check first (it is inline in the code, before the call).
        if let Some(policy) = cfi {
            self.charge_check();
            if !self.cfi_allows(policy, target, sig) {
                return Err(Trap::Cfi { addr: target });
            }
        }
        match self.resolve_transfer(target, TransferKind::Call)? {
            ResolvedTarget::Function(f) => {
                // Signature mismatch at runtime is a crash in practice
                // (wrong arity smashes the register file); we surface it
                // as BadControl unless arities happen to agree.
                if self.frame_descs[f.0 as usize].n_params as usize != nargs {
                    return Err(Trap::BadControl { addr: target });
                }
                Ok(f)
            }
            ResolvedTarget::ReturnTo => unreachable!("calls never resolve to returns"),
        }
    }

    /// Does `policy` admit `target` for an indirect call of signature
    /// `sig`? (The static valid-target sets of §6's CFI row.)
    pub(crate) fn cfi_allows(&self, policy: CfiPolicy, target: u64, sig: &FnSig) -> bool {
        let Some(fid) = self.entry_to_func.get(&target) else {
            return false;
        };
        let f = self.module.func(*fid);
        match policy {
            CfiPolicy::AnyFunction => true,
            CfiPolicy::AddressTaken => f.address_taken,
            CfiPolicy::TypeSignature => {
                f.address_taken && self.sig_hashes[fid.0 as usize] == sig.type_hash()
            }
        }
    }

    // ---- setjmp / longjmp --------------------------------------------------

    /// `setjmp(buf)`: saves a context and writes the jmp_buf image.
    ///
    /// The buffer's first word is a code pointer (the setjmp token);
    /// under CPI/CPS instrumentation the runtime stores it through the
    /// safe pointer store (§4: jmp_buf is sensitive), otherwise it sits
    /// in regular memory where attacks can overwrite it.
    pub(crate) fn do_setjmp(&mut self, buf: V, dest: Option<ValueId>) -> Result<(), Trap> {
        let frame = self.frames.last().expect("frame");
        let token = {
            // A unique token per dynamic setjmp: a code-segment address
            // derived from the site, outside function entries.
            let base = self.func_addrs[frame.func.0 as usize];
            base + 0x800 + (self.setjmp_ctxs.len() as u64 % 64) * 8
        };
        let ctx = SetjmpCtx {
            frame_depth: self.frames.len(),
            block: frame.block,
            ip: frame.ip, // ip already advanced past the setjmp call
            dest,
            saved_sp: self.sp,
            saved_unsafe_sp: self.unsafe_sp,
            saved_safe_sp: self.safe_sp,
        };
        self.setjmp_ctxs.insert(token, ctx);
        // jmp_buf image: [token][sp][unsafe_sp] — 24 bytes.
        if self.config.protect_runtime_code_ptrs {
            // The slot carries the interned code provenance of the
            // token, like any other sensitive pointer.
            let meta = self.meta.intern(levee_rt::Entry::code(token));
            let t = self.store.set(buf.raw, levee_rt::Slot::new(token, meta));
            self.charge_store_touches(t, TouchKind::Write);
        } else {
            // Under PAC the jmp_buf's code pointer is sealed in place,
            // bound to the buffer slot under `-fpac-tight` — jmp_buf
            // smashing then fails authentication in `do_longjmp`.
            let word = if self.pac_active() {
                self.charge_pac_sign();
                self.pac_seal(token, self.pac_ctx(buf.raw))
            } else {
                token
            };
            self.prog_write(buf.raw, word, 8, MemSpace::Regular)?;
        }
        self.prog_write(buf.raw + 8, self.sp, 8, MemSpace::Regular)?;
        self.prog_write(buf.raw + 16, self.unsafe_sp, 8, MemSpace::Regular)?;
        if let Some(d) = dest {
            self.set_reg(d, V::int(0));
        }
        Ok(())
    }

    /// `longjmp(buf, val)`: restores a saved context.
    pub(crate) fn do_longjmp(&mut self, buf: V, val: V) -> Result<(), Trap> {
        let token = if self.config.protect_runtime_code_ptrs {
            let (slot, t) = self.store.get(buf.raw);
            self.charge_store_touches(t, TouchKind::Read);
            // The loaded slot must still carry live code provenance for
            // its word (the §3.3 exact-match rule, off the handle).
            let code = slot.and_then(|s| {
                self.meta
                    .get(s.meta)
                    .is_some_and(|p| p.authorizes_code(s.word))
                    .then_some(s.word)
            });
            match code {
                Some(token) => token,
                // No (or corrupted) safe-store slot: deterministic abort.
                None => {
                    return Err(Trap::Cpi {
                        kind: crate::trap::CpiViolationKind::NotACodePointer,
                        addr: buf.raw,
                    })
                }
            }
        } else {
            let word = self.prog_read(buf.raw, 8, MemSpace::Regular)?;
            if self.pac_active() {
                self.charge_pac_auth();
                self.pac_auth_val(word, self.pac_ctx(buf.raw))?
            } else {
                word
            }
        };
        let ctx = match self.setjmp_ctxs.get(&token) {
            Some(c) => *c,
            None => {
                // The token is attacker-controlled data here: resolve it
                // like any hijacked transfer.
                return match self.resolve_transfer(token, TransferKind::Longjmp) {
                    Ok(_) => unreachable!("longjmp targets never resolve"),
                    Err(t) => Err(t),
                };
            }
        };
        if ctx.frame_depth > self.frames.len() {
            return Err(Trap::BadControl { addr: token });
        }
        // Unwind.
        while self.frames.len() > ctx.frame_depth {
            self.pop_frame();
        }
        self.sp = ctx.saved_sp;
        self.unsafe_sp = ctx.saved_unsafe_sp;
        self.safe_sp = ctx.saved_safe_sp;
        let frame = self.frames.last_mut().expect("setjmp frame");
        frame.block = ctx.block;
        frame.ip = ctx.ip;
        if let Some(d) = ctx.dest {
            let v = if val.raw == 0 { 1 } else { val.raw };
            self.set_reg(d, V::int(v));
        }
        Ok(())
    }

    fn check_stack_space(&self) -> Result<(), Trap> {
        if self.sp < self.layout.stack_top - layout::STACK_LIMIT + 4096 {
            return Err(Trap::StackOverflow);
        }
        if self.unsafe_sp < self.layout.unsafe_stack_top - layout::UNSAFE_STACK_LIMIT + 4096 {
            return Err(Trap::StackOverflow);
        }
        Ok(())
    }

    /// Allocates stack storage for an alloca per its stack kind.
    pub(crate) fn do_alloca(&mut self, size: u64, stack: StackKind) -> Result<u64, Trap> {
        let aligned = crate::ctx_align(size.max(1), 8);
        let addr = match stack {
            StackKind::Conventional => {
                self.sp -= aligned;
                self.check_stack_space()?;
                self.sp
            }
            StackKind::Safe => {
                self.safe_sp -= aligned;
                self.safe_sp
            }
            StackKind::Unsafe => {
                self.unsafe_sp -= aligned;
                self.check_stack_space()?;
                self.unsafe_sp
            }
        };
        Ok(addr)
    }

    /// Is an address on one of the attacker-reachable stacks? (Exposed
    /// for attack harnesses that classify corruption targets.)
    pub fn on_regular_stacks(&self, addr: u64) -> bool {
        let reg = (self.layout.stack_top - layout::STACK_LIMIT)..self.layout.stack_top;
        let uns = (self.layout.unsafe_stack_top - layout::UNSAFE_STACK_LIMIT)
            ..self.layout.unsafe_stack_top;
        reg.contains(&addr) || uns.contains(&addr)
    }

    /// Would the active isolation mechanism block a regular access to
    /// `addr`? (Exposed for isolation experiments.)
    pub fn isolation_blocks(&self, addr: u64) -> bool {
        self.layout.in_safe_region(addr) && self.config.isolation != Isolation::None
    }
}

/// Outcome of [`Machine::resolve_transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolvedTarget {
    /// A legitimate function to call.
    Function(FuncId),
    /// A legitimate return to the expected site.
    ReturnTo,
}
