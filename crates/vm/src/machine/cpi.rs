//! Execution of the instrumentation intrinsics (§3.2.2's runtime ops).

use levee_ir::prelude::*;
use levee_rt::Slot;

use crate::probe::TouchKind;
use crate::trap::{CpiViolationKind, Trap};

use super::{Machine, V};

impl<'m> Machine<'m> {
    pub(crate) fn exec_cpi(&mut self, op: &CpiOp) -> Result<(), Trap> {
        match op {
            CpiOp::PtrStore {
                policy,
                ptr,
                value,
                universal,
            } => {
                let addr = self.eval(*ptr).raw;
                let v = self.eval(*value);
                self.stats.cpi_mem_ops += 1;
                self.ptr_store(*policy, addr, v, *universal)
            }
            CpiOp::PtrLoad {
                policy,
                dest,
                ptr,
                universal,
            } => {
                let addr = self.eval(*ptr).raw;
                self.stats.cpi_mem_ops += 1;
                let v = self.ptr_load(*policy, addr, *universal)?;
                self.set_reg(*dest, v);
                Ok(())
            }
            CpiOp::Check { policy, ptr, size } => {
                let v = self.eval(*ptr);
                // Check-site key: ip was already advanced past this
                // instruction, so the site is at ip - 1.
                let site = self.probe.is_some().then(|| self.current_site_key());
                if let Some(key) = site {
                    self.probe_check_attempt_ir(key);
                }
                self.charge_check();
                self.cpi_check(v, *size, *policy)?;
                if let Some(key) = site {
                    self.probe_check_pass_ir(key);
                }
                Ok(())
            }
            CpiOp::FnCheck { policy, callee } => {
                let v = self.eval(*callee);
                let site = self.probe.is_some().then(|| self.current_site_key());
                if let Some(key) = site {
                    self.probe_check_attempt_ir(key);
                }
                self.charge_check();
                match self.meta.get(v.meta) {
                    Some(prov) if prov.authorizes_code(v.raw) => {
                        if let Some(key) = site {
                            self.probe_check_pass_ir(key);
                        }
                        Ok(())
                    }
                    _ => Err(self.violation(*policy, CpiViolationKind::NotACodePointer, v.raw)),
                }
            }
            CpiOp::SafeMemcpy {
                policy: _,
                dst,
                src,
                len,
                moving,
            } => {
                let d = self.eval(*dst).raw;
                let s = self.eval(*src).raw;
                let n = self.eval(*len).raw;
                // Regular bytes move as usual…
                self.bulk_copy(d, s, n, *moving)?;
                // …and the safe store transfers compact slots word by
                // word — plain (word, handle) moves, but still the path
                // §5.2 attributes memcpy overhead to.
                let (copied, t) = self.store.copy_range(d, s, n);
                self.charge_store_touches(t, TouchKind::Write);
                self.stats.cycles += (n / 8) * self.config.cost.store_op + copied;
                Ok(())
            }
            CpiOp::SafeMemset {
                policy: _,
                dst,
                byte,
                len,
            } => {
                let d = self.eval(*dst).raw;
                let b = self.eval(*byte).raw as u8;
                let n = self.eval(*len).raw;
                self.bulk_fill(d, b, n)?;
                let t = self.store.clear_range(d, n);
                self.charge_store_touches(t, TouchKind::Write);
                self.stats.cycles += (n / 8) * self.config.cost.store_op;
                Ok(())
            }
            CpiOp::PacSign { dest, value, ctx } => {
                let v = self.eval(*value);
                let c = self.eval(*ctx).raw;
                self.charge_pac_sign();
                let sealed = self.pac_seal(v.raw, c);
                // The sealed word keeps its provenance handle: sealing
                // changes representation, not what the pointer is based
                // on (and the handle never reaches regular memory).
                self.set_reg(
                    *dest,
                    V {
                        raw: sealed,
                        meta: v.meta,
                    },
                );
                Ok(())
            }
            CpiOp::PacAuth { dest, value, ctx } => {
                let v = self.eval(*value);
                let c = self.eval(*ctx).raw;
                self.charge_pac_auth();
                let raw = self.pac_auth_val(v.raw, c)?;
                self.set_reg(*dest, V { raw, meta: v.meta });
                Ok(())
            }
        }
    }

    /// Maps a violation to the policy's trap flavour.
    pub(crate) fn violation(&self, policy: Policy, kind: CpiViolationKind, addr: u64) -> Trap {
        match policy {
            Policy::SoftBound => Trap::SoftBound { addr },
            _ => Trap::Cpi { kind, addr },
        }
    }

    /// Bounds (+ optional temporal) check of a sensitive dereference.
    /// Bounds and temporal id come straight off the interned provenance
    /// record; the pointer word being checked is `v.raw`.
    pub(crate) fn cpi_check(&mut self, v: V, size: u64, policy: Policy) -> Result<(), Trap> {
        let Some(prov) = self.meta.get(v.meta) else {
            return Err(self.violation(policy, CpiViolationKind::Bounds, v.raw));
        };
        if !prov.allows_access(v.raw, size) {
            return Err(self.violation(policy, CpiViolationKind::Bounds, v.raw));
        }
        if self.config.temporal && prov.id != 0 && self.heap.id_is_dead(prov.id) {
            return Err(self.violation(policy, CpiViolationKind::Temporal, v.raw));
        }
        Ok(())
    }

    /// `cpi_ptr_store` / `cps_ptr_store`: writes a sensitive pointer to
    /// the safe pointer store, keyed by its regular-region address. The
    /// store's compact slot carries the word plus the value's interned
    /// provenance handle ([`Slot`]) — the handle moves as-is; no full
    /// `Entry` is materialized at this boundary.
    pub(crate) fn ptr_store(
        &mut self,
        policy: Policy,
        addr: u64,
        v: V,
        universal: bool,
    ) -> Result<(), Trap> {
        // Resolve the handle once to classify the value; the slot still
        // stores the handle, not the resolved record.
        let prov = self.meta.get(v.meta);
        let slot = match policy {
            // CPS keeps slots only for code pointers; storing a
            // non-code value through a CPS store keeps it regular.
            Policy::Cps => match prov {
                Some(p) if p.authorizes_code(v.raw) => Some(Slot::new(v.raw, v.meta)),
                _ => None,
            },
            _ => match prov {
                Some(p) if p.is_valid() => Some(Slot::new(v.raw, v.meta)),
                // No live provenance: the paper's *invalid* metadata —
                // a word-only slot that never authorizes any access.
                _ if !universal => Some(Slot::invalid(v.raw)),
                _ => None,
            },
        };
        match slot {
            Some(s) => {
                let t = self.store.set(addr, s);
                self.charge_store_touches(t, TouchKind::Write);
                self.probe_store_op(addr, false);
                self.stats.store_entries_peak = self
                    .stats
                    .store_entries_peak
                    .max(self.store.entry_count() as u64);
                if self.config.debug_dual_store {
                    // Debug mode: also keep the regular copy in sync.
                    self.prog_write(addr, v.raw, 8, MemSpace::Regular)?;
                }
                Ok(())
            }
            None => {
                // Universal pointer holding a non-sensitive value (or a
                // CPS store of a non-code value): store the raw value in
                // the regular region, mark the safe store `none` (the
                // paper's dual-storage rule).
                let t = self.store.clear(addr);
                self.charge_store_touches(t, TouchKind::Write);
                self.probe_store_op(addr, false);
                self.prog_write(addr, v.raw, 8, MemSpace::Regular)
            }
        }
    }

    /// `cpi_ptr_load` / `cps_ptr_load`: reads a sensitive pointer and
    /// its metadata back from the safe pointer store. The slot's handle
    /// goes straight into the register value — no re-interning on the
    /// hot path.
    pub(crate) fn ptr_load(
        &mut self,
        policy: Policy,
        addr: u64,
        universal: bool,
    ) -> Result<V, Trap> {
        let (slot, t) = self.store.get(addr);
        self.charge_store_touches(t, TouchKind::Read);
        self.probe_store_op(addr, true);
        match slot {
            Some(s) => {
                if self.config.debug_dual_store {
                    let regular = self.prog_read(addr, 8, MemSpace::Regular)?;
                    self.charge_check();
                    if regular != s.word {
                        // Debug mode detects non-protected-pointer
                        // corruption attempts instead of silently
                        // ignoring them (§3.2.2).
                        return Err(self.violation(policy, CpiViolationKind::DebugMismatch, addr));
                    }
                }
                Ok(V {
                    raw: s.word,
                    meta: s.meta,
                })
            }
            None if universal => {
                // No sensitive value here: fall back to the regular copy.
                let raw = self.prog_read(addr, 8, MemSpace::Regular)?;
                Ok(V::int(raw))
            }
            None => {
                // A sensitive-typed location that was never stored
                // through the safe store (e.g. zero-initialized global):
                // read the regular image; the value carries no
                // metadata, so any control use of it will trap.
                let raw = self.prog_read(addr, 8, MemSpace::Regular)?;
                Ok(V::int(raw))
            }
        }
    }

    /// Byte-bulk copy with amortized charging (used by memcpy-family).
    pub(crate) fn bulk_copy(
        &mut self,
        dst: u64,
        src: u64,
        len: u64,
        _moving: bool,
    ) -> Result<(), Trap> {
        self.isolation_check(src, MemSpace::Regular)?;
        self.isolation_check(dst, MemSpace::Regular)?;
        self.charge_bulk(len, dst, src);
        self.mem.copy(dst, src, len).map_err(|e| match e {
            crate::mem::MemError::Unmapped { addr } => Trap::Unmapped { addr },
            crate::mem::MemError::WriteProtected { addr } => Trap::WriteProtected { addr },
        })
    }

    /// Byte-bulk fill with amortized charging (memset).
    pub(crate) fn bulk_fill(&mut self, dst: u64, byte: u8, len: u64) -> Result<(), Trap> {
        self.isolation_check(dst, MemSpace::Regular)?;
        self.charge_bulk(len, dst, dst);
        self.mem.fill(dst, byte, len).map_err(|e| match e {
            crate::mem::MemError::Unmapped { addr } => Trap::Unmapped { addr },
            crate::mem::MemError::WriteProtected { addr } => Trap::WriteProtected { addr },
        })
    }

    /// Charges a bulk operation: one cache access per 64-byte line on
    /// both operands, one instruction per 8 bytes (vectorized copy).
    fn charge_bulk(&mut self, len: u64, a: u64, b: u64) {
        let lines = len / 64 + 1;
        for i in 0..lines {
            self.charge_mem(a + i * 64, true, TouchKind::Write, 8);
            if b != a {
                self.charge_mem(b + i * 64, true, TouchKind::Read, 8);
            }
        }
        self.stats.cycles += len / 8;
        self.stats.mem_ops += len / 8;
    }
}
