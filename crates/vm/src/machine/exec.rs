//! The fetch/execute loop: one IR instruction per step.

use levee_bc::Op;
use levee_ir::prelude::*;
use levee_rt::{Entry, MetaId};

use crate::trap::{ExitStatus, Trap};

use super::{Machine, V};

impl<'m> Machine<'m> {
    /// Executes one instruction or terminator. Returns `Some(exit)` when
    /// the program finished.
    pub(crate) fn step(&mut self) -> Result<Option<ExitStatus>, Trap> {
        // Profiler dispatch seam (mirrors the bytecode loop's): close
        // the previous op's cycle window, open this one's. Observation
        // only — no charge depends on it.
        if self.probe.is_some() {
            let (op, now) = (self.current_op_index(), self.stats.cycles);
            if let Some(p) = self.probe.as_deref_mut() {
                p.dispatch(op, now);
            }
        }
        self.stats.insts += 1;
        self.stats.cycles += self.config.cost.inst;
        if self.stats.insts > self.config.max_insts {
            return Err(Trap::OutOfFuel);
        }

        let module = self.module;
        let frame = self.frame();
        let func = module.func(frame.func);
        let block = func.block(frame.block);

        if frame.ip >= block.insts.len() {
            return self.exec_terminator(&block.term);
        }
        let inst = &block.insts[frame.ip];
        self.frame_mut().ip += 1;
        self.exec_inst(inst)?;
        Ok(None)
    }

    /// Maps the walker's in-flight instruction or terminator onto the
    /// shared opcode space (`levee_bc::Op`) so both engines report
    /// per-opcode attribution in the same vocabulary. The walker never
    /// executes fused superinstructions, so those slots stay zero.
    fn current_op_index(&self) -> usize {
        let frame = self.frame();
        let block = self.module.func(frame.func).block(frame.block);
        let op = if frame.ip >= block.insts.len() {
            match &block.term {
                Terminator::Br(_) => Op::Jump,
                Terminator::CondBr { .. } => Op::Branch,
                Terminator::Ret(_) => Op::Ret,
                Terminator::Unreachable => Op::Unreachable,
            }
        } else {
            match &block.insts[frame.ip] {
                Inst::Alloca { .. } => Op::Alloca,
                Inst::Load { .. } => Op::Load,
                Inst::Store { .. } => Op::Store,
                Inst::Gep { .. } => Op::Gep,
                Inst::GlobalAddr { .. } => Op::GlobalAddr,
                Inst::FuncAddr { .. } => Op::FuncAddr,
                Inst::Bin { .. } => Op::Bin,
                Inst::Cmp { .. } => Op::Cmp,
                Inst::Cast { .. } => Op::Cast,
                Inst::Call { .. } => Op::Call,
                Inst::CallIndirect { .. } => Op::CallIndirect,
                Inst::IntrinsicCall { .. } => Op::IntrinsicCall,
                Inst::Cpi(cpi) => match cpi {
                    CpiOp::PtrStore { .. } => Op::PtrStore,
                    CpiOp::PtrLoad { .. } => Op::PtrLoad,
                    CpiOp::Check { .. } => Op::Check,
                    CpiOp::FnCheck { .. } => Op::FnCheck,
                    CpiOp::SafeMemcpy { .. } => Op::SafeMemcpy,
                    CpiOp::SafeMemset { .. } => Op::SafeMemset,
                    CpiOp::PacSign { .. } => Op::PacSign,
                    CpiOp::PacAuth { .. } => Op::PacAuth,
                },
            }
        };
        op as usize
    }

    fn exec_terminator(&mut self, term: &Terminator) -> Result<Option<ExitStatus>, Trap> {
        match term {
            Terminator::Br(b) => {
                let f = self.frame_mut();
                f.block = *b;
                f.ip = 0;
                Ok(None)
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.eval(*cond).raw;
                let target = if c != 0 { *then_bb } else { *else_bb };
                let f = self.frame_mut();
                f.block = target;
                f.ip = 0;
                Ok(None)
            }
            Terminator::Ret(v) => {
                let value = v.map(|op| self.eval(op));
                self.do_return(value)
            }
            Terminator::Unreachable => Err(Trap::Unreachable),
        }
    }

    fn exec_inst(&mut self, inst: &Inst) -> Result<(), Trap> {
        match inst {
            Inst::Alloca {
                dest,
                ty,
                count,
                stack,
            } => {
                let size = self.module.types.size_of(ty) * count;
                let addr = self.do_alloca(size, *stack)?;
                let v = self.v_data(addr, addr, addr + size, 0);
                self.set_reg(*dest, v);
                Ok(())
            }
            Inst::Load {
                dest,
                ptr,
                ty,
                space,
            } => {
                let addr = self.eval(*ptr).raw;
                let size = self.module.types.size_of(ty);
                self.stats.mem_ops += 1;
                let raw = self.prog_read(addr, size, *space)?;
                // Safe-stack slots are trusted storage: provenance
                // survives the round-trip (like a register spill) as
                // long as the reloaded word matches what was spilled.
                let meta = if *space == MemSpace::SafeStack {
                    match self.safe_stack_meta.get(&addr) {
                        Some(&(spilled, m)) if spilled == raw => m,
                        _ => MetaId::NONE,
                    }
                } else {
                    MetaId::NONE
                };
                self.set_reg(*dest, V { raw, meta });
                Ok(())
            }
            Inst::Store {
                ptr,
                value,
                ty,
                space,
            } => {
                let addr = self.eval(*ptr).raw;
                let v = self.eval(*value);
                let size = self.module.types.size_of(ty);
                self.stats.mem_ops += 1;
                if *space == MemSpace::SafeStack {
                    if v.meta.is_some() {
                        self.safe_stack_meta.insert(addr, (v.raw, v.meta));
                    } else {
                        self.safe_stack_meta.remove(&addr);
                    }
                }
                self.prog_write(addr, v.raw, size, *space)
            }
            Inst::Gep {
                dest,
                base,
                index,
                elem,
                offset,
                field_of,
            } => {
                let b = self.eval(*base);
                let i = self.eval(*index).raw;
                let elem_size = self.module.types.size_of(elem);
                let raw = b
                    .raw
                    .wrapping_add(i.wrapping_mul(elem_size))
                    .wrapping_add(*offset);
                // Based-on propagation (case iv): derived pointers keep
                // their provenance handle — the raw word moves, the
                // based-on object doesn't. Field selection narrows the
                // bounds to the sub-object (§3.2.2 / Appendix A), which
                // is new provenance and interns a record.
                let meta = match self.meta.get(b.meta) {
                    Some(prov) if field_of.is_some() => {
                        self.intern_prov(Entry::data(raw, raw, raw + elem_size, prov.id))
                    }
                    _ => b.meta,
                };
                self.set_reg(*dest, V { raw, meta });
                Ok(())
            }
            Inst::GlobalAddr { dest, global } => {
                let addr = self.global_addrs[global.0 as usize];
                let meta = self.global_meta[global.0 as usize];
                self.set_reg(*dest, V { raw: addr, meta });
                Ok(())
            }
            Inst::FuncAddr { dest, func } => {
                let addr = self.func_addrs[func.0 as usize];
                let meta = self.func_meta[func.0 as usize];
                self.set_reg(*dest, V { raw: addr, meta });
                Ok(())
            }
            Inst::Bin { dest, op, lhs, rhs } => {
                let a = self.eval(*lhs);
                let b = self.eval(*rhs);
                let raw = self.eval_bin(*op, a.raw, b.raw)?;
                // Pointer arithmetic done as integer math keeps the
                // based-on metadata of its single pointer operand (this
                // is the dataflow-cast relaxation of §3.2.1/§4) — with
                // interned provenance that is just handle propagation.
                let meta = bin_meta(*op, a.meta, b.meta);
                self.set_reg(*dest, V { raw, meta });
                Ok(())
            }
            Inst::Cmp { dest, op, lhs, rhs } => {
                let a = self.eval(*lhs).raw as i64;
                let b = self.eval(*rhs).raw as i64;
                let r = match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                };
                self.set_reg(*dest, V::int(r as u64));
                Ok(())
            }
            Inst::Cast {
                dest,
                kind,
                value,
                to,
            } => {
                let v = self.eval(*value);
                let out = match kind {
                    // Pointer casts (including to/from void*) keep the
                    // based-on metadata; int→ptr keeps metadata only if
                    // the dataflow carried some (otherwise "invalid").
                    CastKind::PtrToPtr | CastKind::PtrToInt | CastKind::IntToPtr => v,
                    CastKind::IntToInt => {
                        let size = self.module.types.size_of(to);
                        let raw = truncate(v.raw, size);
                        V::int(raw)
                    }
                };
                self.set_reg(*dest, out);
                Ok(())
            }
            Inst::Call { dest, func, args } => {
                // Descriptor-driven frame push: fill the callee register
                // file directly from the caller's operands (the argument
                // move plan), no intermediate argument vector.
                let desc = self.frame_descs[func.0 as usize];
                debug_assert_eq!(args.len(), desc.n_params as usize);
                let mut regs = self.take_vec();
                regs.extend(args.iter().map(|a| self.eval(*a)));
                regs.resize(desc.n_regs as usize, V::int(0));
                let frame = self.frame();
                let key = (frame.func.0, frame.block.0, frame.ip - 1);
                let ret_addr = self.site_of_call[&key];
                self.push_frame(*func, desc, regs, *dest, ret_addr)
            }
            Inst::CallIndirect {
                dest,
                callee,
                sig,
                args,
                cfi,
            } => {
                let cv = self.eval(*callee);
                let f = self.resolve_indirect(cv.raw, sig, *cfi, args.len())?;
                let desc = self.frame_descs[f.0 as usize];
                let mut regs = self.take_vec();
                regs.extend(args.iter().map(|a| self.eval(*a)));
                regs.resize(desc.n_regs as usize, V::int(0));
                let frame = self.frame();
                let key = (frame.func.0, frame.block.0, frame.ip - 1);
                let ret_addr = self.site_of_call[&key];
                self.push_frame(f, desc, regs, *dest, ret_addr)
            }
            Inst::IntrinsicCall { dest, which, args } => {
                let mut argv = self.take_vec();
                argv.extend(args.iter().map(|a| self.eval(*a)));
                self.exec_intrinsic(*which, argv, *dest)
            }
            Inst::Cpi(op) => self.exec_cpi(op),
        }
    }

    #[inline]
    pub(crate) fn eval_bin(&mut self, op: BinOp, a: u64, b: u64) -> Result<u64, Trap> {
        Ok(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => {
                self.stats.cycles += self.config.cost.mul;
                a.wrapping_mul(b)
            }
            BinOp::Div => {
                self.stats.cycles += self.config.cost.div;
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                ((a as i64).wrapping_div(b as i64)) as u64
            }
            BinOp::Rem => {
                self.stats.cycles += self.config.cost.div;
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32),
            BinOp::Shr => a.wrapping_shr(b as u32),
        })
    }
}

/// Based-on propagation for integer arithmetic (the dataflow-cast
/// relaxation of §3.2.1/§4): `Add`/`Sub` keep the provenance of a lone
/// pointer left operand; `Add` also commutes. Everything else — two
/// pointer operands included — strips provenance.
#[inline(always)]
pub(crate) fn bin_meta(op: BinOp, a: MetaId, b: MetaId) -> MetaId {
    match op {
        BinOp::Add | BinOp::Sub if a.is_some() && b.is_none() => a,
        BinOp::Add if a.is_none() && b.is_some() => b,
        _ => MetaId::NONE,
    }
}

#[inline(always)]
pub(crate) fn truncate(v: u64, size: u64) -> u64 {
    match size {
        1 => v as u8 as u64,
        2 => v as u16 as u64,
        4 => v as u32 as u64,
        _ => v,
    }
}
