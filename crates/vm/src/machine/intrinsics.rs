//! The libc-like intrinsics, including the attack surface
//! (`read_input`, unchecked `strcpy`, `system`).

use levee_ir::prelude::*;

use crate::probe::TouchKind;
use crate::trap::Trap;

use super::{Machine, V};

impl<'m> Machine<'m> {
    pub(crate) fn exec_intrinsic(
        &mut self,
        which: Intrinsic,
        args: Vec<V>,
        dest: Option<ValueId>,
    ) -> Result<(), Trap> {
        let ret = match which {
            Intrinsic::Malloc => {
                let size = args[0].raw;
                let a = self.heap.malloc(size).map_err(|_| Trap::OutOfMemory)?;
                self.mem.map_zero(a.addr, size.max(8).next_power_of_two());
                Some(self.v_data(a.addr, a.addr, a.addr + size, a.id))
            }
            Intrinsic::Calloc => {
                let size = args[0].raw * args[1].raw;
                let a = self.heap.malloc(size).map_err(|_| Trap::OutOfMemory)?;
                self.mem.map_zero(a.addr, size.max(8).next_power_of_two());
                self.bulk_fill(a.addr, 0, size)?;
                Some(self.v_data(a.addr, a.addr, a.addr + size, a.id))
            }
            Intrinsic::Free => {
                let addr = args[0].raw;
                // An invalid free is a heap-corruption bug: crash.
                self.heap.free(addr).map_err(|_| Trap::Unmapped { addr })?;
                None
            }
            Intrinsic::Memcpy | Intrinsic::Memmove => {
                let (d, s, n) = (args[0].raw, args[1].raw, args[2].raw);
                self.bulk_copy(d, s, n, which == Intrinsic::Memmove)?;
                Some(args[0])
            }
            Intrinsic::Memset => {
                let (d, b, n) = (args[0].raw, args[1].raw as u8, args[2].raw);
                self.bulk_fill(d, b, n)?;
                Some(args[0])
            }
            Intrinsic::Memcmp => {
                let (a, b, n) = (args[0].raw, args[1].raw, args[2].raw);
                let mut r = 0i64;
                for i in 0..n {
                    let x = self.read_byte(a + i)?;
                    let y = self.read_byte(b + i)?;
                    if x != y {
                        r = x as i64 - y as i64;
                        break;
                    }
                }
                self.stats.cycles += n / 4;
                Some(V::int(r as u64))
            }
            Intrinsic::Strcpy => {
                let (d, s) = (args[0].raw, args[1].raw);
                let bytes = self.read_cstr(s)?;
                self.write_bytes(d, &bytes)?;
                self.write_byte(d + bytes.len() as u64, 0)?;
                Some(args[0])
            }
            Intrinsic::Strncpy => {
                let (d, s, n) = (args[0].raw, args[1].raw, args[2].raw);
                let mut bytes = self.read_cstr(s)?;
                bytes.truncate(n as usize);
                self.write_bytes(d, &bytes)?;
                for i in bytes.len() as u64..n {
                    self.write_byte(d + i, 0)?;
                }
                Some(args[0])
            }
            Intrinsic::Strcat => {
                let (d, s) = (args[0].raw, args[1].raw);
                let dlen = self.read_cstr(d)?.len() as u64;
                let bytes = self.read_cstr(s)?;
                self.write_bytes(d + dlen, &bytes)?;
                self.write_byte(d + dlen + bytes.len() as u64, 0)?;
                Some(args[0])
            }
            Intrinsic::Strncat => {
                let (d, s, n) = (args[0].raw, args[1].raw, args[2].raw);
                let dlen = self.read_cstr(d)?.len() as u64;
                let mut bytes = self.read_cstr(s)?;
                bytes.truncate(n as usize);
                self.write_bytes(d + dlen, &bytes)?;
                self.write_byte(d + dlen + bytes.len() as u64, 0)?;
                Some(args[0])
            }
            Intrinsic::Strlen => {
                let s = self.read_cstr(args[0].raw)?;
                self.stats.cycles += s.len() as u64 / 4;
                Some(V::int(s.len() as u64))
            }
            Intrinsic::Strcmp => {
                let a = self.read_cstr(args[0].raw)?;
                let b = self.read_cstr(args[1].raw)?;
                let r = match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1i64,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                Some(V::int(r as u64))
            }
            Intrinsic::PrintInt => {
                let v = args[0].raw as i64;
                self.output.push(v.to_string());
                None
            }
            Intrinsic::PrintStr => {
                let s = self.read_cstr(args[0].raw)?;
                self.output.push(String::from_utf8_lossy(&s).into_owned());
                None
            }
            Intrinsic::ReadInput => {
                // read_input(buf, maxlen): maxlen < 0 means "unbounded"
                // (gets-style) — THE classic vulnerability.
                let buf = args[0].raw;
                let maxlen = args[1].raw as i64;
                let remaining = self.input.len() - self.input_pos;
                let n = if maxlen < 0 {
                    remaining
                } else {
                    remaining.min(maxlen as usize)
                };
                let bytes: Vec<u8> = self.input[self.input_pos..self.input_pos + n].to_vec();
                self.input_pos += n;
                self.write_bytes(buf, &bytes)?;
                Some(V::int(n as u64))
            }
            Intrinsic::InputLen => Some(V::int((self.input.len() - self.input_pos) as u64)),
            Intrinsic::Setjmp => {
                self.do_setjmp(args[0], dest)?;
                return Ok(()); // dest already written
            }
            Intrinsic::Longjmp => {
                self.do_longjmp(args[0], args[1])?;
                return Ok(());
            }
            Intrinsic::System => {
                // A legitimate, direct call to system() is benign in our
                // model (returns 0). Reaching system() *indirectly* is
                // handled as a transfer to its pseudo-entry and never
                // gets here.
                Some(V::int(0))
            }
            Intrinsic::Rand => Some(V::int(self.next_rand())),
            Intrinsic::Exit => {
                return Err(Trap::ProgramExit(args[0].raw as i64));
            }
            Intrinsic::AbortProg => return Err(Trap::ProgramAbort),
        };
        if let (Some(d), Some(v)) = (dest, ret) {
            self.set_reg(d, v);
        }
        self.recycle_vec(args);
        Ok(())
    }

    // ---- byte helpers shared by the string functions ----------------------

    pub(crate) fn read_byte(&mut self, addr: u64) -> Result<u8, Trap> {
        self.isolation_check(addr, MemSpace::Regular)?;
        self.charge_mem(addr, true, TouchKind::Read, 1);
        self.stats.mem_ops += 1;
        self.mem.read_u8(addr).map_err(|e| match e {
            crate::mem::MemError::Unmapped { addr } => Trap::Unmapped { addr },
            crate::mem::MemError::WriteProtected { addr } => Trap::WriteProtected { addr },
        })
    }

    pub(crate) fn write_byte(&mut self, addr: u64, b: u8) -> Result<(), Trap> {
        self.isolation_check(addr, MemSpace::Regular)?;
        self.charge_mem(addr, true, TouchKind::Write, 1);
        self.stats.mem_ops += 1;
        self.mem.write_u8(addr, b).map_err(|e| match e {
            crate::mem::MemError::Unmapped { addr } => Trap::Unmapped { addr },
            crate::mem::MemError::WriteProtected { addr } => Trap::WriteProtected { addr },
        })
    }

    pub(crate) fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(addr + i as u64, *b)?;
        }
        Ok(())
    }

    pub(crate) fn read_cstr(&mut self, addr: u64) -> Result<Vec<u8>, Trap> {
        let mut out = Vec::new();
        for i in 0..1 << 20 {
            let b = self.read_byte(addr + i)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
        }
        Err(Trap::Unmapped { addr })
    }
}
